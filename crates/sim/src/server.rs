//! The prefetching web server: wraps a prediction model and applies the
//! prefetch policy (§4.1) to turn raw predictions into push decisions.

use crate::config::PrefetchPolicy;
use pbppm_core::{PredictUsage, Prediction, Predictor, UrlId};
use pbppm_trace::DocCatalog;

/// A server-side prefetch engine.
///
/// The server owns the trained model; on every (miss) request it receives
/// the client's current session context and answers with the list of
/// documents to push alongside the response.
pub struct PrefetchServer {
    model: Box<dyn Predictor>,
    policy: PrefetchPolicy,
    scratch: Vec<Prediction>,
}

impl PrefetchServer {
    /// Wraps a trained model with a policy.
    pub fn new(model: Box<dyn Predictor>, policy: PrefetchPolicy) -> Self {
        pbppm_obs::obs_debug!(
            "prefetch server up: {} model, {} nodes, prob >= {}, max {}/request",
            model.kind().label(),
            model.node_count(),
            policy.prob_threshold,
            policy.max_per_request
        );
        Self {
            model,
            policy,
            scratch: Vec::new(),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &PrefetchPolicy {
        &self.policy
    }

    /// Immutable access to the wrapped model (for stats reporting).
    pub fn model(&self) -> &dyn Predictor {
        &*self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut dyn Predictor {
        &mut *self.model
    }

    /// Decides what to push for a request whose session context is
    /// `context` (current URL last). Candidates already cached at the
    /// requester (per `is_cached`) and the currently requested document are
    /// skipped; survivors are appended to `out` as `(url, size)`,
    /// best-first, at most `policy.max_per_request` of them.
    pub fn decide<F>(
        &mut self,
        context: &[UrlId],
        catalog: &DocCatalog,
        is_cached: F,
        out: &mut Vec<(UrlId, u64)>,
    ) where
        F: Fn(UrlId) -> bool,
    {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut usage = PredictUsage::default();
        self.decide_ro(context, catalog, is_cached, out, &mut scratch, &mut usage);
        self.model.apply_usage(&usage);
        self.scratch = scratch;
    }

    /// [`PrefetchServer::decide`] without mutating the server: prediction
    /// scratch space and the model-usage record live with the caller, so
    /// many workers can decide against one shared `&PrefetchServer`
    /// concurrently. Accumulated usage is folded back into the model once
    /// via [`Predictor::apply_usage`].
    pub fn decide_ro<F>(
        &self,
        context: &[UrlId],
        catalog: &DocCatalog,
        is_cached: F,
        out: &mut Vec<(UrlId, u64)>,
        scratch: &mut Vec<Prediction>,
        usage: &mut PredictUsage,
    ) where
        F: Fn(UrlId) -> bool,
    {
        out.clear();
        let Some(&current) = context.last() else {
            return;
        };
        self.model.predict_ro(context, scratch, usage);
        for p in scratch.iter() {
            if out.len() >= self.policy.max_per_request {
                break;
            }
            if p.prob < self.policy.prob_threshold || p.url == current {
                continue;
            }
            let size = u64::from(catalog.size(p.url));
            if size == 0 || size > self.policy.size_threshold {
                continue;
            }
            if is_cached(p.url) {
                continue;
            }
            out.push((p.url, size));
        }
        if out.is_empty() && self.policy.always_push_top {
            for p in scratch.iter() {
                if p.url == current {
                    continue;
                }
                let size = u64::from(catalog.size(p.url));
                if size == 0 || size > self.policy.size_threshold || is_cached(p.url) {
                    continue;
                }
                out.push((p.url, size));
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelSpec;
    use pbppm_core::PopularityTable;
    use pbppm_trace::{ClientId, DocKind, PageView, Session};

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    fn trained_server(policy: PrefetchPolicy) -> PrefetchServer {
        // After 0: 1 three times, 2 once => p(1)=0.75, p(2)=0.25.
        let sessions: Vec<Session> = [[0u32, 1], [0, 1], [0, 1], [0, 2]]
            .iter()
            .map(|pair| Session {
                client: ClientId(0),
                views: pair
                    .iter()
                    .enumerate()
                    .map(|(i, &url)| PageView {
                        time: i as u64,
                        url: u(url),
                        bytes: 100,
                    })
                    .collect(),
            })
            .collect();
        let pop = PopularityTable::default();
        let model = ModelSpec::Standard { max_height: None }
            .build(&sessions, &pop)
            .unwrap();
        PrefetchServer::new(model, policy)
    }

    fn catalog(sizes: &[(u32, u32)]) -> DocCatalog {
        let mut c = DocCatalog::default();
        for &(url, size) in sizes {
            c.observe(u(url), size, DocKind::Html);
        }
        c
    }

    #[test]
    fn pushes_predictions_above_threshold() {
        let mut s = trained_server(PrefetchPolicy::default());
        let cat = catalog(&[(1, 500), (2, 500)]);
        let mut out = Vec::new();
        s.decide(&[u(0)], &cat, |_| false, &mut out);
        // p(1)=0.75 and p(2)=0.25 both pass the 0.25 threshold.
        assert_eq!(out, vec![(u(1), 500), (u(2), 500)]);
    }

    #[test]
    fn probability_threshold_filters() {
        let mut s = trained_server(PrefetchPolicy {
            prob_threshold: 0.5,
            ..PrefetchPolicy::default()
        });
        let cat = catalog(&[(1, 500), (2, 500)]);
        let mut out = Vec::new();
        s.decide(&[u(0)], &cat, |_| false, &mut out);
        assert_eq!(out, vec![(u(1), 500)]);
    }

    #[test]
    fn size_threshold_filters() {
        let mut s = trained_server(PrefetchPolicy {
            size_threshold: 400,
            ..PrefetchPolicy::default()
        });
        let cat = catalog(&[(1, 500), (2, 300)]);
        let mut out = Vec::new();
        s.decide(&[u(0)], &cat, |_| false, &mut out);
        assert_eq!(out, vec![(u(2), 300)], "500-byte doc exceeds threshold");
    }

    #[test]
    fn cached_and_unknown_docs_are_skipped() {
        let mut s = trained_server(PrefetchPolicy::default());
        // URL 2 has no catalogued size: skipped.
        let cat = catalog(&[(1, 500)]);
        let mut out = Vec::new();
        s.decide(&[u(0)], &cat, |url| url == u(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn never_pushes_the_current_document() {
        let mut s = trained_server(PrefetchPolicy::default());
        let cat = catalog(&[(0, 100), (1, 500), (2, 500)]);
        let mut out = Vec::new();
        s.decide(&[u(0)], &cat, |_| false, &mut out);
        assert!(out.iter().all(|&(url, _)| url != u(0)));
    }

    #[test]
    fn respects_max_per_request() {
        let mut s = trained_server(PrefetchPolicy {
            max_per_request: 1,
            ..PrefetchPolicy::default()
        });
        let cat = catalog(&[(1, 500), (2, 500)]);
        let mut out = Vec::new();
        s.decide(&[u(0)], &cat, |_| false, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, u(1), "best prediction first");
    }

    #[test]
    fn empty_context_pushes_nothing() {
        let mut s = trained_server(PrefetchPolicy::default());
        let cat = catalog(&[(1, 500)]);
        let mut out = vec![(u(9), 9)];
        s.decide(&[], &cat, |_| false, &mut out);
        assert!(out.is_empty());
    }
}
