//! Parallel parameter sweeps.
//!
//! The paper's figures are grids of independent cells (model × training
//! window × threshold × client count); each cell is a self-contained
//! simulation over a shared read-only trace, distributed over scoped worker
//! threads with dynamic load balancing (cells differ wildly in cost:
//! unbounded PPM on 7 days vs PB-PPM on 1).
//!
//! The thread-pool machinery itself now lives in [`pbppm_core::parallel`]
//! so the parallel training and ingestion paths can share it; this module
//! re-exports it unchanged for the sweep-facing callers.

pub use pbppm_core::parallel::{
    parallel_map, parallel_map_progress, parallel_map_with, parse_threads, resolve_threads,
    threads_from_env, THREADS_ENV,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..30).collect();
        let out = parallel_map_with(&items, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 10_000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }

    #[test]
    fn reexports_resolve_through_core() {
        assert_eq!(THREADS_ENV, pbppm_core::THREADS_ENV);
        assert_eq!(parse_threads("4"), Ok(4));
        assert!(resolve_threads(2) == 2);
        assert!(threads_from_env().is_ok() || std::env::var(THREADS_ENV).is_ok());
    }
}
