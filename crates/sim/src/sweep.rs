//! Parallel parameter sweeps.
//!
//! The paper's figures are grids of independent cells (model × training
//! window × threshold × client count); each cell is a self-contained
//! simulation over a shared read-only trace. This module distributes the
//! cells over scoped worker threads: the trace and inputs are borrowed
//! immutably (zero copies), workers pull indices from an atomic counter
//! (dynamic load balancing — cells differ wildly in cost: unbounded PPM on
//! 7 days vs PB-PPM on 1), and results land in their slot without locking
//! on the hot path.

use crossbeam::thread;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item, in parallel, preserving input order in the
/// output. `threads == 0` (the default entry point [`parallel_map`]) uses
/// the machine's available parallelism.
pub fn parallel_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    }
    .min(items.len());

    if threads <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock() = Some(r);
            });
        }
    })
    .expect("sweep worker panicked");
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

/// [`parallel_map_with`] using all available cores.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, 0, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x: &u64| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map_with(&items, 8, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn explicit_thread_counts() {
        let items: Vec<u64> = (0..20).collect();
        for threads in [1, 2, 3, 16, 100] {
            let out = parallel_map_with(&items, threads, |&x| x * x);
            assert_eq!(out[19], 361, "threads={threads}");
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still all complete.
        let items: Vec<u64> = (0..30).collect();
        let out = parallel_map_with(&items, 4, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 10_000) {
                acc = acc.wrapping_add(i);
            }
            (x, acc).0
        });
        assert_eq!(out, items);
    }
}
