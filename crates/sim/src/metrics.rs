//! The paper's four performance metrics (§2.3) and their raw counters.
//!
//! * **Hit ratio** — requests served by a browser/proxy cache (demand-cached
//!   or prefetched) over all requests.
//! * **Latency reduction** — average access latency saved per request,
//!   relative to the same configuration without prefetching.
//! * **Space** — number of URL nodes of the prediction model (reported from
//!   [`pbppm_core::ModelStats`], not here).
//! * **Traffic increment** — total transferred bytes over useful bytes,
//!   minus one.

use serde::{Deserialize, Serialize};

/// Raw event counters accumulated by a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Demand requests (page views) processed.
    pub requests: u64,
    /// Bytes the clients actually wanted (sum of requested document sizes).
    pub useful_bytes: u64,
    /// Bytes the server transferred (demand misses + prefetches).
    pub sent_bytes: u64,
    /// Demand hits on regularly cached documents.
    pub cache_hits: u64,
    /// Demand hits that were the first touch of a prefetched document.
    pub prefetch_hits: u64,
    /// ... of which the document was popular (grade ≥ 2).
    pub prefetch_hits_popular: u64,
    /// Documents pushed by the prefetcher.
    pub prefetched_docs: u64,
    /// Bytes pushed by the prefetcher.
    pub prefetched_bytes: u64,
    /// Total access latency experienced by clients, seconds.
    pub latency_secs: f64,
}

impl Counters {
    /// Total demand hits (cache + prefetch).
    pub fn hits(&self) -> u64 {
        self.cache_hits + self.prefetch_hits
    }

    /// The paper's hit ratio. Zero when no requests were made.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits() as f64 / self.requests as f64
        }
    }

    /// The paper's traffic increment: `sent / useful - 1`.
    /// Zero when no useful bytes were requested.
    pub fn traffic_increment(&self) -> f64 {
        if self.useful_bytes == 0 {
            0.0
        } else {
            self.sent_bytes as f64 / self.useful_bytes as f64 - 1.0
        }
    }

    /// Mean latency per request, seconds.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_secs / self.requests as f64
        }
    }

    /// Fraction of prefetch hits whose document is popular (Fig. 2 left).
    /// Zero when there were no prefetch hits.
    pub fn popular_prefetch_fraction(&self) -> f64 {
        if self.prefetch_hits == 0 {
            0.0
        } else {
            self.prefetch_hits_popular as f64 / self.prefetch_hits as f64
        }
    }

    /// Fraction of prefetched documents that were eventually demanded —
    /// the prefetch *accuracy* (a useful diagnostic, not a headline metric).
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetched_docs == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.prefetched_docs as f64
        }
    }

    /// Merges another counter set into this one (used when aggregating
    /// per-client or per-shard counters).
    pub fn merge(&mut self, other: &Counters) {
        self.requests += other.requests;
        self.useful_bytes += other.useful_bytes;
        self.sent_bytes += other.sent_bytes;
        self.cache_hits += other.cache_hits;
        self.prefetch_hits += other.prefetch_hits;
        self.prefetch_hits_popular += other.prefetch_hits_popular;
        self.prefetched_docs += other.prefetched_docs;
        self.prefetched_bytes += other.prefetched_bytes;
        self.latency_secs += other.latency_secs;
    }
}

/// Relative latency reduction of `with` against `baseline` (both from the
/// same eval window; `baseline` is the no-prefetch run).
///
/// Returns 0 when the baseline saw no latency at all.
pub fn latency_reduction(with: &Counters, baseline: &Counters) -> f64 {
    if baseline.latency_secs <= 0.0 {
        0.0
    } else {
        (baseline.latency_secs - with.latency_secs) / baseline.latency_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_on_empty_counters_are_zero() {
        let c = Counters::default();
        assert_eq!(c.hit_ratio(), 0.0);
        assert_eq!(c.traffic_increment(), 0.0);
        assert_eq!(c.mean_latency(), 0.0);
        assert_eq!(c.popular_prefetch_fraction(), 0.0);
        assert_eq!(c.prefetch_accuracy(), 0.0);
    }

    /// An empty run serializes to clean zeros — no NaN, and no null (what
    /// serde_json degrades non-finite floats to).
    #[test]
    fn empty_counters_serialize_to_finite_json() {
        let c = Counters::default();
        let json = serde_json::to_string(&c).unwrap();
        assert!(!json.contains("null") && !json.contains("NaN"), "{json}");
        let back: Counters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        assert_eq!(latency_reduction(&c, &c), 0.0);
        // A negative-latency baseline (impossible, but defensive) also
        // takes the guarded branch rather than dividing.
        let neg = Counters {
            latency_secs: -1.0,
            ..Counters::default()
        };
        assert_eq!(latency_reduction(&c, &neg), 0.0);
    }

    #[test]
    fn hit_ratio_combines_both_hit_kinds() {
        let c = Counters {
            requests: 10,
            cache_hits: 3,
            prefetch_hits: 2,
            ..Counters::default()
        };
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn traffic_increment_matches_definition() {
        let c = Counters {
            useful_bytes: 1000,
            sent_bytes: 1140,
            ..Counters::default()
        };
        assert!((c.traffic_increment() - 0.14).abs() < 1e-12);
        // Prefetching nothing, all hits: sent can be below useful.
        let c2 = Counters {
            useful_bytes: 1000,
            sent_bytes: 500,
            ..Counters::default()
        };
        assert!(c2.traffic_increment() < 0.0);
    }

    #[test]
    fn latency_reduction_relative_to_baseline() {
        let base = Counters {
            requests: 10,
            latency_secs: 20.0,
            ..Counters::default()
        };
        let with = Counters {
            requests: 10,
            latency_secs: 12.0,
            ..Counters::default()
        };
        assert!((latency_reduction(&with, &base) - 0.4).abs() < 1e-12);
        assert_eq!(latency_reduction(&with, &Counters::default()), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Counters {
            requests: 1,
            useful_bytes: 2,
            sent_bytes: 3,
            cache_hits: 4,
            prefetch_hits: 5,
            prefetch_hits_popular: 6,
            prefetched_docs: 7,
            prefetched_bytes: 8,
            latency_secs: 9.0,
        };
        a.merge(&a.clone());
        assert_eq!(a.requests, 2);
        assert_eq!(a.prefetched_bytes, 16);
        assert!((a.latency_secs - 18.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_and_popular_fraction() {
        let c = Counters {
            prefetched_docs: 10,
            prefetch_hits: 4,
            prefetch_hits_popular: 3,
            ..Counters::default()
        };
        assert!((c.prefetch_accuracy() - 0.4).abs() < 1e-12);
        assert!((c.popular_prefetch_fraction() - 0.75).abs() < 1e-12);
    }
}
