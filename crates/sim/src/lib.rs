//! # pbppm-sim — the trace-driven prefetching simulator
//!
//! The evaluation substrate of the PB-PPM paper (§2.2, §4, §5): a simulated
//! web server running one of the prediction models from `pbppm-core`,
//! serving clients (browsers and proxies) replayed from a `pbppm-trace`
//! trace, with prefetching decided per request and the paper's four metrics
//! collected.
//!
//! * [`cache`] — byte-capacity LRU cache with prefetch-hit attribution;
//! * [`latency`] — the linear (connect + transfer) latency model;
//! * [`server`] — the prefetch policy applied to model predictions;
//! * [`engine`] — the §4 driver: train on days `1..N`, evaluate day `N+1`
//!   against a caching-only baseline;
//! * [`proxy`] — the §5 driver: 1–32 clients behind one shared proxy;
//! * [`metrics`] — hit ratio, latency reduction, traffic increment;
//! * [`sweep`] — parallel execution of independent experiment cells;
//! * [`config`] — serializable experiment configuration.

#![forbid(unsafe_code)]

pub mod cache;
pub mod config;
pub mod engine;
pub mod latency;
pub mod metrics;
pub mod network;
pub mod proxy;
pub mod server;
pub mod sweep;

pub use cache::{Lookup, LruCache};
pub use config::{ExperimentConfig, ModelSpec, PrefetchPolicy};
pub use engine::{
    run_experiment, run_experiment_full, run_models, CacheTelemetry, ExperimentOutcome, RunResult,
    RunTelemetry,
};
pub use latency::LatencyModel;
pub use metrics::{latency_reduction, Counters};
pub use network::{run_network_experiment, NetworkCounters, NetworkRunResult, SharedLink};
pub use proxy::{run_proxy_experiment, ProxyExperimentConfig, ProxyRunResult};
pub use server::PrefetchServer;
pub use sweep::{
    parallel_map, parallel_map_progress, parallel_map_with, parse_threads, resolve_threads,
    threads_from_env, THREADS_ENV,
};
