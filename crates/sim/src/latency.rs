//! The access-latency model.
//!
//! The paper estimates "connection times and data transferring times by
//! using the method presented in [Jin & Bestavros, ICDCS'00], where the
//! connection time and the data transferring time are obtained by applying
//! a least squares fit to measured latency in traces versus the size
//! variations of documents" — i.e. a linear model
//!
//! ```text
//! latency(size) = connect_secs + size / bytes_per_sec
//! ```
//!
//! [`LatencyModel::fit`] implements the same least-squares procedure so the
//! model can be calibrated from `(size, latency)` samples; the defaults are
//! representative late-90s WAN figures.

use serde::{Deserialize, Serialize};

/// Linear document-fetch latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-request connection setup time, seconds.
    pub connect_secs: f64,
    /// Transfer bandwidth, bytes per second.
    pub bytes_per_sec: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            connect_secs: 0.13,
            bytes_per_sec: 30_000.0,
        }
    }
}

impl LatencyModel {
    /// Latency of fetching `size` bytes from the server, seconds.
    #[inline]
    pub fn fetch_secs(&self, size: u64) -> f64 {
        self.connect_secs + size as f64 / self.bytes_per_sec
    }

    /// Latency of serving a document from a local cache (assumed
    /// negligible, as in the paper's hit accounting).
    #[inline]
    pub fn hit_secs(&self) -> f64 {
        0.0
    }

    /// Least-squares fit of `(size_bytes, latency_secs)` samples, the
    /// Jin–Bestavros calibration. Returns `None` with fewer than two
    /// distinct sizes. A non-positive fitted slope (all-equal latencies)
    /// yields effectively infinite bandwidth; a non-positive intercept is
    /// clamped to zero.
    pub fn fit(samples: &[(u64, f64)]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|s| s.0 as f64).sum();
        let sy: f64 = samples.iter().map(|s| s.1).sum();
        let sxx: f64 = samples.iter().map(|s| (s.0 as f64) * (s.0 as f64)).sum();
        let sxy: f64 = samples.iter().map(|s| (s.0 as f64) * s.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-9 {
            return None; // all sizes equal: slope undefined
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        Some(Self {
            connect_secs: intercept.max(0.0),
            bytes_per_sec: if slope > 1e-12 {
                1.0 / slope
            } else {
                f64::INFINITY
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_latency_is_linear_in_size() {
        let m = LatencyModel {
            connect_secs: 0.1,
            bytes_per_sec: 1000.0,
        };
        assert!((m.fetch_secs(0) - 0.1).abs() < 1e-12);
        assert!((m.fetch_secs(500) - 0.6).abs() < 1e-12);
        assert!((m.fetch_secs(2000) - 2.1).abs() < 1e-12);
        assert_eq!(m.hit_secs(), 0.0);
    }

    #[test]
    fn fit_recovers_exact_linear_data() {
        let truth = LatencyModel {
            connect_secs: 0.25,
            bytes_per_sec: 4000.0,
        };
        let samples: Vec<(u64, f64)> = (1..=20)
            .map(|i| {
                let size = i * 512;
                (size, truth.fetch_secs(size))
            })
            .collect();
        let fitted = LatencyModel::fit(&samples).unwrap();
        assert!((fitted.connect_secs - 0.25).abs() < 1e-9);
        assert!((fitted.bytes_per_sec - 4000.0).abs() < 1e-3);
    }

    #[test]
    fn fit_handles_noise() {
        let truth = LatencyModel::default();
        let samples: Vec<(u64, f64)> = (1..=100)
            .map(|i| {
                let size = i * 1000;
                // deterministic +-2% "noise"
                let noise = 1.0 + 0.02 * if i % 2 == 0 { 1.0 } else { -1.0 };
                (size, truth.fetch_secs(size) * noise)
            })
            .collect();
        let fitted = LatencyModel::fit(&samples).unwrap();
        assert!((fitted.connect_secs - truth.connect_secs).abs() < 0.05);
        assert!((fitted.bytes_per_sec - truth.bytes_per_sec).abs() / truth.bytes_per_sec < 0.1);
    }

    #[test]
    fn fit_degenerate_inputs() {
        assert!(LatencyModel::fit(&[]).is_none());
        assert!(LatencyModel::fit(&[(100, 1.0)]).is_none());
        assert!(LatencyModel::fit(&[(100, 1.0), (100, 2.0)]).is_none());
        // Flat latencies: infinite bandwidth, intercept = the flat value.
        let m = LatencyModel::fit(&[(100, 1.0), (200, 1.0), (300, 1.0)]).unwrap();
        assert!((m.connect_secs - 1.0).abs() < 1e-9);
        assert!(m.bytes_per_sec.is_infinite());
        assert!((m.fetch_secs(10_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_intercept_clamps_to_zero() {
        // Latency grows faster than linear at small sizes: fitted intercept
        // can go negative; the model clamps it.
        let m = LatencyModel::fit(&[(1000, 0.001), (2000, 1.0), (3000, 2.0)]).unwrap();
        assert!(m.connect_secs >= 0.0);
    }
}
