//! The §4 experiment driver: train on the first *N* days of a trace,
//! evaluate prefetching on day *N+1*.
//!
//! One [`run_experiment`] call performs the complete paper protocol:
//!
//! 1. sessionize the training window and compute URL popularity (two-pass);
//! 2. build and train the configured model;
//! 3. replay the last training day(s) to warm the browser/proxy caches;
//! 4. replay the evaluation day twice — once *without* prefetching (the
//!    latency-reduction baseline) and once with the model pushing documents
//!    on every miss — collecting the paper's four metrics.
//!
//! Clients classified as proxies get the 16 GB cache, browsers the 1 MB one
//! (§2.2). The server is assumed to receive each request's session context
//! (the paper's LRS discussion notes servers must track "all the previous
//! URLs of the current session"; we grant the same context to every model).

use crate::cache::{Lookup, LruCache};
use crate::config::{ExperimentConfig, ModelSpec};
use crate::metrics::{latency_reduction, Counters};
use crate::server::PrefetchServer;
use pbppm_core::{FxHashMap, ModelStats, PopularityTable, UrlId};
use pbppm_trace::{
    classify_clients, sessionize, ClientClass, ClientId, DocCatalog, Session, Trace,
};
use serde::{Deserialize, Serialize};

/// The outcome of one experiment cell (one model × one training window).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Model label ("PPM", "LRS", "PB-PPM", …).
    pub label: String,
    /// Trace name the experiment ran on.
    pub trace: String,
    /// Days of history used for training.
    pub train_days: usize,
    /// Training sessions seen by the model.
    pub train_sessions: usize,
    /// Evaluation-day page views processed.
    pub eval_requests: u64,
    /// The paper's space metric: URL nodes stored by the model.
    pub node_count: usize,
    /// Structural model statistics (`None` for the no-prefetch baseline).
    pub model_stats: Option<ModelStats>,
    /// Metrics of the prefetching run.
    pub counters: Counters,
    /// Metrics of the caching-only baseline run on the same day.
    pub baseline: Counters,
}

impl RunResult {
    /// Hit ratio with prefetching.
    pub fn hit_ratio(&self) -> f64 {
        self.counters.hit_ratio()
    }

    /// Hit ratio of the caching-only baseline.
    pub fn baseline_hit_ratio(&self) -> f64 {
        self.baseline.hit_ratio()
    }

    /// Relative latency reduction versus the caching-only baseline.
    pub fn latency_reduction(&self) -> f64 {
        latency_reduction(&self.counters, &self.baseline)
    }

    /// Traffic increment of the prefetching run, relative to what the same
    /// configuration transfers *without* prefetching.
    ///
    /// The paper's traces are server logs: a request's bytes are "useful"
    /// only if they actually had to cross the network, so the natural
    /// denominator is the baseline run's transferred bytes.
    pub fn traffic_increment(&self) -> f64 {
        if self.baseline.sent_bytes == 0 {
            0.0
        } else {
            self.counters.sent_bytes as f64 / self.baseline.sent_bytes as f64 - 1.0
        }
    }

    /// Fraction of prefetch hits on popular documents (Fig. 2 left).
    pub fn popular_prefetch_fraction(&self) -> f64 {
        self.counters.popular_prefetch_fraction()
    }

    /// Path utilization of the model after the evaluation (Fig. 2 right).
    pub fn path_utilization(&self) -> f64 {
        self.model_stats.map_or(0.0, |s| s.path_utilization())
    }
}

/// Per-client cache pool: browsers get the small cache, proxies the big one.
struct CachePool<'a> {
    caches: FxHashMap<ClientId, LruCache>,
    classes: &'a [ClientClass],
    browser_bytes: u64,
    proxy_bytes: u64,
}

impl<'a> CachePool<'a> {
    fn new(classes: &'a [ClientClass], browser_bytes: u64, proxy_bytes: u64) -> Self {
        Self {
            caches: FxHashMap::default(),
            classes,
            browser_bytes,
            proxy_bytes,
        }
    }

    fn cache_for(&mut self, client: ClientId) -> &mut LruCache {
        let capacity = match self
            .classes
            .get(client.index())
            .copied()
            .unwrap_or(ClientClass::Browser)
        {
            ClientClass::Browser => self.browser_bytes,
            ClientClass::Proxy => self.proxy_bytes,
        };
        self.caches
            .entry(client)
            .or_insert_with(|| LruCache::new(capacity))
    }
}

/// Effective size of a view's document per the shared catalog.
#[inline]
fn doc_size(catalog: &DocCatalog, url: UrlId) -> u64 {
    u64::from(catalog.size(url)).max(1)
}

fn warm_caches(pool: &mut CachePool<'_>, sessions: &[Session], catalog: &DocCatalog) {
    for s in sessions {
        let cache = pool.cache_for(s.client);
        for v in &s.views {
            let size = doc_size(catalog, v.url);
            if cache.demand(v.url) == Lookup::Miss {
                cache.insert(v.url, size, false);
            }
        }
    }
}

/// One evaluation pass over the eval sessions. `server == None` is the
/// caching-only baseline.
fn eval_pass(
    mut server: Option<&mut PrefetchServer>,
    sessions: &[Session],
    catalog: &DocCatalog,
    popularity: &PopularityTable,
    pool: &mut CachePool<'_>,
    cfg: &ExperimentConfig,
) -> Counters {
    let mut counters = Counters::default();
    let mut ctx: Vec<UrlId> = Vec::with_capacity(cfg.context_cap);
    let mut push: Vec<(UrlId, u64)> = Vec::new();

    for s in sessions {
        ctx.clear();
        let cache = pool.cache_for(s.client);
        for v in &s.views {
            if ctx.len() == cfg.context_cap.max(1) {
                ctx.remove(0);
            }
            ctx.push(v.url);
            let size = doc_size(catalog, v.url);
            counters.requests += 1;
            counters.useful_bytes += size;
            match cache.demand(v.url) {
                Lookup::PrefetchHit => {
                    counters.prefetch_hits += 1;
                    if popularity.is_popular(v.url) {
                        counters.prefetch_hits_popular += 1;
                    }
                    counters.latency_secs += cfg.latency.hit_secs();
                }
                Lookup::Hit => {
                    counters.cache_hits += 1;
                    counters.latency_secs += cfg.latency.hit_secs();
                }
                Lookup::Miss => {
                    counters.sent_bytes += size;
                    counters.latency_secs += cfg.latency.fetch_secs(size);
                    cache.insert(v.url, size, false);
                    if let Some(server) = server.as_deref_mut() {
                        server.decide(&ctx, catalog, |u| cache.contains(u), &mut push);
                        for &(purl, psize) in &push {
                            counters.sent_bytes += psize;
                            counters.prefetched_docs += 1;
                            counters.prefetched_bytes += psize;
                            cache.insert(purl, psize, true);
                        }
                    }
                }
            }
        }
    }
    counters
}

/// Runs one complete experiment cell on `trace` (see module docs).
pub fn run_experiment(trace: &Trace, cfg: &ExperimentConfig) -> RunResult {
    let train_reqs = trace.first_days(cfg.train_days);
    let eval_reqs = trace.day_span(cfg.train_days, cfg.train_days + cfg.eval_days.max(1));
    let warm_reqs = trace.day_span(
        cfg.train_days.saturating_sub(cfg.warmup_days),
        cfg.train_days,
    );

    let train_sessions = sessionize(train_reqs, &cfg.sessionizer);
    let mut eval_sessions = sessionize(eval_reqs, &cfg.sessionizer);
    eval_sessions.sort_by_key(Session::start);
    let warm_sessions = sessionize(warm_reqs, &cfg.sessionizer);

    // The server knows its own documents: catalog over everything it serves.
    let mut catalog = DocCatalog::from_sessions(&train_sessions);
    catalog.observe_sessions(&warm_sessions);
    catalog.observe_sessions(&eval_sessions);

    // Two-pass training: popularity over the training window first.
    let mut popb = PopularityTable::builder();
    for s in &train_sessions {
        for v in &s.views {
            popb.record(v.url);
        }
    }
    let popularity = popb.build();

    let classes = classify_clients(&trace.requests, &cfg.classify);

    // Caching-only baseline.
    let mut pool = CachePool::new(&classes, cfg.browser_cache_bytes, cfg.proxy_cache_bytes);
    warm_caches(&mut pool, &warm_sessions, &catalog);
    let baseline = eval_pass(None, &eval_sessions, &catalog, &popularity, &mut pool, cfg);

    // Prefetching run with a fresh, identically warmed cache pool.
    let model = cfg.model.build(&train_sessions, &popularity);
    let (counters, model_stats, node_count) = match model {
        None => (baseline, None, 0),
        Some(model) => {
            let mut server = PrefetchServer::new(model, cfg.policy);
            let mut pool =
                CachePool::new(&classes, cfg.browser_cache_bytes, cfg.proxy_cache_bytes);
            warm_caches(&mut pool, &warm_sessions, &catalog);
            let counters = eval_pass(
                Some(&mut server),
                &eval_sessions,
                &catalog,
                &popularity,
                &mut pool,
                cfg,
            );
            let stats = server.model().stats();
            (counters, Some(stats), server.model().node_count())
        }
    };

    RunResult {
        label: cfg.model.label(),
        trace: trace.name.clone(),
        train_days: cfg.train_days,
        train_sessions: train_sessions.len(),
        eval_requests: counters.requests,
        node_count,
        model_stats,
        counters,
        baseline,
    }
}

/// Runs [`run_experiment`] for every model in `models`, sharing nothing but
/// the trace (each cell is independent; see [`crate::sweep`] for the
/// parallel version).
pub fn run_models(trace: &Trace, models: &[ModelSpec], train_days: usize) -> Vec<RunResult> {
    models
        .iter()
        .map(|m| {
            let cfg = ExperimentConfig::paper_default(m.clone(), train_days);
            run_experiment(trace, &cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbppm_core::PbConfig;
    use pbppm_trace::WorkloadConfig;

    fn tiny_trace() -> Trace {
        WorkloadConfig::tiny(42).generate()
    }

    #[test]
    fn baseline_run_has_no_prefetching() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::NoPrefetch, 2);
        let r = run_experiment(&trace, &cfg);
        assert_eq!(r.counters.prefetched_docs, 0);
        assert_eq!(r.node_count, 0);
        assert!(r.eval_requests > 0);
        assert_eq!(r.latency_reduction(), 0.0);
        assert!(r.hit_ratio() >= 0.0 && r.hit_ratio() <= 1.0);
    }

    #[test]
    fn prefetching_models_prefetch_and_reduce_latency() {
        let trace = tiny_trace();
        for spec in [
            ModelSpec::Standard { max_height: None },
            ModelSpec::Lrs,
            ModelSpec::Pb(PbConfig::default()),
        ] {
            let cfg = ExperimentConfig::paper_default(spec.clone(), 2);
            let r = run_experiment(&trace, &cfg);
            assert!(
                r.counters.prefetched_docs > 0,
                "{} never prefetched",
                r.label
            );
            assert!(
                r.hit_ratio() >= r.baseline_hit_ratio(),
                "{}: prefetching should not lower the hit ratio ({} < {})",
                r.label,
                r.hit_ratio(),
                r.baseline_hit_ratio()
            );
            assert!(
                r.latency_reduction() >= 0.0,
                "{}: latency reduction negative",
                r.label
            );
            assert!(
                r.traffic_increment() > r.baseline.traffic_increment(),
                "{}: prefetching must cost traffic",
                r.label
            );
            assert!(r.node_count > 0);
        }
    }

    #[test]
    fn both_runs_see_the_same_requests() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::Lrs, 2);
        let r = run_experiment(&trace, &cfg);
        assert_eq!(r.counters.requests, r.baseline.requests);
        assert_eq!(r.counters.useful_bytes, r.baseline.useful_bytes);
    }

    #[test]
    fn zero_training_days_is_safe() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::Pb(PbConfig::default()), 0);
        let r = run_experiment(&trace, &cfg);
        assert_eq!(r.train_sessions, 0);
        assert_eq!(r.counters.prefetched_docs, 0, "nothing to predict from");
    }

    #[test]
    fn results_are_deterministic() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::Pb(PbConfig::default()), 2);
        let a = run_experiment(&trace, &cfg);
        let b = run_experiment(&trace, &cfg);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.node_count, b.node_count);
    }

    #[test]
    fn node_counts_rank_std_above_lrs_above_pb() {
        // The full Table-1 ranking needs a realistic trace scale (see the
        // integration tests); at tiny scale the robust claims are that the
        // standard model dwarfs both compact models and that the pruned
        // PB-PPM is far below standard.
        let trace = tiny_trace();
        let rs = run_models(
            &trace,
            &[
                ModelSpec::Standard { max_height: None },
                ModelSpec::Lrs,
                ModelSpec::pb_paper(true),
            ],
            2,
        );
        let (std, lrs, pb) = (rs[0].node_count, rs[1].node_count, rs[2].node_count);
        assert!(std > lrs, "standard {std} should exceed LRS {lrs}");
        assert!(std > 3 * pb, "standard {std} should dwarf PB {pb}");
    }
}

#[cfg(test)]
mod warmup_tests {
    use super::*;
    use crate::config::ModelSpec;
    use pbppm_trace::WorkloadConfig;

    #[test]
    fn warmup_days_raise_the_baseline_hit_ratio() {
        let trace = WorkloadConfig::tiny(13).generate();
        let mut cold = ExperimentConfig::paper_default(ModelSpec::NoPrefetch, 2);
        cold.warmup_days = 0;
        let mut warm = cold.clone();
        warm.warmup_days = 1;
        let r_cold = run_experiment(&trace, &cold);
        let r_warm = run_experiment(&trace, &warm);
        assert!(
            r_warm.baseline_hit_ratio() > r_cold.baseline_hit_ratio(),
            "warmed caches must hit more: {} vs {}",
            r_warm.baseline_hit_ratio(),
            r_cold.baseline_hit_ratio()
        );
        // Same demand either way.
        assert_eq!(r_cold.counters.requests, r_warm.counters.requests);
    }

    #[test]
    fn context_cap_one_degrades_to_order_one_behaviour() {
        // With a single-URL context, the standard model cannot use deep
        // branches; its pushes must match those of a height-2 model.
        let trace = WorkloadConfig::tiny(17).generate();
        let mut deep = ExperimentConfig::paper_default(ModelSpec::Standard { max_height: None }, 2);
        deep.context_cap = 1;
        let r_deep = run_experiment(&trace, &deep);
        let mut shallow =
            ExperimentConfig::paper_default(ModelSpec::Standard { max_height: Some(2) }, 2);
        shallow.context_cap = 1;
        let r_shallow = run_experiment(&trace, &shallow);
        assert_eq!(
            r_deep.counters.prefetched_docs,
            r_shallow.counters.prefetched_docs
        );
        assert_eq!(r_deep.counters.prefetch_hits, r_shallow.counters.prefetch_hits);
    }

    #[test]
    fn eval_days_extend_the_window() {
        let trace = WorkloadConfig::tiny(19).generate();
        let mut one = ExperimentConfig::paper_default(ModelSpec::NoPrefetch, 1);
        one.eval_days = 1;
        let mut two = one.clone();
        two.eval_days = 2;
        let r1 = run_experiment(&trace, &one);
        let r2 = run_experiment(&trace, &two);
        assert!(r2.counters.requests > r1.counters.requests);
    }
}
