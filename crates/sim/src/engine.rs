//! The §4 experiment driver: train on the first *N* days of a trace,
//! evaluate prefetching on day *N+1*.
//!
//! One [`run_experiment`] call performs the complete paper protocol:
//!
//! 1. sessionize the training window and compute URL popularity (two-pass);
//! 2. build and train the configured model;
//! 3. replay the last training day(s) to warm the browser/proxy caches;
//! 4. replay the evaluation day twice — once *without* prefetching (the
//!    latency-reduction baseline) and once with the model pushing documents
//!    on every miss — collecting the paper's four metrics.
//!
//! Clients classified as proxies get the 16 GB cache, browsers the 1 MB one
//! (§2.2). The server is assumed to receive each request's session context
//! (the paper's LRS discussion notes servers must track "all the previous
//! URLs of the current session"; we grant the same context to every model).

use crate::cache::{Lookup, LruCache};
use crate::config::{ExperimentConfig, ModelSpec};
use crate::metrics::{latency_reduction, Counters};
use crate::server::PrefetchServer;
use crate::sweep::parallel_map_progress;
use pbppm_core::{FxHashMap, ModelStats, PopularityTable, PredictUsage, Prediction, UrlId};
use pbppm_obs::{obs_debug, span, LocalHist};
use pbppm_trace::{
    classify_clients, sessionize, ClientClass, ClientId, DocCatalog, Session, Trace,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The outcome of one experiment cell (one model × one training window).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Model label ("PPM", "LRS", "PB-PPM", …).
    pub label: String,
    /// Trace name the experiment ran on.
    pub trace: String,
    /// Days of history used for training.
    pub train_days: usize,
    /// Training sessions seen by the model.
    pub train_sessions: usize,
    /// Evaluation-day page views processed.
    pub eval_requests: u64,
    /// The paper's space metric: URL nodes stored by the model.
    pub node_count: usize,
    /// Structural model statistics (`None` for the no-prefetch baseline).
    pub model_stats: Option<ModelStats>,
    /// Metrics of the prefetching run.
    pub counters: Counters,
    /// Metrics of the caching-only baseline run on the same day.
    pub baseline: Counters,
}

impl RunResult {
    /// Hit ratio with prefetching.
    pub fn hit_ratio(&self) -> f64 {
        self.counters.hit_ratio()
    }

    /// Hit ratio of the caching-only baseline.
    pub fn baseline_hit_ratio(&self) -> f64 {
        self.baseline.hit_ratio()
    }

    /// Relative latency reduction versus the caching-only baseline.
    pub fn latency_reduction(&self) -> f64 {
        latency_reduction(&self.counters, &self.baseline)
    }

    /// Traffic increment of the prefetching run, relative to what the same
    /// configuration transfers *without* prefetching.
    ///
    /// The paper's traces are server logs: a request's bytes are "useful"
    /// only if they actually had to cross the network, so the natural
    /// denominator is the baseline run's transferred bytes.
    pub fn traffic_increment(&self) -> f64 {
        if self.baseline.sent_bytes == 0 {
            0.0
        } else {
            self.counters.sent_bytes as f64 / self.baseline.sent_bytes as f64 - 1.0
        }
    }

    /// Fraction of prefetch hits on popular documents (Fig. 2 left).
    pub fn popular_prefetch_fraction(&self) -> f64 {
        self.counters.popular_prefetch_fraction()
    }

    /// Path utilization of the model after the evaluation (Fig. 2 right).
    pub fn path_utilization(&self) -> f64 {
        self.model_stats.map_or(0.0, |s| s.path_utilization())
    }
}

/// Cache-event telemetry for one cache tier (browser or proxy), merged
/// from per-client shards in ascending-`ClientId` order so every field is
/// independent of the worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTelemetry {
    /// Demand requests answered by a demand-fetched entry.
    pub demand_hits: u64,
    /// Demand requests answered by a prefetched entry.
    pub prefetch_hits: u64,
    /// Demand requests that missed.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Bytes inserted on demand misses.
    pub demand_bytes: u64,
    /// Bytes inserted by prefetch pushes.
    pub prefetched_bytes: u64,
}

impl CacheTelemetry {
    fn merge(&mut self, other: &CacheTelemetry) {
        self.demand_hits += other.demand_hits;
        self.prefetch_hits += other.prefetch_hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.demand_bytes += other.demand_bytes;
        self.prefetched_bytes += other.prefetched_bytes;
    }
}

/// Side-band telemetry of one evaluation pass. Everything except the
/// predict-latency buckets (wall time is never deterministic) is a pure
/// function of the workload: shards share nothing and merge in
/// ascending-`ClientId` order, exactly like [`Counters`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTelemetry {
    /// Cache events of browser-class clients.
    pub browser: CacheTelemetry,
    /// Cache events of proxy-class clients.
    pub proxy: CacheTelemetry,
    /// Warm-up page views replayed into the caches.
    pub warm_requests: u64,
    /// Server prediction calls (one per demand miss under prefetching).
    pub predict_calls: u64,
    /// Wall time of each prediction call, in nanoseconds. Bucket contents
    /// vary run to run; the count equals [`RunTelemetry::predict_calls`].
    pub predict_ns: LocalHist,
    /// Documents pushed per prediction call (the prefetch queue depth).
    pub push_depth: LocalHist,
    /// Bytes of prefetched documents that were later demanded (hit).
    pub prefetch_hit_bytes: u64,
}

impl RunTelemetry {
    fn merge(&mut self, other: &RunTelemetry) {
        self.browser.merge(&other.browser);
        self.proxy.merge(&other.proxy);
        self.warm_requests += other.warm_requests;
        self.predict_calls += other.predict_calls;
        self.predict_ns.merge(&other.predict_ns);
        self.push_depth.merge(&other.push_depth);
        self.prefetch_hit_bytes += other.prefetch_hit_bytes;
    }

    /// Prefetched bytes that were never demanded before the run ended —
    /// the traffic the prefetcher wasted outright.
    pub fn wasted_prefetch_bytes(&self) -> u64 {
        (self.browser.prefetched_bytes + self.proxy.prefetched_bytes)
            .saturating_sub(self.prefetch_hit_bytes)
    }
}

/// [`RunResult`] plus the telemetry of both evaluation passes. Produced by
/// [`run_experiment_full`]; [`run_experiment`] discards the telemetry.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// The paper metrics, unchanged from [`run_experiment`].
    pub result: RunResult,
    /// Telemetry of the prefetching run (of the baseline run when the
    /// model is [`ModelSpec::NoPrefetch`]).
    pub telemetry: RunTelemetry,
    /// Telemetry of the caching-only baseline run.
    pub baseline_telemetry: RunTelemetry,
}

/// Effective size of a view's document per the shared catalog.
#[inline]
fn doc_size(catalog: &DocCatalog, url: UrlId) -> u64 {
    u64::from(catalog.size(url)).max(1)
}

/// Class of a client per the classifier's verdict (unknown → browser).
fn client_class(classes: &[ClientClass], client: ClientId) -> ClientClass {
    classes
        .get(client.index())
        .copied()
        .unwrap_or(ClientClass::Browser)
}

/// Cache capacity for a client class: browsers get the small cache,
/// proxies the big one.
fn cache_capacity(class: ClientClass, cfg: &ExperimentConfig) -> u64 {
    match class {
        ClientClass::Browser => cfg.browser_cache_bytes,
        ClientClass::Proxy => cfg.proxy_cache_bytes,
    }
}

/// One client's slice of the evaluation: its private cache capacity, the
/// warm-up sessions replayed into the cache first, and the eval sessions
/// actually scored. Clients never share caches or contexts, so shards are
/// fully independent.
struct ClientShard<'a> {
    client: ClientId,
    class: ClientClass,
    capacity: u64,
    warm: Vec<&'a Session>,
    eval: Vec<&'a Session>,
}

/// Splits the evaluation into per-client shards, ascending by [`ClientId`]
/// so the downstream merge order is a property of the workload, not of the
/// scheduler. Clients that only appear in the warm-up window are dropped:
/// their caches would never be read.
fn shard_by_client<'a>(
    warm_sessions: &'a [Session],
    eval_sessions: &'a [Session],
    classes: &[ClientClass],
    cfg: &ExperimentConfig,
) -> Vec<ClientShard<'a>> {
    let mut by_client: FxHashMap<ClientId, ClientShard<'a>> = FxHashMap::default();
    for s in eval_sessions {
        by_client
            .entry(s.client)
            .or_insert_with(|| {
                let class = client_class(classes, s.client);
                ClientShard {
                    client: s.client,
                    class,
                    capacity: cache_capacity(class, cfg),
                    warm: Vec::new(),
                    eval: Vec::new(),
                }
            })
            .eval
            .push(s);
    }
    for s in warm_sessions {
        if let Some(shard) = by_client.get_mut(&s.client) {
            shard.warm.push(s);
        }
    }
    let mut shards: Vec<ClientShard<'a>> = by_client.into_values().collect();
    shards.sort_by_key(|s| s.client);
    shards
}

/// Replays one client's shard: warms its private cache, then scores its
/// eval sessions. `server == None` is the caching-only baseline. Model
/// usage is recorded read-only and returned for a post-pass
/// [`Predictor::apply_usage`](pbppm_core::Predictor::apply_usage).
fn eval_client_shard(
    server: Option<&PrefetchServer>,
    shard: &ClientShard<'_>,
    catalog: &DocCatalog,
    popularity: &PopularityTable,
    cfg: &ExperimentConfig,
) -> (Counters, PredictUsage, RunTelemetry) {
    let mut obs = RunTelemetry::default();
    let mut tier = CacheTelemetry::default();
    let mut cache = LruCache::new(shard.capacity);
    for s in &shard.warm {
        for v in &s.views {
            obs.warm_requests += 1;
            let size = doc_size(catalog, v.url);
            if cache.demand(v.url) == Lookup::Miss {
                cache.insert(v.url, size, false);
            }
        }
    }

    let mut counters = Counters::default();
    let mut usage = PredictUsage::default();
    let mut scratch: Vec<Prediction> = Vec::new();
    let mut ctx: Vec<UrlId> = Vec::with_capacity(cfg.context_cap);
    let mut push: Vec<(UrlId, u64)> = Vec::new();

    for s in &shard.eval {
        ctx.clear();
        for v in &s.views {
            if ctx.len() == cfg.context_cap.max(1) {
                ctx.remove(0);
            }
            ctx.push(v.url);
            let size = doc_size(catalog, v.url);
            counters.requests += 1;
            counters.useful_bytes += size;
            match cache.demand(v.url) {
                Lookup::PrefetchHit => {
                    counters.prefetch_hits += 1;
                    if popularity.is_popular(v.url) {
                        counters.prefetch_hits_popular += 1;
                    }
                    counters.latency_secs += cfg.latency.hit_secs();
                    tier.prefetch_hits += 1;
                    obs.prefetch_hit_bytes += size;
                }
                Lookup::Hit => {
                    counters.cache_hits += 1;
                    counters.latency_secs += cfg.latency.hit_secs();
                    tier.demand_hits += 1;
                }
                Lookup::Miss => {
                    counters.sent_bytes += size;
                    counters.latency_secs += cfg.latency.fetch_secs(size);
                    cache.insert(v.url, size, false);
                    tier.misses += 1;
                    tier.demand_bytes += size;
                    if let Some(server) = server {
                        // Timed only when telemetry is compiled in: the
                        // prediction hot path stays clock-free otherwise.
                        let started = pbppm_obs::ENABLED.then(Instant::now);
                        server.decide_ro(
                            &ctx,
                            catalog,
                            |u| cache.contains(u),
                            &mut push,
                            &mut scratch,
                            &mut usage,
                        );
                        if let Some(started) = started {
                            obs.predict_ns.observe(
                                u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            );
                        }
                        obs.predict_calls += 1;
                        obs.push_depth.observe(push.len() as u64);
                        for &(purl, psize) in &push {
                            counters.sent_bytes += psize;
                            counters.prefetched_docs += 1;
                            counters.prefetched_bytes += psize;
                            cache.insert(purl, psize, true);
                            tier.prefetched_bytes += psize;
                        }
                    }
                }
            }
        }
    }
    tier.evictions = cache.evictions();
    match shard.class {
        ClientClass::Browser => obs.browser = tier,
        ClientClass::Proxy => obs.proxy = tier,
    }
    (counters, usage, obs)
}

/// One evaluation pass over the eval sessions, sharded by client over
/// `cfg.threads` scoped workers (`0` = auto; see
/// [`crate::sweep::resolve_threads`]).
///
/// Results are independent of the thread count: shards share nothing,
/// workers only read the server, and both counters and model usage are
/// merged in ascending-`ClientId` shard order after the join.
fn eval_pass(
    server: Option<&PrefetchServer>,
    warm_sessions: &[Session],
    eval_sessions: &[Session],
    catalog: &DocCatalog,
    popularity: &PopularityTable,
    classes: &[ClientClass],
    cfg: &ExperimentConfig,
) -> (Counters, PredictUsage, RunTelemetry) {
    let shards = shard_by_client(warm_sessions, eval_sessions, classes, cfg);
    let total = shards.len();
    let per_shard = parallel_map_progress(
        &shards,
        cfg.threads,
        |shard| eval_client_shard(server, shard, catalog, popularity, cfg),
        |n| {
            if n.is_multiple_of(64) || n == total {
                obs_debug!("eval pass: {n}/{total} client shards done");
            }
        },
    );
    let mut counters = Counters::default();
    let mut usage = PredictUsage::default();
    let mut telemetry = RunTelemetry::default();
    for (c, u, t) in &per_shard {
        counters.merge(c);
        usage.merge(u);
        telemetry.merge(t);
    }
    (counters, usage, telemetry)
}

/// Publishes one outcome's telemetry into the global metrics registry —
/// a no-op build-time when the `telemetry` feature is off. Counter labels
/// carry the model so cells sharing one process stay distinguishable;
/// storage gauges are last-writer-wins per model label.
fn publish_telemetry(
    label: &str,
    tel: &RunTelemetry,
    usage: &PredictUsage,
    stats: Option<&ModelStats>,
) {
    if !pbppm_obs::ENABLED {
        return;
    }
    let reg = pbppm_obs::global();
    let model = format!("model={label}");
    for (tier, t) in [("browser", &tel.browser), ("proxy", &tel.proxy)] {
        let l = format!("model={label} cache={tier}");
        reg.counter("sim.cache.demand_hits", &l).add(t.demand_hits);
        reg.counter("sim.cache.prefetch_hits", &l)
            .add(t.prefetch_hits);
        reg.counter("sim.cache.misses", &l).add(t.misses);
        reg.counter("sim.cache.evictions", &l).add(t.evictions);
        reg.counter("sim.cache.demand_bytes", &l)
            .add(t.demand_bytes);
        reg.counter("sim.cache.prefetched_bytes", &l)
            .add(t.prefetched_bytes);
    }
    reg.counter("sim.eval.warm_requests", &model)
        .add(tel.warm_requests);
    reg.counter("sim.predict.calls", &model)
        .add(tel.predict_calls);
    reg.counter("sim.prefetch.wasted_bytes", &model)
        .add(tel.wasted_prefetch_bytes());
    reg.histogram("sim.predict.latency_ns", &model)
        .absorb(&tel.predict_ns);
    reg.histogram("sim.prefetch.push_depth", &model)
        .absorb(&tel.push_depth);
    reg.counter("core.predict.index_fast", &model)
        .add(usage.index_fast);
    reg.counter("core.predict.index_fallback", &model)
        .add(usage.index_fallback);
    if let Some(s) = stats {
        reg.gauge("model.nodes", &model).set(s.nodes as u64);
        reg.gauge("model.edges", &model).set(s.edges as u64);
        reg.gauge("model.special_links", &model)
            .set(s.special_links as u64);
        reg.gauge("model.bytes", &model).set(s.total_bytes() as u64);
    }
}

/// Runs one complete experiment cell on `trace` (see module docs),
/// discarding telemetry. Identical results to [`run_experiment_full`].
pub fn run_experiment(trace: &Trace, cfg: &ExperimentConfig) -> RunResult {
    run_experiment_full(trace, cfg).result
}

/// Runs one complete experiment cell on `trace` and returns the paper
/// metrics together with both passes' telemetry.
pub fn run_experiment_full(trace: &Trace, cfg: &ExperimentConfig) -> ExperimentOutcome {
    let label = cfg.model.label();
    let _span = span!(
        "experiment",
        model = label,
        trace = trace.name,
        days = cfg.train_days
    );
    let train_reqs = trace.first_days(cfg.train_days);
    let eval_reqs = trace.day_span(cfg.train_days, cfg.train_days + cfg.eval_days.max(1));
    let warm_reqs = trace.day_span(
        cfg.train_days.saturating_sub(cfg.warmup_days),
        cfg.train_days,
    );

    let (train_sessions, eval_sessions, warm_sessions) = {
        let _s = span!("sessionize");
        let train_sessions = sessionize(train_reqs, &cfg.sessionizer);
        let mut eval_sessions = sessionize(eval_reqs, &cfg.sessionizer);
        eval_sessions.sort_by_key(Session::start);
        let warm_sessions = sessionize(warm_reqs, &cfg.sessionizer);
        (train_sessions, eval_sessions, warm_sessions)
    };
    obs_debug!(
        "{label}: sessionized {} train / {} eval / {} warm sessions",
        train_sessions.len(),
        eval_sessions.len(),
        warm_sessions.len()
    );

    let (catalog, popularity, classes) = {
        let _s = span!("popularity");
        // The server knows its own documents: catalog over everything it
        // serves.
        let mut catalog = DocCatalog::from_sessions(&train_sessions);
        catalog.observe_sessions(&warm_sessions);
        catalog.observe_sessions(&eval_sessions);

        // Two-pass training: popularity over the training window first.
        let mut popb = PopularityTable::builder();
        for s in &train_sessions {
            for v in &s.views {
                popb.record(v.url);
            }
        }
        let popularity = popb.build();
        let classes = classify_clients(&trace.requests, &cfg.classify);
        (catalog, popularity, classes)
    };

    // Caching-only baseline.
    let (baseline, _, baseline_telemetry) = {
        let _s = span!("baseline");
        eval_pass(
            None,
            &warm_sessions,
            &eval_sessions,
            &catalog,
            &popularity,
            &classes,
            cfg,
        )
    };

    // Prefetching run with fresh, identically warmed caches.
    let model = {
        let _s = span!("train", model = label, sessions = train_sessions.len());
        cfg.model
            .build_with(&train_sessions, &popularity, cfg.threads)
    };
    let (counters, model_stats, node_count, telemetry) = match model {
        None => (baseline, None, 0, baseline_telemetry.clone()),
        Some(model) => {
            let mut server = PrefetchServer::new(model, cfg.policy);
            let (counters, usage, telemetry) = {
                let _s = span!("eval", model = label);
                eval_pass(
                    Some(&server),
                    &warm_sessions,
                    &eval_sessions,
                    &catalog,
                    &popularity,
                    &classes,
                    cfg,
                )
            };
            server.model_mut().apply_usage(&usage);
            let stats = server.model().stats();
            publish_telemetry(&label, &telemetry, &usage, Some(&stats));
            (
                counters,
                Some(stats),
                server.model().node_count(),
                telemetry,
            )
        }
    };

    let result = RunResult {
        label,
        trace: trace.name.clone(),
        train_days: cfg.train_days,
        train_sessions: train_sessions.len(),
        eval_requests: counters.requests,
        node_count,
        model_stats,
        counters,
        baseline,
    };
    ExperimentOutcome {
        result,
        telemetry,
        baseline_telemetry,
    }
}

/// Runs [`run_experiment`] for every model in `models`, sharing nothing but
/// the trace (each cell is independent; see [`crate::sweep`] for the
/// parallel version).
pub fn run_models(trace: &Trace, models: &[ModelSpec], train_days: usize) -> Vec<RunResult> {
    models
        .iter()
        .map(|m| {
            let cfg = ExperimentConfig::paper_default(m.clone(), train_days);
            run_experiment(trace, &cfg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbppm_core::PbConfig;
    use pbppm_trace::WorkloadConfig;

    fn tiny_trace() -> Trace {
        WorkloadConfig::tiny(42).generate()
    }

    #[test]
    fn baseline_run_has_no_prefetching() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::NoPrefetch, 2);
        let r = run_experiment(&trace, &cfg);
        assert_eq!(r.counters.prefetched_docs, 0);
        assert_eq!(r.node_count, 0);
        assert!(r.eval_requests > 0);
        assert_eq!(r.latency_reduction(), 0.0);
        assert!(r.hit_ratio() >= 0.0 && r.hit_ratio() <= 1.0);
    }

    #[test]
    fn prefetching_models_prefetch_and_reduce_latency() {
        let trace = tiny_trace();
        for spec in [
            ModelSpec::Standard { max_height: None },
            ModelSpec::Lrs,
            ModelSpec::Pb(PbConfig::default()),
        ] {
            let cfg = ExperimentConfig::paper_default(spec.clone(), 2);
            let r = run_experiment(&trace, &cfg);
            assert!(
                r.counters.prefetched_docs > 0,
                "{} never prefetched",
                r.label
            );
            assert!(
                r.hit_ratio() >= r.baseline_hit_ratio(),
                "{}: prefetching should not lower the hit ratio ({} < {})",
                r.label,
                r.hit_ratio(),
                r.baseline_hit_ratio()
            );
            assert!(
                r.latency_reduction() >= 0.0,
                "{}: latency reduction negative",
                r.label
            );
            assert!(
                r.traffic_increment() > r.baseline.traffic_increment(),
                "{}: prefetching must cost traffic",
                r.label
            );
            assert!(r.node_count > 0);
        }
    }

    #[test]
    fn both_runs_see_the_same_requests() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::Lrs, 2);
        let r = run_experiment(&trace, &cfg);
        assert_eq!(r.counters.requests, r.baseline.requests);
        assert_eq!(r.counters.useful_bytes, r.baseline.useful_bytes);
    }

    /// A run with an empty evaluation window (everything zero) must report
    /// clean zeros from every derived ratio, and its JSON must hold plain
    /// numbers — no NaN, no null.
    #[test]
    fn zeroed_result_reports_finite_ratios_and_json() {
        let r = RunResult {
            label: "PB-PPM".into(),
            trace: "empty".into(),
            train_days: 0,
            train_sessions: 0,
            eval_requests: 0,
            node_count: 0,
            model_stats: None,
            counters: Counters::default(),
            baseline: Counters::default(),
        };
        assert_eq!(r.hit_ratio(), 0.0);
        assert_eq!(r.baseline_hit_ratio(), 0.0);
        assert_eq!(r.latency_reduction(), 0.0);
        assert_eq!(r.traffic_increment(), 0.0);
        assert_eq!(r.popular_prefetch_fraction(), 0.0);
        assert_eq!(r.path_utilization(), 0.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("NaN"), "{json}");
        // `model_stats` is a legitimate null; no float field may be one.
        assert_eq!(json.matches("null").count(), 1, "{json}");
    }

    #[test]
    fn zero_training_days_is_safe() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::Pb(PbConfig::default()), 0);
        let r = run_experiment(&trace, &cfg);
        assert_eq!(r.train_sessions, 0);
        assert_eq!(r.counters.prefetched_docs, 0, "nothing to predict from");
    }

    #[test]
    fn results_are_deterministic() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::Pb(PbConfig::default()), 2);
        let a = run_experiment(&trace, &cfg);
        let b = run_experiment(&trace, &cfg);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.node_count, b.node_count);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // The sharded eval pass must be bit-identical across worker counts:
        // shards share nothing and merge in ascending-client order.
        let trace = tiny_trace();
        for spec in [
            ModelSpec::NoPrefetch,
            ModelSpec::Standard { max_height: None },
            ModelSpec::Pb(PbConfig::default()),
        ] {
            let mut serial = ExperimentConfig::paper_default(spec, 2);
            serial.threads = 1;
            let mut parallel = serial.clone();
            parallel.threads = 4;
            let a = run_experiment(&trace, &serial);
            let b = run_experiment(&trace, &parallel);
            assert_eq!(a.counters, b.counters, "{}", a.label);
            assert_eq!(a.baseline, b.baseline, "{}", a.label);
            assert_eq!(a.model_stats, b.model_stats, "{}", a.label);
            assert_eq!(a.node_count, b.node_count, "{}", a.label);
        }
    }

    #[test]
    fn telemetry_is_thread_invariant() {
        // Everything but wall-clock latency buckets must be bit-identical
        // across worker counts, for the same reason the counters are.
        let trace = tiny_trace();
        let mut serial = ExperimentConfig::paper_default(ModelSpec::Pb(PbConfig::default()), 2);
        serial.threads = 1;
        let mut parallel = serial.clone();
        parallel.threads = 4;
        let a = run_experiment_full(&trace, &serial);
        let b = run_experiment_full(&trace, &parallel);
        assert_eq!(a.telemetry.browser, b.telemetry.browser);
        assert_eq!(a.telemetry.proxy, b.telemetry.proxy);
        assert_eq!(a.telemetry.warm_requests, b.telemetry.warm_requests);
        assert_eq!(a.telemetry.predict_calls, b.telemetry.predict_calls);
        assert_eq!(a.telemetry.push_depth, b.telemetry.push_depth);
        assert_eq!(
            a.telemetry.prefetch_hit_bytes,
            b.telemetry.prefetch_hit_bytes
        );
        // Latency histograms differ in buckets but never in volume.
        assert_eq!(a.telemetry.predict_ns.count(), a.telemetry.predict_calls);
        assert_eq!(b.telemetry.predict_ns.count(), b.telemetry.predict_calls);
        // The baseline never predicts, so it is fully deterministic.
        assert_eq!(a.baseline_telemetry, b.baseline_telemetry);
    }

    #[test]
    fn telemetry_is_consistent_with_counters() {
        let trace = tiny_trace();
        let cfg = ExperimentConfig::paper_default(ModelSpec::Pb(PbConfig::default()), 2);
        let o = run_experiment_full(&trace, &cfg);
        let tel = &o.telemetry;
        let c = &o.result.counters;
        assert_eq!(
            tel.browser.prefetch_hits + tel.proxy.prefetch_hits,
            c.prefetch_hits
        );
        assert_eq!(
            tel.browser.demand_hits + tel.proxy.demand_hits,
            c.cache_hits
        );
        assert_eq!(
            tel.browser.misses + tel.proxy.misses,
            c.requests - c.cache_hits - c.prefetch_hits
        );
        assert_eq!(
            tel.browser.prefetched_bytes + tel.proxy.prefetched_bytes,
            c.prefetched_bytes
        );
        assert_eq!(tel.push_depth.sum(), c.prefetched_docs);
        assert_eq!(tel.push_depth.count(), tel.predict_calls);
        assert!(tel.wasted_prefetch_bytes() <= c.prefetched_bytes);
        assert!(tel.warm_requests > 0);
    }

    #[test]
    fn node_counts_rank_std_above_lrs_above_pb() {
        // The full Table-1 ranking needs a realistic trace scale (see the
        // integration tests); at tiny scale the robust claims are that the
        // standard model dwarfs both compact models and that the pruned
        // PB-PPM is far below standard.
        let trace = tiny_trace();
        let rs = run_models(
            &trace,
            &[
                ModelSpec::Standard { max_height: None },
                ModelSpec::Lrs,
                ModelSpec::pb_paper(true),
            ],
            2,
        );
        let (std, lrs, pb) = (rs[0].node_count, rs[1].node_count, rs[2].node_count);
        assert!(std > lrs, "standard {std} should exceed LRS {lrs}");
        assert!(std > 3 * pb, "standard {std} should dwarf PB {pb}");
    }
}

#[cfg(test)]
mod warmup_tests {
    use super::*;
    use crate::config::ModelSpec;
    use pbppm_trace::WorkloadConfig;

    #[test]
    fn warmup_days_raise_the_baseline_hit_ratio() {
        let trace = WorkloadConfig::tiny(13).generate();
        let mut cold = ExperimentConfig::paper_default(ModelSpec::NoPrefetch, 2);
        cold.warmup_days = 0;
        let mut warm = cold.clone();
        warm.warmup_days = 1;
        let r_cold = run_experiment(&trace, &cold);
        let r_warm = run_experiment(&trace, &warm);
        assert!(
            r_warm.baseline_hit_ratio() > r_cold.baseline_hit_ratio(),
            "warmed caches must hit more: {} vs {}",
            r_warm.baseline_hit_ratio(),
            r_cold.baseline_hit_ratio()
        );
        // Same demand either way.
        assert_eq!(r_cold.counters.requests, r_warm.counters.requests);
    }

    #[test]
    fn context_cap_one_degrades_to_order_one_behaviour() {
        // With a single-URL context, the standard model cannot use deep
        // branches; its pushes must match those of a height-2 model.
        let trace = WorkloadConfig::tiny(17).generate();
        let mut deep = ExperimentConfig::paper_default(ModelSpec::Standard { max_height: None }, 2);
        deep.context_cap = 1;
        let r_deep = run_experiment(&trace, &deep);
        let mut shallow = ExperimentConfig::paper_default(
            ModelSpec::Standard {
                max_height: Some(2),
            },
            2,
        );
        shallow.context_cap = 1;
        let r_shallow = run_experiment(&trace, &shallow);
        assert_eq!(
            r_deep.counters.prefetched_docs,
            r_shallow.counters.prefetched_docs
        );
        assert_eq!(
            r_deep.counters.prefetch_hits,
            r_shallow.counters.prefetch_hits
        );
    }

    #[test]
    fn eval_days_extend_the_window() {
        let trace = WorkloadConfig::tiny(19).generate();
        let mut one = ExperimentConfig::paper_default(ModelSpec::NoPrefetch, 1);
        one.eval_days = 1;
        let mut two = one.clone();
        two.eval_days = 2;
        let r1 = run_experiment(&trace, &one);
        let r2 = run_experiment(&trace, &two);
        assert!(r2.counters.requests > r1.counters.requests);
    }
}
