//! Experiment configuration: model choice, prefetch policy, environment.

use crate::latency::LatencyModel;
use pbppm_core::{LrsPpm, Order1Markov, PbConfig, PbPpm, PopularityTable, Predictor, StandardPpm};
use pbppm_trace::{ClassifyConfig, Session, SessionizerConfig};
use serde::{Deserialize, Serialize};

/// Which prediction model an experiment runs (plus the no-prefetch baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Caching only — the latency-reduction baseline.
    NoPrefetch,
    /// Standard PPM with an optional branch height cap.
    Standard {
        /// Maximum branch height; `None` = the paper's unbounded §4 setup.
        max_height: Option<u8>,
    },
    /// Longest-Repeating-Subsequence PPM.
    Lrs,
    /// Popularity-based PPM with its construction parameters.
    Pb(PbConfig),
    /// First-order Markov baseline.
    Order1,
    /// Popularity-only Top-N baseline (Markatos & Chronaki's Top-10).
    TopN {
        /// How many top documents are pushed.
        n: usize,
    },
    /// Online PB-PPM: sliding window of `window` sessions, rebuilt every
    /// `rebuild_every` sessions.
    PbOnline {
        /// PB-PPM construction parameters.
        cfg: PbConfig,
        /// Sessions kept in the sliding window.
        window: usize,
        /// Rebuild cadence in sessions.
        rebuild_every: usize,
    },
}

impl ModelSpec {
    /// PB-PPM with the paper's §4.1 construction parameters and, when
    /// `aggressive_prune`, both space optimizations (the paper's UCB-CS
    /// setting); otherwise only the 1% relative-probability cut.
    pub fn pb_paper(aggressive_prune: bool) -> Self {
        ModelSpec::Pb(PbConfig {
            prune: if aggressive_prune {
                pbppm_core::PruneConfig::aggressive()
            } else {
                pbppm_core::PruneConfig::default()
            },
            ..PbConfig::default()
        })
    }

    /// Short label used in printed tables ("PPM", "LRS", "PB-PPM", …).
    pub fn label(&self) -> String {
        match self {
            ModelSpec::NoPrefetch => "no-prefetch".to_owned(),
            ModelSpec::Standard { max_height: None } => "PPM".to_owned(),
            ModelSpec::Standard {
                max_height: Some(h),
            } => format!("{h}-PPM"),
            ModelSpec::Lrs => "LRS".to_owned(),
            ModelSpec::Pb(_) => "PB-PPM".to_owned(),
            ModelSpec::Order1 => "O1".to_owned(),
            ModelSpec::TopN { n } => format!("Top-{n}"),
            ModelSpec::PbOnline { .. } => "PB-online".to_owned(),
        }
    }

    /// Builds and trains the model on the given sessions.
    ///
    /// `popularity` is the table computed from the same training window
    /// (two-pass training); only PB-PPM consumes it. Returns `None` for
    /// [`ModelSpec::NoPrefetch`].
    pub fn build(
        &self,
        sessions: &[Session],
        popularity: &PopularityTable,
    ) -> Option<Box<dyn Predictor>> {
        self.build_with(sessions, popularity, 1)
    }

    /// [`build`](Self::build) with `threads` training workers (`0` = auto).
    ///
    /// The tree models train via their deterministic partition-and-merge
    /// `train_sessions`, so the result is **bit-identical** to sequential
    /// training at every thread count (property-tested in pbppm-core's
    /// `parallel_train` suite). Models with inherently sequential training
    /// (order-1, top-N, the online window) ignore `threads` — except the
    /// online model, whose periodic rebuilds train with them.
    pub fn build_with(
        &self,
        sessions: &[Session],
        popularity: &PopularityTable,
        threads: usize,
    ) -> Option<Box<dyn Predictor>> {
        let urls: Vec<Vec<pbppm_core::UrlId>> = sessions
            .iter()
            .map(|s| s.views.iter().map(|v| v.url).collect())
            .collect();
        let mut model: Box<dyn Predictor> = match self {
            ModelSpec::NoPrefetch => return None,
            ModelSpec::Standard { max_height } => {
                let mut m = StandardPpm::new(*max_height);
                m.train_sessions(&urls, threads);
                Box::new(m)
            }
            ModelSpec::Lrs => {
                let mut m = LrsPpm::new();
                m.train_sessions(&urls, threads);
                Box::new(m)
            }
            ModelSpec::Pb(cfg) => {
                let mut m = PbPpm::new(popularity.clone(), *cfg);
                m.train_sessions(&urls, threads);
                Box::new(m)
            }
            ModelSpec::Order1 => {
                let mut m = Order1Markov::new();
                for s in &urls {
                    m.train_session(s);
                }
                Box::new(m)
            }
            ModelSpec::TopN { n } => {
                let mut m = pbppm_core::TopN::new(*n);
                for s in &urls {
                    m.train_session(s);
                }
                Box::new(m)
            }
            ModelSpec::PbOnline {
                cfg,
                window,
                rebuild_every,
            } => {
                let mut m = pbppm_core::OnlinePbPpm::new(*cfg, *window, *rebuild_every);
                m.set_threads(threads);
                for s in &urls {
                    m.train_session(s);
                }
                Box::new(m)
            }
        };
        model.finalize();
        Some(model)
    }
}

/// Prefetch decision thresholds (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrefetchPolicy {
    /// Minimum predicted probability of the next access (paper: 0.25 for
    /// all models).
    pub prob_threshold: f64,
    /// Maximum size of a document to prefetch, bytes (paper: smaller for
    /// PB-PPM than for the baselines; see DESIGN.md §4).
    pub size_threshold: u64,
    /// Cap on documents pushed per request (keeps a single confident
    /// prediction set from flooding a client).
    pub max_per_request: usize,
    /// When no prediction clears the probability threshold, push the single
    /// best candidate anyway (an eager policy variant used in ablations).
    pub always_push_top: bool,
}

impl Default for PrefetchPolicy {
    fn default() -> Self {
        Self {
            prob_threshold: 0.25,
            size_threshold: 100_000,
            max_per_request: 8,
            always_push_top: false,
        }
    }
}

impl PrefetchPolicy {
    /// The §4.1 policy for a given model: probability 0.25 everywhere,
    /// 30 KB size threshold for PB-PPM, 10 KB for the baselines (PB-PPM can
    /// afford the larger cap because its pushes concentrate on popular
    /// documents; see DESIGN.md §4).
    pub fn paper_default_for(spec: &ModelSpec) -> Self {
        let size_threshold = match spec {
            ModelSpec::Pb(_) | ModelSpec::PbOnline { .. } => 30_000,
            _ => 10_000,
        };
        Self {
            size_threshold,
            ..Self::default()
        }
    }
}

/// Everything one §4-style experiment needs besides the trace itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Prediction model under test.
    pub model: ModelSpec,
    /// Prefetch thresholds.
    pub policy: PrefetchPolicy,
    /// Days of trace used for training (the x-axis of most figures).
    pub train_days: usize,
    /// Days evaluated right after the training window (paper: 1).
    pub eval_days: usize,
    /// Training days replayed (most recent first) to warm the caches
    /// before evaluation, without counting metrics.
    pub warmup_days: usize,
    /// Browser cache capacity, bytes (paper: 1 MB).
    pub browser_cache_bytes: u64,
    /// Proxy cache capacity, bytes (paper: 16 GB).
    pub proxy_cache_bytes: u64,
    /// Access latency model.
    pub latency: LatencyModel,
    /// Sessionizer parameters.
    pub sessionizer: SessionizerConfig,
    /// Proxy-vs-browser classification parameters.
    pub classify: ClassifyConfig,
    /// Longest per-client context remembered for prediction.
    pub context_cap: usize,
    /// Worker threads for the evaluation pass (clients are sharded over
    /// them). `0` means auto: `PBPPM_THREADS` if set, otherwise the
    /// machine's available parallelism. Results are identical for every
    /// thread count (see [`crate::engine`]).
    pub threads: usize,
}

impl ExperimentConfig {
    /// The paper's §4 setup for a given model and training-window length.
    pub fn paper_default(model: ModelSpec, train_days: usize) -> Self {
        let policy = PrefetchPolicy::paper_default_for(&model);
        Self {
            model,
            policy,
            train_days,
            eval_days: 1,
            warmup_days: 1,
            browser_cache_bytes: 1 << 20,         // 1 MiB
            proxy_cache_bytes: 16 * (1u64 << 30), // 16 GiB
            latency: LatencyModel::default(),
            sessionizer: SessionizerConfig::default(),
            classify: ClassifyConfig::default(),
            context_cap: 12,
            threads: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbppm_core::UrlId;
    use pbppm_trace::{ClientId, PageView};

    fn session(urls: &[u32]) -> Session {
        Session {
            client: ClientId(0),
            views: urls
                .iter()
                .enumerate()
                .map(|(i, &u)| PageView {
                    time: i as u64,
                    url: UrlId(u),
                    bytes: 100,
                })
                .collect(),
        }
    }

    #[test]
    fn labels() {
        assert_eq!(ModelSpec::NoPrefetch.label(), "no-prefetch");
        assert_eq!(ModelSpec::Standard { max_height: None }.label(), "PPM");
        assert_eq!(
            ModelSpec::Standard {
                max_height: Some(3)
            }
            .label(),
            "3-PPM"
        );
        assert_eq!(ModelSpec::Lrs.label(), "LRS");
        assert_eq!(ModelSpec::Pb(PbConfig::default()).label(), "PB-PPM");
    }

    #[test]
    fn build_trains_each_model_kind() {
        let sessions = vec![session(&[0, 1, 2]), session(&[0, 1, 2])];
        let mut popb = PopularityTable::builder();
        for s in &sessions {
            for v in &s.views {
                popb.record(v.url);
            }
        }
        let pop = popb.build();
        for spec in [
            ModelSpec::Standard { max_height: None },
            ModelSpec::Standard {
                max_height: Some(3),
            },
            ModelSpec::Lrs,
            ModelSpec::Pb(PbConfig::default()),
            ModelSpec::Order1,
        ] {
            let mut model = spec.build(&sessions, &pop).expect("model");
            assert!(model.node_count() > 0, "{}", spec.label());
            let mut out = Vec::new();
            model.predict(&[UrlId(0)], &mut out);
            assert!(!out.is_empty(), "{} should predict", spec.label());
            assert_eq!(out[0].url, UrlId(1));
        }
        assert!(ModelSpec::NoPrefetch.build(&sessions, &pop).is_none());
    }

    #[test]
    fn paper_policy_sizes() {
        let pb = PrefetchPolicy::paper_default_for(&ModelSpec::Pb(PbConfig::default()));
        let std = PrefetchPolicy::paper_default_for(&ModelSpec::Standard { max_height: None });
        assert_eq!(pb.size_threshold, 30_000);
        assert_eq!(std.size_threshold, 10_000);
        assert_eq!(pb.prob_threshold, 0.25);
    }

    #[test]
    fn paper_default_config() {
        let cfg = ExperimentConfig::paper_default(ModelSpec::Lrs, 5);
        assert_eq!(cfg.train_days, 5);
        assert_eq!(cfg.eval_days, 1);
        assert_eq!(cfg.browser_cache_bytes, 1 << 20);
        assert_eq!(cfg.proxy_cache_bytes, 16 << 30);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = ExperimentConfig::paper_default(ModelSpec::Pb(PbConfig::default()), 3);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
