//! A byte-capacity LRU cache.
//!
//! The paper's simulator gives each proxy a 16 GB disk cache and each
//! browser a 1 MB cache, both managed with LRU (§2.2). This implementation
//! is an intrusive doubly-linked list over a slab of slots plus a hash map —
//! O(1) hit, insert, and eviction, no per-entry allocation after warm-up.
//!
//! Entries remember whether they were **prefetched** and not yet demanded;
//! the first demand access returns that flag (and clears it), which is how
//! the simulator attributes hits to prefetching (Fig. 2 left, Fig. 5).

use pbppm_core::{FxHashMap, UrlId};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot {
    url: UrlId,
    size: u64,
    prev: usize,
    next: usize,
    prefetched: bool,
}

/// Outcome of a demand lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Not in the cache.
    Miss,
    /// In the cache via a regular (demand) fetch, or already demanded once.
    Hit,
    /// In the cache via prefetch, demanded now for the first time.
    PrefetchHit,
}

/// Byte-capacity LRU cache of documents.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    map: FxHashMap<UrlId, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    evictions: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            used: 0,
            map: FxHashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            evictions: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently charged (zero-size documents count as one byte —
    /// see [`LruCache::insert`]).
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Demand lookup: promotes on hit and reports prefetch attribution.
    pub fn demand(&mut self, url: UrlId) -> Lookup {
        let Some(&idx) = self.map.get(&url) else {
            return Lookup::Miss;
        };
        self.detach(idx);
        self.push_front(idx);
        if self.slots[idx].prefetched {
            self.slots[idx].prefetched = false;
            Lookup::PrefetchHit
        } else {
            Lookup::Hit
        }
    }

    /// Non-promoting, non-mutating membership test (used by the prefetch
    /// policy to avoid pushing what is already cached).
    pub fn contains(&self, url: UrlId) -> bool {
        self.map.contains_key(&url)
    }

    /// Inserts (or refreshes) a document of `size` bytes, evicting LRU
    /// entries as needed. Documents larger than the whole cache are not
    /// cached at all. Returns `false` in that case.
    ///
    /// Zero-size documents (HTTP 204s, empty files) are charged one byte:
    /// a free entry would never create eviction pressure and could occupy
    /// a slot forever, outliving every sized neighbor. The one-byte charge
    /// keeps them reclaimable by the normal LRU walk and matches how the
    /// simulator's proxy already accounts transfer sizes (`max(1)`).
    ///
    /// Re-inserting an existing document updates its size, promotes it, and
    /// — when `prefetched` is false — clears its prefetch attribution;
    /// a prefetch of an already-cached document leaves attribution as is.
    pub fn insert(&mut self, url: UrlId, size: u64, prefetched: bool) -> bool {
        let charge = size.max(1);
        if charge > self.capacity {
            // Too big to ever fit: also drop any stale smaller copy.
            self.remove(url);
            return false;
        }
        if let Some(&idx) = self.map.get(&url) {
            let old = self.slots[idx].size;
            self.used = self.used - old + charge;
            self.slots[idx].size = charge;
            if !prefetched {
                self.slots[idx].prefetched = false;
            }
            self.detach(idx);
            self.push_front(idx);
            // A same-size (or shrinking) refresh cannot overflow the cache:
            // only a grown charge needs the eviction walk.
            if charge > old {
                self.evict_to_fit();
            }
            return true;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    url,
                    size: charge,
                    prev: NIL,
                    next: NIL,
                    prefetched,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    url,
                    size: charge,
                    prev: NIL,
                    next: NIL,
                    prefetched,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(url, idx);
        self.used += charge;
        self.push_front(idx);
        self.evict_to_fit();
        true
    }

    fn evict_to_fit(&mut self) {
        while self.used > self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "over capacity with empty list");
            // Never evict the entry we just promoted to the head unless it
            // is the only one (then the list is consistent anyway).
            self.remove_slot(victim);
            self.evictions += 1;
        }
    }

    fn remove_slot(&mut self, idx: usize) {
        self.detach(idx);
        self.used -= self.slots[idx].size;
        self.map.remove(&self.slots[idx].url);
        self.free.push(idx);
    }

    /// Removes a document if present; returns whether it was there.
    pub fn remove(&mut self, url: UrlId) -> bool {
        if let Some(&idx) = self.map.get(&url) {
            self.remove_slot(idx);
            true
        } else {
            false
        }
    }

    /// URLs currently cached, most recently used first (test/debug helper).
    pub fn iter_mru(&self) -> impl Iterator<Item = UrlId> + '_ {
        struct Iter<'a> {
            cache: &'a LruCache,
            cur: usize,
        }
        impl Iterator for Iter<'_> {
            type Item = UrlId;
            fn next(&mut self) -> Option<UrlId> {
                if self.cur == NIL {
                    return None;
                }
                let slot = &self.cache.slots[self.cur];
                self.cur = slot.next;
                Some(slot.url)
            }
        }
        Iter {
            cache: self,
            cur: self.head,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn basic_insert_and_hit() {
        let mut c = LruCache::new(100);
        assert_eq!(c.demand(u(1)), Lookup::Miss);
        assert!(c.insert(u(1), 40, false));
        assert_eq!(c.demand(u(1)), Lookup::Hit);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 40);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(100);
        c.insert(u(1), 40, false);
        c.insert(u(2), 40, false);
        c.demand(u(1)); // 1 is now MRU
        c.insert(u(3), 40, false); // must evict 2
        assert_eq!(c.demand(u(2)), Lookup::Miss);
        assert_eq!(c.demand(u(1)), Lookup::Hit);
        assert_eq!(c.demand(u(3)), Lookup::Hit);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut c = LruCache::new(100);
        for i in 0..50 {
            c.insert(u(i), 7, false);
            assert!(c.used_bytes() <= 100);
        }
    }

    #[test]
    fn oversized_objects_are_not_cached() {
        let mut c = LruCache::new(100);
        assert!(!c.insert(u(1), 101, false));
        assert_eq!(c.demand(u(1)), Lookup::Miss);
        assert_eq!(c.len(), 0);
        // Exactly capacity fits.
        assert!(c.insert(u(2), 100, false));
        assert_eq!(c.demand(u(2)), Lookup::Hit);
    }

    #[test]
    fn oversized_reinsert_drops_stale_copy() {
        let mut c = LruCache::new(100);
        c.insert(u(1), 50, false);
        assert!(!c.insert(u(1), 200, false));
        assert_eq!(c.demand(u(1)), Lookup::Miss);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn prefetch_attribution_fires_once() {
        let mut c = LruCache::new(100);
        c.insert(u(1), 10, true);
        assert_eq!(c.demand(u(1)), Lookup::PrefetchHit);
        assert_eq!(c.demand(u(1)), Lookup::Hit, "only the first touch counts");
    }

    #[test]
    fn demand_insert_clears_prefetch_flag() {
        let mut c = LruCache::new(100);
        c.insert(u(1), 10, true);
        c.insert(u(1), 10, false); // demand re-fetch
        assert_eq!(c.demand(u(1)), Lookup::Hit);
    }

    #[test]
    fn prefetch_of_cached_doc_keeps_demand_status() {
        let mut c = LruCache::new(100);
        c.insert(u(1), 10, false);
        c.insert(u(1), 10, true); // server pushes it again
        assert_eq!(
            c.demand(u(1)),
            Lookup::Hit,
            "already demanded: no re-attribution"
        );
    }

    #[test]
    fn resize_on_reinsert_updates_used_bytes() {
        let mut c = LruCache::new(100);
        c.insert(u(1), 10, false);
        c.insert(u(1), 60, false);
        assert_eq!(c.used_bytes(), 60);
        c.insert(u(2), 40, false);
        assert_eq!(c.used_bytes(), 100);
        c.insert(u(1), 90, false); // grows, evicts 2
        assert_eq!(c.used_bytes(), 90);
        assert!(!c.contains(u(2)));
    }

    #[test]
    fn remove_works() {
        let mut c = LruCache::new(100);
        c.insert(u(1), 10, false);
        assert!(c.remove(u(1)));
        assert!(!c.remove(u(1)));
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.demand(u(1)), Lookup::Miss);
    }

    #[test]
    fn mru_order_is_maintained() {
        let mut c = LruCache::new(1000);
        c.insert(u(1), 1, false);
        c.insert(u(2), 1, false);
        c.insert(u(3), 1, false);
        c.demand(u(1));
        let order: Vec<u32> = c.iter_mru().map(|x| x.0).collect();
        assert_eq!(order, vec![1, 3, 2]);
    }

    #[test]
    fn slot_reuse_after_eviction() {
        let mut c = LruCache::new(10);
        for i in 0..100 {
            c.insert(u(i), 5, false);
        }
        // Only 2 can fit; the slab must not have grown to 100.
        assert_eq!(c.len(), 2);
        assert!(c.slots.len() <= 4, "slots grew to {}", c.slots.len());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c = LruCache::new(0);
        assert!(!c.insert(u(1), 1, false));
        // Zero-size objects carry a one-byte charge, so they need capacity
        // like everything else.
        assert!(!c.insert(u(2), 0, false));
        assert_eq!(c.demand(u(1)), Lookup::Miss);
        assert_eq!(c.demand(u(2)), Lookup::Miss);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn zero_size_documents_age_out_like_any_other() {
        let mut c = LruCache::new(3);
        c.insert(u(1), 0, false);
        assert_eq!(c.used_bytes(), 1, "zero-size doc is charged one byte");
        // Three sized inserts create enough pressure to reclaim its slot.
        c.insert(u(2), 1, false);
        c.insert(u(3), 1, false);
        c.insert(u(4), 1, false);
        assert!(!c.contains(u(1)), "zero-size entry must not be immortal");
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn same_size_refresh_keeps_cache_intact() {
        let mut c = LruCache::new(100);
        c.insert(u(1), 50, false);
        c.insert(u(2), 50, false); // exactly full
        c.insert(u(1), 50, false); // refresh: no eviction may happen
        assert_eq!(c.evictions(), 0);
        assert!(c.contains(u(1)) && c.contains(u(2)));
        assert_eq!(c.used_bytes(), 100);
        c.insert(u(1), 30, false); // shrink: still no eviction
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.used_bytes(), 80);
    }

    #[test]
    fn contains_does_not_promote() {
        let mut c = LruCache::new(2);
        c.insert(u(1), 1, false);
        c.insert(u(2), 1, false);
        assert!(c.contains(u(1)));
        c.insert(u(3), 1, false); // evicts 1 (contains() must not have promoted it)
        assert!(!c.contains(u(1)));
        assert!(c.contains(u(2)));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Insert {
                url: u32,
                size: u64,
                prefetched: bool,
            },
            Demand(u32),
            Remove(u32),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            // (kind, url, size, prefetched): kind 0-3 inserts (weighting
            // inserts over the other ops), 4-5 demands, 6 removes.
            (0u8..7, 0u32..12, 0u64..40, 0u8..2).prop_map(
                |(kind, url, size, prefetched)| match kind {
                    0..=3 => Op::Insert {
                        url,
                        size,
                        prefetched: prefetched == 1,
                    },
                    4 | 5 => Op::Demand(url),
                    _ => Op::Remove(url),
                },
            )
        }

        /// The accounting invariant the `used` counter must never drift
        /// from: it equals the sum of live slot charges exactly.
        fn check_invariants(c: &LruCache) {
            let slot_sum: u64 = c.map.values().map(|&idx| c.slots[idx].size).sum();
            assert_eq!(c.used_bytes(), slot_sum, "used drifted from slot sizes");
            assert!(c.used_bytes() <= c.capacity(), "over capacity");
            assert_eq!(c.len(), c.map.len());
            assert_eq!(c.iter_mru().count(), c.len(), "list length != map size");
            for &idx in c.map.values() {
                assert!(c.slots[idx].size >= 1, "zero charge stored");
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn used_bytes_equals_sum_of_live_slot_sizes(
                capacity in 0u64..120,
                ops in prop::collection::vec(op_strategy(), 1..80),
            ) {
                let mut c = LruCache::new(capacity);
                for op in ops {
                    match op {
                        Op::Insert { url, size, prefetched } => {
                            let fits = size.max(1) <= capacity;
                            prop_assert_eq!(c.insert(u(url), size, prefetched), fits);
                        }
                        Op::Demand(url) => {
                            c.demand(u(url));
                        }
                        Op::Remove(url) => {
                            c.remove(u(url));
                        }
                    }
                    check_invariants(&c);
                }
            }
        }
    }
}
