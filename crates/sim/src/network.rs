//! Network effects of prefetching: a shared, finite-bandwidth server link.
//!
//! The paper's latency model charges every fetch the same connect +
//! transfer time, which is accurate while the server's egress link is far
//! from saturation. Crovella & Barford ("The network effects of
//! prefetching", INFOCOM '98 — cited in the paper's related work) showed
//! the catch: prefetch traffic queues behind demand traffic, so an
//! aggressive prefetcher can *increase* user-visible latency under load.
//!
//! This module reproduces that experiment: demand and prefetch transfers
//! share one FIFO link; sweeping the link capacity moves the system from
//! underload (prefetching saves latency) to saturation (prefetching's
//! extra bytes hurt everyone). [`run_network_experiment`] measures one
//! cell; the `network` bench binary sweeps the capacity axis.

use crate::cache::{Lookup, LruCache};
use crate::config::ExperimentConfig;
use crate::server::PrefetchServer;
use pbppm_core::{FxHashMap, PopularityTable, UrlId};
use pbppm_trace::{sessionize, ClientId, DocCatalog, Session, Trace};
use serde::{Deserialize, Serialize};

/// A FIFO shared link with finite bandwidth.
#[derive(Debug, Clone)]
pub struct SharedLink {
    bytes_per_sec: f64,
    free_at: f64,
    busy_secs: f64,
    queued_bytes: u64,
}

impl SharedLink {
    /// Creates a link with the given capacity (bytes per second).
    pub fn new(bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "capacity must be positive");
        Self {
            bytes_per_sec,
            free_at: 0.0,
            busy_secs: 0.0,
            queued_bytes: 0,
        }
    }

    /// Queues a `size`-byte transfer arriving at `now`; returns its
    /// completion time. FIFO: the transfer starts when the link frees up.
    pub fn transfer(&mut self, now: f64, size: u64) -> f64 {
        let start = self.free_at.max(now);
        let duration = size as f64 / self.bytes_per_sec;
        self.free_at = start + duration;
        self.busy_secs += duration;
        self.queued_bytes += size;
        self.free_at
    }

    /// Total bytes ever queued on the link.
    pub fn bytes_transferred(&self) -> u64 {
        self.queued_bytes
    }

    /// Link utilization over `[0, horizon]` seconds.
    pub fn utilization(&self, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            0.0
        } else {
            (self.busy_secs / horizon).min(1.0)
        }
    }
}

/// Outcome of one bandwidth-constrained run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NetworkCounters {
    /// Demand requests processed.
    pub requests: u64,
    /// Demand requests served from cache.
    pub hits: u64,
    /// Total user-visible latency, seconds (hits cost zero).
    pub latency_secs: f64,
    /// Bytes put on the link (demand misses + prefetches).
    pub sent_bytes: u64,
    /// Documents pushed by the prefetcher.
    pub prefetched_docs: u64,
    /// Link utilization over the evaluation window.
    pub utilization: f64,
}

impl NetworkCounters {
    /// Mean user-visible latency per request.
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.latency_secs / self.requests as f64
        }
    }
}

/// Result of [`run_network_experiment`]: the prefetching run and its
/// caching-only baseline on the same link capacity.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NetworkRunResult {
    /// Link capacity, bytes per second.
    pub bytes_per_sec: f64,
    /// Counters with prefetching.
    pub with_prefetch: NetworkCounters,
    /// Counters without prefetching.
    pub baseline: NetworkCounters,
}

impl NetworkRunResult {
    /// Relative latency change from prefetching: negative = prefetching
    /// *hurt* (the saturation regime).
    pub fn latency_reduction(&self) -> f64 {
        let base = self.baseline.mean_latency();
        if base <= 0.0 {
            0.0
        } else {
            (base - self.with_prefetch.mean_latency()) / base
        }
    }
}

struct ClientState {
    cache: LruCache,
    ctx: Vec<UrlId>,
    last_time: u64,
}

fn network_pass(
    mut server: Option<&mut PrefetchServer>,
    views: &[(u64, ClientId, UrlId)],
    catalog: &DocCatalog,
    cfg: &ExperimentConfig,
    bytes_per_sec: f64,
) -> NetworkCounters {
    let mut link = SharedLink::new(bytes_per_sec);
    let mut clients: FxHashMap<ClientId, ClientState> = FxHashMap::default();
    let mut counters = NetworkCounters::default();
    let mut push: Vec<(UrlId, u64)> = Vec::new();
    let t0 = views.first().map_or(0, |v| v.0);

    for &(time, client, url) in views {
        let state = clients.entry(client).or_insert_with(|| ClientState {
            cache: LruCache::new(cfg.browser_cache_bytes),
            ctx: Vec::new(),
            last_time: time,
        });
        // Session gap resets the context.
        if time.saturating_sub(state.last_time) > cfg.sessionizer.idle_gap_secs {
            state.ctx.clear();
        }
        state.last_time = time;
        if state.ctx.len() == cfg.context_cap.max(1) {
            state.ctx.remove(0);
        }
        state.ctx.push(url);

        let now = (time - t0) as f64;
        let size = u64::from(catalog.size(url)).max(1);
        counters.requests += 1;
        if state.cache.demand(url) != Lookup::Miss {
            counters.hits += 1;
            continue;
        }
        // Demand transfer queues on the shared link.
        let done = link.transfer(now, size);
        counters.latency_secs += cfg.latency.connect_secs + (done - now);
        counters.sent_bytes += size;
        state.cache.insert(url, size, false);
        if let Some(server) = server.as_deref_mut() {
            let cache = &state.cache;
            server.decide(&state.ctx, catalog, |u| cache.contains(u), &mut push);
            for &(purl, psize) in &push {
                // Prefetch transfers consume the same link but nobody waits
                // on them directly — their cost is the queueing they inflict
                // on later demand transfers.
                link.transfer(now, psize);
                counters.sent_bytes += psize;
                counters.prefetched_docs += 1;
                state.cache.insert(purl, psize, true);
            }
        }
    }
    let horizon = views.last().map_or(0.0, |v| (v.0 - t0) as f64);
    counters.utilization = link.utilization(horizon.max(1.0));
    counters
}

/// Runs the bandwidth-constrained experiment: train as usual, then replay
/// the evaluation day against a link of `bytes_per_sec`, with and without
/// prefetching.
pub fn run_network_experiment(
    trace: &Trace,
    cfg: &ExperimentConfig,
    bytes_per_sec: f64,
) -> NetworkRunResult {
    let train_sessions = sessionize(trace.first_days(cfg.train_days), &cfg.sessionizer);
    let eval_sessions = sessionize(
        trace.day_span(cfg.train_days, cfg.train_days + cfg.eval_days.max(1)),
        &cfg.sessionizer,
    );
    let mut catalog = DocCatalog::from_sessions(&train_sessions);
    catalog.observe_sessions(&eval_sessions);
    let mut popb = PopularityTable::builder();
    for s in &train_sessions {
        for v in &s.views {
            popb.record(v.url);
        }
    }
    let popularity = popb.build();

    // Time-ordered view stream (the link is shared across all clients).
    let mut views: Vec<(u64, ClientId, UrlId)> = eval_sessions
        .iter()
        .flat_map(|s: &Session| s.views.iter().map(|v| (v.time, s.client, v.url)))
        .collect();
    views.sort_unstable_by_key(|&(t, c, _)| (t, c));

    let baseline = network_pass(None, &views, &catalog, cfg, bytes_per_sec);
    let model = cfg
        .model
        .build_with(&train_sessions, &popularity, cfg.threads);
    let with_prefetch = match model {
        None => baseline,
        Some(model) => {
            let mut server = PrefetchServer::new(model, cfg.policy);
            network_pass(Some(&mut server), &views, &catalog, cfg, bytes_per_sec)
        }
    };
    NetworkRunResult {
        bytes_per_sec,
        with_prefetch,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelSpec;
    use pbppm_trace::WorkloadConfig;

    #[test]
    fn link_is_fifo_and_accounts_time() {
        let mut link = SharedLink::new(100.0);
        // 100-byte transfer at t=0: done at 1.0.
        assert!((link.transfer(0.0, 100) - 1.0).abs() < 1e-9);
        // Next arrives at 0.5 but queues: done at 2.0.
        assert!((link.transfer(0.5, 100) - 2.0).abs() < 1e-9);
        // Arrival after the queue drains starts immediately.
        assert!((link.transfer(5.0, 100) - 6.0).abs() < 1e-9);
        assert_eq!(link.bytes_transferred(), 300);
        assert!((link.utilization(6.0) - 0.5).abs() < 1e-9);
        assert_eq!(link.utilization(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SharedLink::new(0.0);
    }

    #[test]
    fn prefetching_helps_on_a_fast_link_and_hurts_on_a_slow_one() {
        let trace = WorkloadConfig::tiny(7).generate();
        let cfg = ExperimentConfig::paper_default(ModelSpec::pb_paper(true), 2);
        let fast = run_network_experiment(&trace, &cfg, 1e9);
        assert!(
            fast.latency_reduction() > 0.0,
            "ample bandwidth: prefetch hits should reduce latency ({})",
            fast.latency_reduction()
        );
        // A link ~1000x slower: persistent queueing, prefetch bytes poison
        // the queue.
        let slow = run_network_experiment(&trace, &cfg, 20_000.0);
        assert!(
            slow.latency_reduction() < fast.latency_reduction(),
            "saturation must erode the prefetching gain ({} vs {})",
            slow.latency_reduction(),
            fast.latency_reduction()
        );
        assert!(slow.with_prefetch.utilization >= slow.baseline.utilization);
    }

    #[test]
    fn baseline_and_prefetch_runs_see_identical_demand() {
        let trace = WorkloadConfig::tiny(3).generate();
        let cfg = ExperimentConfig::paper_default(ModelSpec::Lrs, 2);
        let r = run_network_experiment(&trace, &cfg, 1e6);
        assert_eq!(r.with_prefetch.requests, r.baseline.requests);
        assert!(r.with_prefetch.sent_bytes >= r.baseline.sent_bytes);
        assert!(r.with_prefetch.hits >= r.baseline.hits);
    }

    #[test]
    fn no_prefetch_spec_degenerates_to_baseline() {
        let trace = WorkloadConfig::tiny(3).generate();
        let cfg = ExperimentConfig::paper_default(ModelSpec::NoPrefetch, 2);
        let r = run_network_experiment(&trace, &cfg, 1e6);
        assert_eq!(r.with_prefetch, r.baseline);
        assert_eq!(r.latency_reduction(), 0.0);
    }
}
