//! The §5 deployment: prefetching between a web server and a proxy.
//!
//! 1–32 randomly selected clients sit behind one shared proxy. Every request
//! first tries the client's own browser cache (1 MB), then the proxy's
//! 16 GB cache, then goes to the server. The server pushes prefetched
//! documents into the **proxy** cache, so "the total document hits come from
//! three sources: (1) hits on browsers, (2) hits on the cached documents in
//! the proxy, and (3) hits on the prefetched documents in the proxy".
//!
//! Crucially, the server sees the proxy as *one* client: the request stream
//! it predicts from is the time-interleaved merge of all users behind the
//! proxy. Deep-context models degrade as more users interleave, while
//! PB-PPM's predictions — anchored at the current URL and its special
//! links — are largely insensitive to the garbling. This is the §5
//! mechanism behind the paper's curves converging/diverging with client
//! count.

use crate::cache::{Lookup, LruCache};
use crate::config::ExperimentConfig;
use crate::metrics::Counters;
use crate::server::PrefetchServer;
use pbppm_core::{FxHashMap, PopularityTable, UrlId};
use pbppm_trace::{sessionize, ClientId, DocCatalog, Session, Trace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one server↔proxy experiment cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProxyExperimentConfig {
    /// Model, thresholds, training window, caches, latency — as in §4.
    pub base: ExperimentConfig,
    /// How many clients connect through the proxy (1–32 in Fig. 5).
    pub clients_per_proxy: usize,
    /// Seed for the random client selection.
    pub selection_seed: u64,
    /// Only clients with at least this many evaluation-window page views
    /// are candidates for selection (the §5 experiment connects *active*
    /// clients to the proxy; a client with two views tells us nothing).
    pub min_client_views: usize,
    /// Number of independent proxy groups simulated and aggregated: each
    /// group gets its own `clients_per_proxy` disjoint random clients and
    /// its own proxy cache, and the reported counters are the sums. More
    /// groups mean smoother curves (1 = the paper's literal single proxy).
    pub proxy_groups: usize,
}

/// Outcome of one server↔proxy cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProxyRunResult {
    /// Model label.
    pub label: String,
    /// Clients behind the proxy.
    pub clients: usize,
    /// Page views processed.
    pub requests: u64,
    /// Hits in the clients' own browser caches.
    pub browser_hits: u64,
    /// Hits on demand-cached documents in the proxy.
    pub proxy_hits: u64,
    /// First-touch hits on prefetched documents in the proxy.
    pub proxy_prefetch_hits: u64,
    /// Full counters (traffic, latency) of the run.
    pub counters: Counters,
    /// Counters of the caching-only baseline.
    pub baseline: Counters,
}

impl ProxyRunResult {
    /// Total hit ratio over all three hit sources (Fig. 5 left).
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.browser_hits + self.proxy_hits + self.proxy_prefetch_hits) as f64
                / self.requests as f64
        }
    }

    /// Traffic increment between server and proxy (Fig. 5 right), relative
    /// to the caching-only baseline's transfers.
    pub fn traffic_increment(&self) -> f64 {
        if self.baseline.sent_bytes == 0 {
            0.0
        } else {
            self.counters.sent_bytes as f64 / self.baseline.sent_bytes as f64 - 1.0
        }
    }
}

struct ProxyPassOutcome {
    counters: Counters,
    browser_hits: u64,
    proxy_hits: u64,
    proxy_prefetch_hits: u64,
}

fn proxy_pass(
    mut server: Option<&mut PrefetchServer>,
    sessions: &[&Session],
    catalog: &DocCatalog,
    popularity: &PopularityTable,
    cfg: &ExperimentConfig,
) -> ProxyPassOutcome {
    let mut browsers: FxHashMap<ClientId, LruCache> = FxHashMap::default();
    let mut proxy = LruCache::new(cfg.proxy_cache_bytes);
    let mut counters = Counters::default();
    let (mut browser_hits, mut proxy_hits, mut proxy_prefetch_hits) = (0u64, 0u64, 0u64);
    // The server's view: one merged, time-interleaved stream from the
    // proxy's address. Contexts from different users garble each other —
    // the price of aggregation the paper's §5 explores.
    let mut ctx: Vec<UrlId> = Vec::new();
    let mut push: Vec<(UrlId, u64)> = Vec::new();

    // Merge all selected sessions' views into proxy arrival order.
    let mut stream: Vec<(u64, ClientId, UrlId)> = sessions
        .iter()
        .flat_map(|s| s.views.iter().map(|v| (v.time, s.client, v.url)))
        .collect();
    stream.sort_by_key(|&(t, c, _)| (t, c));

    for (_, client, url) in stream {
        let browser = browsers
            .entry(client)
            .or_insert_with(|| LruCache::new(cfg.browser_cache_bytes));
        if ctx.len() == cfg.context_cap.max(1) {
            ctx.remove(0);
        }
        ctx.push(url);
        let size = u64::from(catalog.size(url)).max(1);
        counters.requests += 1;
        counters.useful_bytes += size;
        if browser.demand(url) != Lookup::Miss {
            browser_hits += 1;
            counters.cache_hits += 1;
            counters.latency_secs += cfg.latency.hit_secs();
            continue;
        }
        match proxy.demand(url) {
            Lookup::PrefetchHit => {
                proxy_prefetch_hits += 1;
                counters.prefetch_hits += 1;
                if popularity.is_popular(url) {
                    counters.prefetch_hits_popular += 1;
                }
                // Serve to the browser from the proxy: near-local.
                counters.latency_secs += cfg.latency.hit_secs();
                browser.insert(url, size, false);
            }
            Lookup::Hit => {
                proxy_hits += 1;
                counters.cache_hits += 1;
                counters.latency_secs += cfg.latency.hit_secs();
                browser.insert(url, size, false);
            }
            Lookup::Miss => {
                counters.sent_bytes += size;
                counters.latency_secs += cfg.latency.fetch_secs(size);
                proxy.insert(url, size, false);
                browser.insert(url, size, false);
                if let Some(server) = server.as_deref_mut() {
                    server.decide(&ctx, catalog, |u| proxy.contains(u), &mut push);
                    for &(purl, psize) in &push {
                        counters.sent_bytes += psize;
                        counters.prefetched_docs += 1;
                        counters.prefetched_bytes += psize;
                        proxy.insert(purl, psize, true);
                    }
                }
            }
        }
    }
    ProxyPassOutcome {
        counters,
        browser_hits,
        proxy_hits,
        proxy_prefetch_hits,
    }
}

/// Runs one server↔proxy experiment cell.
pub fn run_proxy_experiment(trace: &Trace, cfg: &ProxyExperimentConfig) -> ProxyRunResult {
    let base = &cfg.base;
    let train_reqs = trace.first_days(base.train_days);
    let eval_reqs = trace.day_span(base.train_days, base.train_days + base.eval_days.max(1));

    let train_sessions = sessionize(train_reqs, &base.sessionizer);
    let mut eval_sessions = sessionize(eval_reqs, &base.sessionizer);
    eval_sessions.sort_by_key(Session::start);

    let mut catalog = DocCatalog::from_sessions(&train_sessions);
    catalog.observe_sessions(&eval_sessions);

    let mut popb = PopularityTable::builder();
    for s in &train_sessions {
        for v in &s.views {
            popb.record(v.url);
        }
    }
    let popularity = popb.build();

    // Randomly select the clients behind the proxy, among those active
    // enough in the evaluation window.
    let mut views_per_client: FxHashMap<ClientId, usize> = FxHashMap::default();
    for s in &eval_sessions {
        *views_per_client.entry(s.client).or_default() += s.views.len();
    }
    let mut active: Vec<ClientId> = views_per_client
        .iter()
        .filter(|&(_, &v)| v >= cfg.min_client_views.max(1))
        .map(|(&c, _)| c)
        .collect();
    active.sort();
    let mut rng = StdRng::seed_from_u64(cfg.selection_seed);
    active.shuffle(&mut rng);

    // Carve disjoint groups of `clients_per_proxy` from the shuffled pool.
    let per_group = cfg.clients_per_proxy.max(1);
    let groups = cfg.proxy_groups.max(1).min(active.len().max(1));
    let mut model = base
        .model
        .build_with(&train_sessions, &popularity, base.threads);
    let mut server = model.take().map(|m| PrefetchServer::new(m, base.policy));

    let mut outcome = ProxyPassOutcome {
        counters: Counters::default(),
        browser_hits: 0,
        proxy_hits: 0,
        proxy_prefetch_hits: 0,
    };
    let mut baseline = Counters::default();
    let mut clients_used = 0;
    for g in 0..groups {
        let lo = g * per_group;
        if lo >= active.len() {
            break;
        }
        let hi = (lo + per_group).min(active.len());
        let mut group: Vec<ClientId> = active[lo..hi].to_vec();
        group.sort();
        let selected: Vec<&Session> = eval_sessions
            .iter()
            .filter(|s| group.binary_search(&s.client).is_ok())
            .collect();
        let b = proxy_pass(None, &selected, &catalog, &popularity, base);
        baseline.merge(&b.counters);
        let o = proxy_pass(
            server.as_mut().map(|s| s as &mut PrefetchServer),
            &selected,
            &catalog,
            &popularity,
            base,
        );
        outcome.counters.merge(&o.counters);
        outcome.browser_hits += o.browser_hits;
        outcome.proxy_hits += o.proxy_hits;
        outcome.proxy_prefetch_hits += o.proxy_prefetch_hits;
        clients_used = clients_used.max(hi - lo);
    }

    ProxyRunResult {
        label: base.model.label(),
        clients: clients_used,
        requests: outcome.counters.requests,
        browser_hits: outcome.browser_hits,
        proxy_hits: outcome.proxy_hits,
        proxy_prefetch_hits: outcome.proxy_prefetch_hits,
        counters: outcome.counters,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelSpec;
    use pbppm_core::PbConfig;
    use pbppm_trace::WorkloadConfig;

    fn cell(model: ModelSpec, clients: usize) -> ProxyRunResult {
        let trace = WorkloadConfig::tiny(11).generate();
        let cfg = ProxyExperimentConfig {
            base: ExperimentConfig::paper_default(model, 2),
            clients_per_proxy: clients,
            selection_seed: 5,
            min_client_views: 1,
            proxy_groups: 1,
        };
        run_proxy_experiment(&trace, &cfg)
    }

    #[test]
    fn hits_decompose_into_three_sources() {
        let r = cell(ModelSpec::Pb(PbConfig::default()), 8);
        assert!(r.requests > 0);
        assert_eq!(
            r.counters.hits(),
            r.browser_hits + r.proxy_hits + r.proxy_prefetch_hits
        );
        assert!(r.hit_ratio() <= 1.0);
    }

    #[test]
    fn prefetching_beats_the_baseline_hit_ratio() {
        let r = cell(ModelSpec::Pb(PbConfig::default()), 16);
        assert!(r.counters.hits() >= r.baseline.hits());
        assert!(r.counters.prefetched_docs > 0);
    }

    #[test]
    fn more_clients_more_requests() {
        let small = cell(ModelSpec::NoPrefetch, 1);
        let large = cell(ModelSpec::NoPrefetch, 16);
        assert!(large.requests > small.requests);
        assert!(large.clients > small.clients);
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let a = cell(ModelSpec::Lrs, 4);
        let b = cell(ModelSpec::Lrs, 4);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn clients_capped_by_active_population() {
        let r = cell(ModelSpec::NoPrefetch, 10_000);
        assert!(r.clients < 10_000, "cannot select more clients than exist");
    }
}
