//! Property tests for the simulation substrate.

use pbppm_sim::SharedLink;
use proptest::prelude::*;

proptest! {
    /// FIFO link invariants under arbitrary arrival/size sequences:
    /// completions are non-decreasing, each transfer takes at least its
    /// service time, the busy time is exactly the sum of service times, and
    /// utilization never exceeds 1.
    #[test]
    fn shared_link_invariants(
        capacity in 1.0f64..1e7,
        jobs in prop::collection::vec((0u32..10_000, 1u64..1_000_000), 1..100),
    ) {
        let mut link = SharedLink::new(capacity);
        // Arrivals must be non-decreasing (the simulator replays in time
        // order): accumulate the deltas.
        let mut now = 0.0f64;
        let mut last_done = 0.0f64;
        let mut total_service = 0.0f64;
        let mut total_bytes = 0u64;
        for &(dt, size) in &jobs {
            now += f64::from(dt) / 100.0;
            let done = link.transfer(now, size);
            let service = size as f64 / capacity;
            total_service += service;
            total_bytes += size;
            prop_assert!(done >= now + service - 1e-9,
                "transfer finished before its service time");
            prop_assert!(done >= last_done - 1e-9, "FIFO completions must be ordered");
            last_done = done;
        }
        prop_assert_eq!(link.bytes_transferred(), total_bytes);
        // Over a horizon covering all work, utilization = busy/horizon <= 1.
        let horizon = last_done.max(1e-9);
        let util = link.utilization(horizon);
        prop_assert!(util <= 1.0 + 1e-9);
        prop_assert!((util - (total_service / horizon).min(1.0)).abs() < 1e-6);
    }

    /// An idle-then-busy link: a transfer arriving after the queue drains
    /// starts immediately (no phantom queueing).
    #[test]
    fn no_phantom_queueing(sizes in prop::collection::vec(1u64..100_000, 1..20)) {
        let capacity = 1e5;
        let mut link = SharedLink::new(capacity);
        let mut t = 0.0;
        for &size in &sizes {
            // Arrive strictly after the link is guaranteed free.
            t += 1.0 + size as f64 / capacity;
            let done = link.transfer(t, size);
            prop_assert!((done - (t + size as f64 / capacity)).abs() < 1e-9,
                "idle link must start transfers immediately");
        }
    }
}
