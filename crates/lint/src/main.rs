//! `pbppm-lint` binary: `cargo run -p pbppm-lint -- [--json] [--self-test] [root]`.
//!
//! Exit status 0 when the workspace is clean (or the self-test passes),
//! 1 on violations, 2 on usage or I/O errors. The `pbppm lint`
//! subcommand drives the same library entry points.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut self_test = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                println!("usage: pbppm-lint [--json] [--self-test] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            _ if !arg.starts_with('-') && root.is_none() => root = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("pbppm-lint: unknown argument {arg:?}");
                return ExitCode::from(2);
            }
        }
    }
    let start = root.unwrap_or_else(|| PathBuf::from("."));
    let root = match pbppm_lint::find_workspace_root(&start) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pbppm-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if self_test {
        return match pbppm_lint::self_test(&root) {
            Ok(()) => {
                println!(
                    "pbppm-lint self-test OK: {} rules each tripped exactly once",
                    pbppm_lint::ALL_RULES.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("pbppm-lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match pbppm_lint::lint_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.to_json());
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                println!(
                    "pbppm-lint: {} files, {} checks, {} allowed, {} violation(s)",
                    report.files,
                    report.checks,
                    report.allowed,
                    report.violations.len()
                );
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("pbppm-lint: {e}");
            ExitCode::from(2)
        }
    }
}
