//! Typed findings and the JSON report, mirroring `pbppm_core::verify`'s
//! `AuditReport` shape: a tool tag, a check count, a clean flag, and a
//! list of typed violations — here `(rule, file, line, snippet)` instead
//! of `(kind, message, path)`.

use crate::rules::RuleId;
use std::fmt;

/// One policy violation: which rule, where, and the offending source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// The trimmed original source line.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.as_str(),
            self.snippet
        )
    }
}

/// The outcome of one lint pass over a set of files.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Files scanned.
    pub files: usize,
    /// Individual rule applications (rule × file where the rule is in
    /// scope), mirroring `AuditReport::checks`.
    pub checks: u64,
    /// Violations that survived the allowlist, in path/line order.
    pub violations: Vec<Finding>,
    /// Findings forgiven by allowlist entries.
    pub allowed: usize,
}

impl LintReport {
    /// True when no violation survived.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report as JSON (no dependencies, same hand-rolled style
    /// as `AuditReport::to_json`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128 + self.violations.len() * 128);
        s.push_str("{\"tool\":\"pbppm-lint\",\"files\":");
        s.push_str(&self.files.to_string());
        s.push_str(",\"checks\":");
        s.push_str(&self.checks.to_string());
        s.push_str(",\"allowed\":");
        s.push_str(&self.allowed.to_string());
        s.push_str(",\"clean\":");
        s.push_str(if self.is_clean() { "true" } else { "false" });
        s.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"rule\":\"");
            s.push_str(v.rule.as_str());
            s.push_str("\",\"file\":\"");
            json_escape_into(&v.file, &mut s);
            s.push_str("\",\"line\":");
            s.push_str(&v.line.to_string());
            s.push_str(",\"snippet\":\"");
            json_escape_into(&v.snippet, &mut s);
            s.push_str("\"}");
        }
        s.push_str("]}");
        s
    }
}

/// Escapes `raw` into `out` as JSON string content.
fn json_escape_into(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_mirrors_audit_report() {
        let mut r = LintReport {
            files: 2,
            checks: 10,
            ..LintReport::default()
        };
        assert!(r.is_clean());
        assert_eq!(
            r.to_json(),
            "{\"tool\":\"pbppm-lint\",\"files\":2,\"checks\":10,\"allowed\":0,\
             \"clean\":true,\"violations\":[]}"
        );
        r.violations.push(Finding {
            rule: RuleId::CoreUnwrap,
            file: "crates/core/src/x.rs".into(),
            line: 7,
            snippet: "a \"quoted\" snippet".into(),
        });
        let json = r.to_json();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"rule\":\"core-unwrap\""));
        assert!(json.contains("\\\"quoted\\\""));
    }
}
