//! `pbppm-lint` — the workspace's panic and concurrency policy as an
//! executable, Rust-aware linter.
//!
//! Replaces the retired `scripts/lint-rules.sh` grep gate. Where grep saw
//! flat lines, the hand-rolled lexer ([`lexer`]) sees comments, string and
//! raw-string literals, lifetimes-vs-char-literals, brace depth, and
//! `#[cfg(test)]` scopes — so `".unwrap()"` inside a string no longer
//! false-positives, and a real `.unwrap()` *below* a test module is no
//! longer invisible. On top of that sit the concurrency-policy rules
//! ([`rules`]) the grep gate could never express: atomics confined to
//! approved modules, justification comments on every `Relaxed`, thread
//! spawns confined to the parallelism substrate, lock-free hot paths, and
//! panic-free `Drop` impls.
//!
//! Entry points:
//!
//! * [`lint_workspace`] — lint every workspace source file against
//!   `scripts/lint-allowlist.txt`; stale allowlist entries are violations.
//! * [`self_test`] — lint the planted-violation corpus in
//!   `crates/lint/corpus/` and require every rule id to trip exactly once;
//!   this guards the linter against pattern rot exactly like the old
//!   gate's `--self-test`, but per rule.
//! * `pbppm lint [--json]` (CLI) and `cargo run -p pbppm-lint` (binary)
//!   both call the above.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lexer;
pub mod report;
pub mod rules;

pub use allowlist::Allowlist;
pub use report::{Finding, LintReport};
pub use rules::{check_file, RuleId, SourceFile, ALL_RULES};

use std::path::{Path, PathBuf};

/// Workspace-relative location of the allowlist.
pub const ALLOWLIST_PATH: &str = "scripts/lint-allowlist.txt";

/// Workspace-relative location of the planted-violation corpus.
pub const CORPUS_DIR: &str = "crates/lint/corpus";

/// Directories scanned for `.rs` files, relative to the workspace root.
/// `vendor/` (mimicked external crates) and `target/` are deliberately
/// outside this list; `crates/lint/corpus/` holds intentional violations
/// and is outside every `src/` tree.
fn scan_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src"), root.join("tests"), root.join("examples")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            roots.push(krate.join("src"));
            roots.push(krate.join("tests"));
            roots.push(krate.join("benches"));
        }
    }
    roots
}

/// Collects every workspace `.rs` file, sorted by path for deterministic
/// reports.
pub fn workspace_files(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut paths = Vec::new();
    for dir in scan_roots(root) {
        collect_rs(&dir, &mut paths)?;
    }
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let text = std::fs::read_to_string(&p)
                .map_err(|e| format!("cannot read {}: {e}", p.display()))?;
            Ok(SourceFile {
                path: relative_slash_path(root, &p),
                text,
            })
        })
        .collect()
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return Ok(()), // optional directory (no tests/, no benches/)
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints a set of files against an allowlist and assembles the report.
pub fn lint_files(files: &[SourceFile], allowlist: &Allowlist) -> LintReport {
    let mut findings = Vec::new();
    let mut checks = 0u64;
    for file in files {
        let (f, c) = check_file(file);
        findings.extend(f);
        checks += c;
    }
    checks += allowlist.entries.len() as u64; // each entry is a staleness check
    let (mut violations, allowed) = allowlist.apply(findings);
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    LintReport {
        files: files.len(),
        checks,
        violations,
        allowed,
    }
}

/// Lints the whole workspace rooted at `root` against its allowlist.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let files = workspace_files(root)?;
    let allowlist_file = root.join(ALLOWLIST_PATH);
    let allowlist = if allowlist_file.is_file() {
        let text = std::fs::read_to_string(&allowlist_file)
            .map_err(|e| format!("cannot read {ALLOWLIST_PATH}: {e}"))?;
        Allowlist::parse(ALLOWLIST_PATH, &text)?
    } else {
        Allowlist::default()
    };
    Ok(lint_files(&files, &allowlist))
}

/// Locates the workspace root: walks up from `start` to the first
/// directory holding both a `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start
        .canonicalize()
        .map_err(|e| format!("cannot resolve {}: {e}", start.display()))?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "no workspace root (Cargo.toml + crates/) at or above {}",
                start.display()
            ));
        }
    }
}

/// Runs the planted-violation self-test: every corpus file must trip
/// exactly the rule it is named for, exactly once, and the corpus
/// allowlist's deliberately-dead entry must trip `stale-allowlist` — so
/// every rule id fires exactly once across the corpus. Guards the rules
/// against pattern rot.
pub fn self_test(root: &Path) -> Result<(), String> {
    let corpus = root.join(CORPUS_DIR);
    let mut findings: Vec<Finding> = Vec::new();
    let mut planted = 0usize;
    let entries =
        std::fs::read_dir(&corpus).map_err(|e| format!("cannot read {CORPUS_DIR}: {e}"))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    paths.sort();
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let first = text.lines().next().unwrap_or("");
        let virtual_path = first
            .strip_prefix("//@path ")
            .ok_or_else(|| {
                format!(
                    "{}: corpus files must start with `//@path <virtual workspace path>`",
                    path.display()
                )
            })?
            .trim()
            .to_owned();
        planted += 1;
        let (f, _) = check_file(&SourceFile {
            path: virtual_path,
            text,
        });
        findings.extend(f);
    }
    // The corpus allowlist holds one entry that matches nothing, planting
    // the stale-allowlist violation.
    let allow_path = corpus.join("allowlist.txt");
    let allow_text = std::fs::read_to_string(&allow_path)
        .map_err(|e| format!("cannot read {}: {e}", allow_path.display()))?;
    let allowlist = Allowlist::parse("crates/lint/corpus/allowlist.txt", &allow_text)?;
    let (findings, _) = allowlist.apply(findings);

    let mut errors = Vec::new();
    for &rule in ALL_RULES {
        let hits: Vec<&Finding> = findings.iter().filter(|f| f.rule == rule).collect();
        if hits.len() != 1 {
            errors.push(format!(
                "rule {} tripped {} times (want exactly 1): {}",
                rule.as_str(),
                hits.len(),
                hits.iter()
                    .map(|f| format!("{f}"))
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
        }
    }
    if findings.len() != ALL_RULES.len() {
        errors.push(format!(
            "{} findings across {} corpus files, want exactly {} (one per rule)",
            findings.len(),
            planted,
            ALL_RULES.len()
        ));
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "self-test FAILED — the linter no longer catches its own corpus:\n  {}",
            errors.join("\n  ")
        ))
    }
}
