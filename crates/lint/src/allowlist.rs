//! The lint allowlist: narrowly-scoped permission slips, with staleness
//! detection.
//!
//! Format (one entry per line, `#` comments and blank lines ignored):
//!
//! ```text
//! <rule-id><TAB><path><TAB><substring>
//! ```
//!
//! A finding is forgiven when an entry's rule id and path match exactly
//! and the finding's snippet contains the substring. Unlike the retired
//! grep gate — which silently ignored entries that no longer matched
//! anything — every entry must forgive at least one finding in the tree it
//! was written for; a dead entry becomes a [`RuleId::StaleAllowlist`]
//! violation, so the allowlist can only ever shrink to fit reality.

use crate::report::Finding;
use crate::rules::RuleId;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule the entry forgives.
    pub rule: RuleId,
    /// Workspace-relative path the entry is scoped to.
    pub path: String,
    /// Substring the forgiven snippet must contain.
    pub pattern: String,
    /// 1-indexed line in the allowlist file (for staleness reports).
    pub line: usize,
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<Entry>,
    /// Path the list was loaded from (workspace-relative, for reports).
    pub source: String,
}

impl Allowlist {
    /// Parses allowlist text. Unknown rule ids and malformed lines are
    /// hard errors — a typo must not silently stop forgiving.
    pub fn parse(source: &str, text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = raw.splitn(3, '\t');
            let (rule, path, pattern) = match (parts.next(), parts.next(), parts.next()) {
                (Some(r), Some(p), Some(s)) if !p.is_empty() && !s.is_empty() => (r, p, s),
                _ => {
                    return Err(format!(
                        "{source}:{}: malformed entry (expected <rule-id>\\t<path>\\t<substring>): {raw:?}",
                        idx + 1
                    ))
                }
            };
            let rule = RuleId::parse(rule.trim())
                .ok_or_else(|| format!("{source}:{}: unknown rule id {rule:?}", idx + 1))?;
            entries.push(Entry {
                rule,
                path: path.trim().to_owned(),
                pattern: pattern.to_owned(),
                line: idx + 1,
            });
        }
        Ok(Allowlist {
            entries,
            source: source.to_owned(),
        })
    }

    /// Splits `findings` into surviving violations and a forgiven count,
    /// then appends one [`RuleId::StaleAllowlist`] violation per entry
    /// that forgave nothing.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut used = vec![false; self.entries.len()];
        let mut surviving = Vec::with_capacity(findings.len());
        let mut allowed = 0usize;
        for f in findings {
            let hit = self.entries.iter().position(|e| {
                e.rule == f.rule && e.path == f.file && f.snippet.contains(&e.pattern)
            });
            match hit {
                Some(i) => {
                    used[i] = true;
                    allowed += 1;
                }
                None => surviving.push(f),
            }
        }
        for (entry, used) in self.entries.iter().zip(&used) {
            if !used {
                surviving.push(Finding {
                    rule: RuleId::StaleAllowlist,
                    file: self.source.clone(),
                    line: entry.line,
                    snippet: format!(
                        "{}\t{}\t{} (matches nothing — delete it)",
                        entry.rule.as_str(),
                        entry.path,
                        entry.pattern
                    ),
                });
            }
        }
        (surviving, allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            snippet: snippet.into(),
        }
    }

    #[test]
    fn forgives_matching_findings_only() {
        let list = Allowlist::parse(
            "allow.txt",
            "# comment\ncore-unwrap\tcrates/core/src/a.rs\t.unwrap()\n",
        )
        .unwrap();
        let (surviving, allowed) = list.apply(vec![
            finding(RuleId::CoreUnwrap, "crates/core/src/a.rs", "x.unwrap()"),
            finding(RuleId::CoreUnwrap, "crates/core/src/b.rs", "y.unwrap()"),
        ]);
        assert_eq!(allowed, 1);
        assert_eq!(surviving.len(), 1);
        assert_eq!(surviving[0].file, "crates/core/src/b.rs");
    }

    #[test]
    fn dead_entries_become_stale_violations() {
        let list = Allowlist::parse(
            "allow.txt",
            "core-unwrap\tcrates/core/src/gone.rs\t.unwrap()\n",
        )
        .unwrap();
        let (surviving, allowed) = list.apply(Vec::new());
        assert_eq!(allowed, 0);
        assert_eq!(surviving.len(), 1);
        assert_eq!(surviving[0].rule, RuleId::StaleAllowlist);
        assert_eq!(surviving[0].file, "allow.txt");
        assert_eq!(surviving[0].line, 1);
    }

    #[test]
    fn malformed_and_unknown_entries_are_errors() {
        assert!(Allowlist::parse("a.txt", "no tabs here\n").is_err());
        assert!(Allowlist::parse("a.txt", "bogus-rule\tp\ts\n").is_err());
        assert!(Allowlist::parse("a.txt", "core-unwrap\t\tpattern\n").is_err());
    }
}
