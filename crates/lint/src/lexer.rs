//! A small hand-rolled Rust lexer: exactly the token awareness the rules
//! need, and nothing more.
//!
//! The old grep gate could not tell code from a comment, a string literal,
//! or a `#[cfg(test)]` module that happens to sit above production code.
//! This lexer fixes all three classes in one pass:
//!
//! * [`scrub`] produces a byte-for-byte copy of the source in which every
//!   comment body and literal body is blanked with spaces (newlines kept,
//!   so byte offsets and line numbers stay aligned with the original).
//!   Substring rules run on the scrubbed text and therefore cannot match
//!   inside `"..."`, `r#"..."#`, `'c'`, `// ...`, or `/* ... */`.
//! * The scrub records which lines carry a comment (for the
//!   `relaxed-comment` adjacency check) and which byte ranges belong to
//!   `#[cfg(test)]`-scoped items — brace-matched, so a test module may sit
//!   anywhere in the file, not just at the bottom.
//! * [`tokenize`] re-reads the scrubbed text as a flat identifier/punct
//!   token stream for the structural rules (cast detection, `Drop` impl
//!   spans, attribute checks).
//!
//! Handled literal forms: line comments (`//`, `///`, `//!`), nested block
//! comments, strings with escapes, raw strings `r"…"` / `r#"…"#` with any
//! hash count, byte/C variants (`b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`),
//! char and byte-char literals, and the `'a` lifetime / `'a'` char-literal
//! ambiguity (an identifier run after `'` is a char literal only when a
//! closing `'` follows it immediately).

use std::ops::Range;

/// The result of scrubbing one source file.
pub struct Scrub {
    /// The source with comment and literal bodies blanked. Same length and
    /// newline positions as the input.
    pub code: String,
    /// `comment_lines[i]` is true when 0-indexed line `i` carries (part of)
    /// a comment in the original source.
    pub comment_lines: Vec<bool>,
    /// Byte offset of the start of each 0-indexed line.
    pub line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]`-scoped items (attribute
    /// through the matching close brace or semicolon).
    pub test_spans: Vec<Range<usize>>,
}

impl Scrub {
    /// 0-indexed line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(line) => line,
            Err(next) => next - 1,
        }
    }

    /// True when byte `offset` falls inside a `#[cfg(test)]` scope.
    pub fn in_test_scope(&self, offset: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(&offset))
    }

    /// True when 0-indexed line `line`, or one of the `above` lines
    /// immediately preceding it, carries a comment.
    pub fn comment_adjacent(&self, line: usize, above: usize) -> bool {
        let lo = line.saturating_sub(above);
        (lo..=line).any(|l| self.comment_lines.get(l).copied().unwrap_or(false))
    }
}

/// Blanks comment and literal bodies out of `src`. Never panics: malformed
/// input (an unterminated literal or comment) scrubs to end of file.
pub fn scrub(src: &str) -> Scrub {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut comment_lines = vec![false; src.lines().count().max(1)];
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(line) => line,
            Err(next) => next - 1,
        }
    };
    // Blanks out[lo..hi], preserving newlines, and optionally marks the
    // touched lines as comment lines.
    let mark_comment = |comment_lines: &mut Vec<bool>, lo: usize, hi: usize| {
        for line in line_of(lo)..=line_of(hi.saturating_sub(1).max(lo)) {
            if line < comment_lines.len() {
                comment_lines[line] = true;
            }
        }
    };
    let blank = |out: &mut Vec<u8>, lo: usize, hi: usize| {
        for b in &mut out[lo..hi] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = bytes[i..]
                    .iter()
                    .position(|&c| c == b'\n')
                    .map_or(bytes.len(), |p| i + p);
                mark_comment(&mut comment_lines, i, end);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                mark_comment(&mut comment_lines, i, j);
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let end = skip_string(bytes, i);
                blank(&mut out, i + 1, end.saturating_sub(1).max(i + 1));
                i = end;
            }
            b'\'' => {
                let (end, is_char) = skip_char_or_lifetime(bytes, i);
                if is_char {
                    blank(&mut out, i + 1, end.saturating_sub(1).max(i + 1));
                }
                i = end;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &src[start..i];
                // A raw/byte/C string or byte-char may follow its prefix
                // identifier with no separator.
                match ident {
                    "r" | "br" | "cr" => {
                        if let Some(end) = skip_raw_string(bytes, i) {
                            blank(&mut out, i, end);
                            i = end;
                        }
                    }
                    "b" | "c" => {
                        if bytes.get(i) == Some(&b'"') {
                            let end = skip_string(bytes, i);
                            blank(&mut out, i + 1, end.saturating_sub(1).max(i + 1));
                            i = end;
                        } else if ident == "b" && bytes.get(i) == Some(&b'\'') {
                            let (end, is_char) = skip_char_or_lifetime(bytes, i);
                            if is_char {
                                blank(&mut out, i + 1, end.saturating_sub(1).max(i + 1));
                            }
                            i = end;
                        }
                    }
                    _ => {}
                }
            }
            _ => i += 1,
        }
    }

    // Blanking normally covers multi-byte sequences whole, but malformed
    // input (an unterminated literal ending mid-char, say) can leave a
    // dangling continuation byte. Overwrite any invalid byte with a space
    // — never a multi-byte replacement char — so byte offsets and line
    // structure always match the original exactly.
    let code = loop {
        match String::from_utf8(out) {
            Ok(s) => break s,
            Err(e) => {
                let bad = e.utf8_error().valid_up_to();
                out = e.into_bytes();
                out[bad] = b' ';
            }
        }
    };
    let mut scrub = Scrub {
        code,
        comment_lines,
        line_starts,
        test_spans: Vec::new(),
    };
    scrub.test_spans = find_test_spans(&scrub.code);
    scrub
}

/// Advances past a `"..."` string starting at the opening quote at `i`.
/// Returns the offset just past the closing quote (or EOF).
fn skip_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Advances past a raw string whose hashes/quote start at `i` (the prefix
/// identifier has already been consumed). Returns `None` when `i` does not
/// actually start a raw string (e.g. the identifier `r` used as a name).
fn skip_raw_string(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'"'
            && bytes[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(bytes.len())
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) starting at the
/// quote at `i`. Returns `(end offset, was a char literal)`; a lifetime
/// consumes only the quote so its identifier stays in the token stream.
fn skip_char_or_lifetime(bytes: &[u8], i: usize) -> (usize, bool) {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char literal: skip the escape, then scan to the quote.
            let mut j = i + 3;
            while j < bytes.len() && bytes[j] != b'\'' {
                j += 1;
            }
            ((j + 1).min(bytes.len()), true)
        }
        Some(&c) if c == b'_' || c.is_ascii_alphanumeric() => {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            if bytes.get(j) == Some(&b'\'') {
                (j + 1, true) // 'a'
            } else {
                (i + 1, false) // 'a — a lifetime; leave the identifier
            }
        }
        Some(_) => {
            // Punctuation char literal like '(' or ' '.
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\'' {
                j += 1;
            }
            ((j + 1).min(bytes.len()), true)
        }
        None => (i + 1, false),
    }
}

/// One token of scrubbed source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation byte.
    Punct,
}

/// A token: its kind, text, and byte offset into the (scrubbed) source.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Identifier or punctuation.
    pub kind: TokKind,
    /// The token's text.
    pub text: &'a str,
    /// Byte offset of the token's first byte.
    pub start: usize,
}

/// Tokenizes scrubbed source into identifiers and single-byte puncts.
/// Numbers are skipped (no rule needs them); `::` is reported as two `:`
/// puncts and matched by the rules via adjacency.
pub fn tokenize(code: &str) -> Vec<Tok<'_>> {
    let bytes = code.as_bytes();
    let mut toks = Vec::with_capacity(code.len() / 4);
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: &code[start..i],
                start,
            });
        } else if b.is_ascii_digit() {
            // A `.` continues the number only when a digit follows, so
            // `self.0.method()` keeps `method` and `0..n` keeps its dots.
            while i < bytes.len() {
                let c = bytes[i];
                let number_continues = c == b'_'
                    || c.is_ascii_alphanumeric()
                    || (c == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit));
                if !number_continues {
                    break;
                }
                i += 1;
            }
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if !b.is_ascii() {
            // Non-ASCII code text (a Unicode identifier, say): skip the
            // whole UTF-8 sequence. No rule keys on non-ASCII tokens, and
            // a single-byte slice here would split a char boundary.
            i += 1;
            while i < bytes.len() && bytes[i] & 0xC0 == 0x80 {
                i += 1;
            }
        } else {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: &code[i..i + 1],
                start: i,
            });
            i += 1;
        }
    }
    toks
}

/// Locates `#[cfg(test)]`-scoped items in scrubbed source: the attribute,
/// any further attributes, and the item through its matching close brace
/// (or terminating semicolon). Brace-matched — the item may sit anywhere
/// in the file.
fn find_test_spans(code: &str) -> Vec<Range<usize>> {
    let toks = tokenize(code);
    let mut spans: Vec<Range<usize>> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !is_attr_start(&toks, i) {
            i += 1;
            continue;
        }
        let attr_start = toks[i].start;
        let (attr_end, is_cfg_test) = parse_attr(&toks, i);
        if !is_cfg_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes between #[cfg(test)] and the item.
        let mut j = attr_end;
        while is_attr_start(&toks, j) {
            let (next, _) = parse_attr(&toks, j);
            j = next;
        }
        // Scan to the item's opening `{` or terminating `;`.
        let mut depth = 0usize;
        let mut end = code.len();
        while j < toks.len() {
            match toks[j].text {
                ";" if depth == 0 => {
                    end = toks[j].start + 1;
                    break;
                }
                "{" => {
                    depth += 1;
                    if depth == 1 {
                        // Found the body: run to the matching close.
                        let mut k = j + 1;
                        while k < toks.len() && depth > 0 {
                            match toks[k].text {
                                "{" => depth += 1,
                                "}" => depth -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                        end = toks
                            .get(k.saturating_sub(1))
                            .map_or(code.len(), |t| t.start + 1);
                        j = k;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        spans.push(attr_start..end);
        i = j.max(attr_end);
    }
    spans
}

/// True when `toks[i..]` starts an attribute: `#` `[` (outer) — inner
/// attributes `#![...]` are not test scopes and are skipped by the caller
/// via `parse_attr`'s cfg check.
fn is_attr_start(toks: &[Tok<'_>], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.text == "#")
        && (toks.get(i + 1).is_some_and(|t| t.text == "[")
            || (toks.get(i + 1).is_some_and(|t| t.text == "!")
                && toks.get(i + 2).is_some_and(|t| t.text == "[")))
}

/// Parses the attribute starting at token `i`. Returns the token index
/// just past the closing `]` and whether the attribute is a `cfg(...)`
/// whose arguments mention the bare `test` flag.
fn parse_attr<'a>(toks: &[Tok<'a>], i: usize) -> (usize, bool) {
    let mut j = i + 1; // past '#'
    if toks.get(j).is_some_and(|t| t.text == "!") {
        j += 1;
    }
    debug_assert!(toks.get(j).is_some_and(|t| t.text == "["));
    j += 1;
    let body_start = j;
    let mut depth = 1usize;
    while j < toks.len() && depth > 0 {
        match toks[j].text {
            "[" => depth += 1,
            "]" => depth -= 1,
            _ => {}
        }
        j += 1;
    }
    let body = &toks[body_start..j.saturating_sub(1).max(body_start)];
    let is_cfg_test = body.first().is_some_and(|t| t.text == "cfg")
        && body
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "test");
    (j, is_cfg_test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrubbed(src: &str) -> String {
        scrub(src).code
    }

    #[test]
    fn line_comment_is_blanked_and_marked() {
        let s = scrub("let x = 1; // x.unwrap()\nlet y = 2;\n");
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let y"));
        assert_eq!(s.comment_lines, vec![true, false]);
    }

    #[test]
    fn nested_block_comments() {
        let s = scrubbed("a /* outer /* inner */ still comment */ b");
        assert_eq!(s.trim(), "a                                       b".trim());
        assert!(s.contains('a') && s.contains('b'));
        assert!(!s.contains("comment"));
    }

    #[test]
    fn string_bodies_are_blanked_including_comment_markers() {
        let s = scrubbed(r#"let s = "no // comment and .unwrap() here"; s.len();"#);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("//"));
        assert!(s.contains("s.len()"));
        // The comment marker inside the string must not eat the rest.
        let t = scrub(r#"let s = "//"; real_code();"#);
        assert!(t.code.contains("real_code"));
        assert_eq!(t.comment_lines, vec![false]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let s = scrubbed(r###"let s = r#"quote " inside and .unwrap()"#; after();"###);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("after()"));
        let t = scrubbed("let s = r\"plain raw .expect(\"; after();");
        assert!(!t.contains("expect"));
        assert!(t.contains("after()"));
    }

    #[test]
    fn byte_and_c_strings() {
        let s = scrubbed(r#"let b = b"bytes .unwrap()"; let c = c"cstr .unwrap()"; ok();"#);
        assert!(!s.contains("unwrap"));
        assert!(s.contains("ok()"));
        let t = scrubbed(r##"let b = br#"raw bytes .unwrap()"#; ok();"##);
        assert!(!t.contains("unwrap"));
        assert!(t.contains("ok()"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let s = scrubbed("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(s.contains("'a str"), "lifetime kept: {s}");
        assert!(!s.contains("'x'"), "char literal blanked: {s}");
        // '\'' and '\\' escapes terminate correctly.
        let t = scrubbed(r"let q = '\''; let b = '\\'; after();");
        assert!(t.contains("after()"));
        // A char literal holding a quote must not open a string.
        let u = scrubbed(r#"let q = '"'; real();"#);
        assert!(u.contains("real()"));
    }

    #[test]
    fn static_lifetime_and_labels() {
        let s = scrubbed("static S: &'static str = \"x\"; 'outer: loop { break 'outer; }");
        assert!(s.contains("'static str"));
        assert!(s.contains("'outer: loop"));
    }

    #[test]
    fn test_span_covers_brace_matched_module_anywhere() {
        let src = "\
#[cfg(test)]
mod tests {
    fn helper() { x.unwrap(); }
}

pub fn production() -> u32 { 7 }
";
        let s = scrub(src);
        let unwrap_at = s.code.find("unwrap").unwrap();
        let prod_at = s.code.find("production").unwrap();
        assert!(s.in_test_scope(unwrap_at), "test module body is test scope");
        assert!(!s.in_test_scope(prod_at), "code below the module is not");
    }

    #[test]
    fn cfg_test_attr_on_single_item() {
        let src = "#[cfg(test)]\nuse helper::Thing;\npub fn live() {}\n";
        let s = scrub(src);
        assert!(s.in_test_scope(s.code.find("Thing").unwrap()));
        assert!(!s.in_test_scope(s.code.find("live").unwrap()));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() {} }\nfn g() {}\n";
        let s = scrub(src);
        assert!(s.in_test_scope(s.code.find("fn f").unwrap()));
        assert!(!s.in_test_scope(s.code.find("fn g").unwrap()));
    }

    #[test]
    fn non_test_cfg_is_not_a_test_span() {
        let src = "#[cfg(feature = \"enabled\")]\nmod imp { fn f() {} }\n";
        let s = scrub(src);
        assert!(!s.in_test_scope(s.code.find("fn f").unwrap()));
    }

    #[test]
    fn unterminated_forms_never_panic() {
        for src in [
            "let s = \"unterminated",
            "let s = r#\"unterminated",
            "/* unterminated",
            "let c = '",
            "let c = '\\",
            "#[cfg(test)] mod t {",
            "r",
            "b",
        ] {
            let _ = scrub(src);
        }
    }

    #[test]
    fn tokenize_skips_numbers_and_keeps_offsets() {
        let toks = tokenize("foo(1.5e3, bar)");
        let texts: Vec<_> = toks.iter().map(|t| t.text).collect();
        assert_eq!(texts, vec!["foo", "(", ",", "bar", ")"]);
        assert_eq!(toks[3].start, 11);
    }
}
