//! The rule catalog: this workspace's panic and concurrency policy,
//! expressed over the lexer's scrubbed token stream.
//!
//! Three rules port the retired grep gate (`unsafe-attr`, `core-unwrap`,
//! `codec-cast`) — now string/comment-proof and `#[cfg(test)]`-brace-aware
//! instead of "test modules are last in the file" by convention. The rest
//! encode the concurrency discipline PRs 8–9 introduced, which no grep
//! can see:
//!
//! | rule id           | policy                                                    |
//! |-------------------|-----------------------------------------------------------|
//! | `unsafe-attr`     | crate roots carry `#![forbid(unsafe_code)]` (obs: deny)   |
//! | `core-unwrap`     | no `.unwrap()`/`.expect(` in non-test `crates/core/src`   |
//! | `codec-cast`      | no `as` integer casts in the snapshot codec               |
//! | `atomic-ordering` | atomic `Ordering` uses confined to approved modules       |
//! | `relaxed-comment` | every `Relaxed` op carries an adjacent justification      |
//! | `thread-spawn`    | thread spawns confined to approved modules                |
//! | `hot-path-lock`   | no `Mutex`/`RwLock` in designated hot-path modules        |
//! | `drop-panic`      | no panicking macros / unwrap / indexing in `Drop` impls   |
//! | `stale-allowlist` | every allowlist entry still forgives something real       |
//!
//! Adding a rule: give it a [`RuleId`] variant, emit findings from
//! [`check_file`] (use the scrub's `in_test_scope` so test code stays
//! exempt), plant exactly one violation in `corpus/<rule-id>.rs`, and
//! document it in DESIGN.md §15.

use crate::lexer::{self, Tok, TokKind};
use crate::report::Finding;

/// Stable rule identifiers (kebab-case, used in reports and allowlists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Crate roots must opt out of unsafe code.
    UnsafeAttr,
    /// The core model library surfaces errors as values, never panics.
    CoreUnwrap,
    /// The snapshot codec narrows integers only via `try_from` helpers.
    CodecCast,
    /// Atomic memory orderings only in approved concurrency modules.
    AtomicOrdering,
    /// `Ordering::Relaxed` requires an adjacent justification comment.
    RelaxedComment,
    /// Thread spawns only in approved parallelism modules.
    ThreadSpawn,
    /// Designated hot-path modules stay lock-free.
    HotPathLock,
    /// `Drop` impls must not panic (they may run during unwinding).
    DropPanic,
    /// Allowlist entries that forgive nothing must be deleted.
    StaleAllowlist,
}

/// Every rule, in report order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::UnsafeAttr,
    RuleId::CoreUnwrap,
    RuleId::CodecCast,
    RuleId::AtomicOrdering,
    RuleId::RelaxedComment,
    RuleId::ThreadSpawn,
    RuleId::HotPathLock,
    RuleId::DropPanic,
    RuleId::StaleAllowlist,
];

impl RuleId {
    /// The stable kebab-case id.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::UnsafeAttr => "unsafe-attr",
            RuleId::CoreUnwrap => "core-unwrap",
            RuleId::CodecCast => "codec-cast",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::RelaxedComment => "relaxed-comment",
            RuleId::ThreadSpawn => "thread-spawn",
            RuleId::HotPathLock => "hot-path-lock",
            RuleId::DropPanic => "drop-panic",
            RuleId::StaleAllowlist => "stale-allowlist",
        }
    }

    /// Parses a kebab-case rule id.
    #[must_use]
    pub fn parse(raw: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.as_str() == raw)
    }
}

/// Modules approved to touch `std::sync::atomic` orderings: the epoch
/// publication protocol, the deterministic work-pulling counter, and the
/// telemetry primitives (allocation counters, log threshold, metrics
/// cells) — each one a module whose entire point is the atomic.
const ATOMIC_MODULES: &[&str] = &[
    "crates/core/src/publish.rs",
    "crates/core/src/parallel.rs",
    "crates/obs/src/alloc.rs",
    "crates/obs/src/log.rs",
    "crates/obs/src/metrics.rs",
];

/// Modules approved to spawn threads: the deterministic parallel-map
/// substrate, the chunked ingester's reader/worker pool, the serving core,
/// and benches. Everything else must go through these.
const SPAWN_FILES: &[&str] = &["crates/core/src/parallel.rs", "crates/trace/src/ingest.rs"];
const SPAWN_PREFIXES: &[&str] = &["crates/serve/src/", "crates/bench/"];

/// Hot-path modules that must stay lock-free: the frozen serving arena,
/// the fingerprint index, and top-N ranking all sit on the per-request
/// predict path, where a lock would serialize the sharded readers.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/frozen.rs",
    "crates/core/src/context_index.rs",
    "crates/core/src/topn.rs",
];

/// Macros that panic (or can): forbidden inside `Drop` impls, where a
/// panic during unwinding aborts the process.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Atomic memory-ordering variant names. `std::cmp::Ordering`'s variants
/// (`Less`/`Equal`/`Greater`) do not collide, which is what lets the rule
/// tell the two `Ordering`s apart without name resolution.
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Integer types an `as` cast can silently narrow or re-sign to.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// One file to lint: a workspace-relative `/`-separated path and its text.
pub struct SourceFile {
    /// Workspace-relative path.
    pub path: String,
    /// File contents.
    pub text: String,
}

/// True for files that are test code wholesale: integration test trees
/// and criterion benches (rules still apply to `crates/bench/src`, which
/// ships the bench binaries' logic).
fn is_test_file(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/") || path.contains("/benches/")
}

/// The `#![…(unsafe_code)]` level a crate root (or the one special module)
/// must carry, if any.
fn expected_unsafe_attr(path: &str) -> Option<&'static str> {
    if path == "crates/obs/src/alloc.rs" {
        // The workspace's sole unsafe block (the GlobalAlloc impl) lives
        // here; the file must say so with a local allow.
        return Some("allow");
    }
    if path == "crates/obs/src/lib.rs" {
        // forbid cannot be overridden by alloc.rs's allow, so obs denies.
        return Some("deny");
    }
    let is_root = path == "src/lib.rs"
        || path.starts_with("crates/bench/src/bin/")
        || (path.starts_with("crates/")
            && (path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs")));
    is_root.then_some("forbid")
}

/// Runs every applicable rule over one file. Returns the findings and the
/// number of rule applications (for the report's check count).
pub fn check_file(file: &SourceFile) -> (Vec<Finding>, u64) {
    let mut findings = Vec::new();
    let mut checks = 0u64;
    let scrub = lexer::scrub(&file.text);
    let toks = lexer::tokenize(&scrub.code);
    let original_lines: Vec<&str> = file.text.lines().collect();
    let finding = |rule: RuleId, line: usize| -> Finding {
        Finding {
            rule,
            file: file.path.clone(),
            line: line + 1,
            snippet: original_lines.get(line).map_or("", |l| l.trim()).to_owned(),
        }
    };

    // unsafe-attr applies even to test-heavy roots; everything else skips
    // whole-file test code.
    if let Some(level) = expected_unsafe_attr(&file.path) {
        checks += 1;
        if !has_inner_attr(&toks, &format!("{level}(unsafe_code)")) {
            findings.push(Finding {
                rule: RuleId::UnsafeAttr,
                file: file.path.clone(),
                line: 1,
                snippet: format!("missing #![{level}(unsafe_code)]"),
            });
        }
    }
    if is_test_file(&file.path) {
        return (findings, checks);
    }

    let in_core = file.path.starts_with("crates/core/src/");
    let is_codec = file.path == "crates/core/src/snapshot.rs";
    let hot_path = HOT_PATH_FILES.contains(&file.path.as_str());
    let uses_atomics = scrub.code.contains("sync::atomic");
    let atomics_approved = ATOMIC_MODULES.contains(&file.path.as_str());
    let spawn_approved = SPAWN_FILES.contains(&file.path.as_str())
        || SPAWN_PREFIXES.iter().any(|p| file.path.starts_with(p));
    let drop_spans = drop_impl_spans(&toks, scrub.code.len());
    checks += 3 // atomic-ordering, thread-spawn, drop-panic apply everywhere
        + u64::from(in_core)
        + u64::from(is_codec)
        + u64::from(hot_path)
        + u64::from(uses_atomics); // relaxed-comment

    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || scrub.in_test_scope(tok.start) {
            continue;
        }
        let line = scrub.line_of(tok.start);
        let prev = i.checked_sub(1).map(|p| toks[p].text);
        let next = toks.get(i + 1).map(|t| t.text);

        // core-unwrap: `.unwrap()` / `.expect(` method calls in core.
        if in_core
            && (tok.text == "unwrap" || tok.text == "expect")
            && prev == Some(".")
            && next == Some("(")
        {
            findings.push(finding(RuleId::CoreUnwrap, line));
        }

        // codec-cast: `as <int>` in the snapshot codec.
        if is_codec && tok.text == "as" && next.is_some_and(|n| INT_TYPES.contains(&n)) {
            findings.push(finding(RuleId::CodecCast, line));
        }

        // atomic-ordering / relaxed-comment key on the memory-ordering
        // variant names; `sync::atomic` must appear so a user type that
        // happens to reuse a name cannot trip the rule.
        if uses_atomics && MEMORY_ORDERINGS.contains(&tok.text) {
            if !atomics_approved {
                findings.push(finding(RuleId::AtomicOrdering, line));
            } else if tok.text == "Relaxed"
                && !in_use_decl(&toks, i)
                && !scrub.comment_adjacent(line, 3)
            {
                // Approved modules still owe each Relaxed op a reason: a
                // comment on the line or within the three lines above.
                findings.push(finding(RuleId::RelaxedComment, line));
            }
        }

        // thread-spawn: any `spawn(` call outside the approved modules.
        if !spawn_approved && tok.text == "spawn" && next == Some("(") && prev != Some("fn") {
            findings.push(finding(RuleId::ThreadSpawn, line));
        }

        // hot-path-lock: lock types named anywhere in a hot-path module.
        if hot_path && (tok.text == "Mutex" || tok.text == "RwLock") {
            findings.push(finding(RuleId::HotPathLock, line));
        }

        // drop-panic: panicking constructs inside Drop impl bodies.
        if drop_spans.iter().any(|s| s.contains(&tok.start)) {
            let is_panic_macro = PANIC_MACROS.contains(&tok.text) && next == Some("!");
            let is_unwrap = (tok.text == "unwrap" || tok.text == "expect")
                && prev == Some(".")
                && next == Some("(");
            if is_panic_macro || is_unwrap {
                findings.push(finding(RuleId::DropPanic, line));
            }
        }
    }

    // drop-panic also forbids indexing (`x[i]` panics on out-of-bounds):
    // a `[` whose previous token ends an expression.
    for (i, tok) in toks.iter().enumerate() {
        if tok.text != "[" || tok.kind != TokKind::Punct {
            continue;
        }
        if !drop_spans.iter().any(|s| s.contains(&tok.start)) || scrub.in_test_scope(tok.start) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| toks[p]);
        let indexes_expr =
            prev.is_some_and(|p| p.text == ")" || p.text == "]" || p.kind == TokKind::Ident);
        if indexes_expr {
            findings.push(finding(RuleId::DropPanic, scrub.line_of(tok.start)));
        }
    }

    (findings, checks)
}

/// True when the file's inner attributes include `#![<normalized>]`
/// (token texts joined without whitespace).
fn has_inner_attr(toks: &[Tok<'_>], normalized: &str) -> bool {
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].text == "#" && toks[i + 1].text == "!" && toks[i + 2].text == "[" {
            let mut depth = 1usize;
            let mut j = i + 3;
            let mut body = String::new();
            while j < toks.len() && depth > 0 {
                match toks[j].text {
                    "[" => {
                        depth += 1;
                        body.push('[');
                    }
                    "]" => {
                        depth -= 1;
                        if depth > 0 {
                            body.push(']');
                        }
                    }
                    t => body.push_str(t),
                }
                j += 1;
            }
            if body == normalized {
                return true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

/// True when token `i` sits inside a `use` declaration: the first token
/// after the previous statement boundary (`;`, `{`, or `}`) is `use`.
fn in_use_decl(toks: &[Tok<'_>], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text {
            "use" => return true,
            ";" | "}" => return false,
            "{" => {
                // A `{` inside a use tree (`use a::{b, c}`) is preceded by
                // `::`; any other `{` opens a block, which no use
                // declaration can span.
                if j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text == ":" {
                    continue;
                }
                return false;
            }
            _ => {}
        }
    }
    false
}

/// Byte ranges of `impl … Drop for …` bodies (brace-matched).
fn drop_impl_spans(toks: &[Tok<'_>], eof: usize) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "impl") {
            i += 1;
            continue;
        }
        // Scan the impl header (up to `{` or `;`) for `… Drop for …`.
        let mut j = i + 1;
        let mut is_drop = false;
        while j < toks.len() {
            match toks[j].text {
                "{" | ";" => break,
                "for" if toks[j - 1].text == "Drop" => is_drop = true,
                _ => {}
            }
            j += 1;
        }
        if !is_drop || toks.get(j).map(|t| t.text) != Some("{") {
            i = j;
            continue;
        }
        let body_start = toks[j].start;
        let mut depth = 1usize;
        let mut k = j + 1;
        while k < toks.len() && depth > 0 {
            match toks[k].text {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let end = toks.get(k.saturating_sub(1)).map_or(eof, |t| t.start + 1);
        spans.push(body_start..end);
        i = k;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, text: &str) -> Vec<Finding> {
        check_file(&SourceFile {
            path: path.into(),
            text: text.into(),
        })
        .0
    }

    fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn rule_ids_roundtrip() {
        for &rule in ALL_RULES {
            assert_eq!(RuleId::parse(rule.as_str()), Some(rule));
        }
        assert_eq!(RuleId::parse("bogus"), None);
    }

    #[test]
    fn unwrap_in_string_literal_is_not_a_violation() {
        // The grep gate false-positived on this class; the lexer does not.
        let src = "#![forbid(unsafe_code)]\n\
                   pub fn msg() -> &'static str { \"call .unwrap() later\" }\n";
        assert!(lint("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_below_a_test_module_is_caught() {
        // The grep gate stripped everything below the first #[cfg(test)];
        // brace-aware scoping keeps looking.
        let src = "\
#[cfg(test)]
mod tests {
    fn inside_tests_is_fine() { x.unwrap(); }
}

pub fn production(x: Option<u32>) -> u32 { x.unwrap() }
";
        let findings = lint("crates/core/src/planted.rs", src);
        assert_eq!(rules_of(&findings), vec![RuleId::CoreUnwrap]);
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn expect_calls_count_like_unwrap() {
        let findings = lint(
            "crates/core/src/x.rs",
            "fn f(x: Option<u8>) -> u8 { x.expect(\"always\") }\n",
        );
        assert_eq!(rules_of(&findings), vec![RuleId::CoreUnwrap]);
    }

    #[test]
    fn unwrap_outside_core_is_fine() {
        assert!(lint(
            "crates/sim/src/x.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\n"
        )
        .is_empty());
    }

    #[test]
    fn codec_casts_flagged_code_only() {
        let src = "\
// a comment mentioning n as u64 is fine
fn f(n: usize) -> u32 { n as u32 }
fn g() -> &'static str { \"len as u64\" }
";
        let findings = lint("crates/core/src/snapshot.rs", src);
        assert_eq!(rules_of(&findings), vec![RuleId::CodecCast]);
        assert_eq!(findings[0].line, 2);
        // The same cast in a non-codec file is clippy's business, not ours.
        assert!(lint(
            "crates/core/src/other.rs",
            "fn f(n: usize) -> u32 { n as u32 }\n"
        )
        .is_empty());
    }

    #[test]
    fn float_casts_are_not_codec_violations() {
        assert!(lint(
            "crates/core/src/snapshot.rs",
            "fn f(n: u64) -> f64 { n as f64 }\n"
        )
        .is_empty());
    }

    #[test]
    fn atomic_ordering_confined_to_approved_modules() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(a: &AtomicU64) -> u64 { a.load(Ordering::SeqCst) }\n";
        let findings = lint("crates/sim/src/planted.rs", src);
        assert_eq!(rules_of(&findings), vec![RuleId::AtomicOrdering]);
        // The same code in an approved module passes (SeqCst needs no
        // justification comment, only Relaxed does).
        assert!(lint("crates/core/src/publish.rs", src).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_atomic_ordering() {
        let src = "fn f(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b) }\n\
                   fn g() -> std::cmp::Ordering { std::cmp::Ordering::Equal }\n";
        assert!(lint("crates/sim/src/x.rs", src).is_empty());
    }

    #[test]
    fn bare_relaxed_after_use_is_confined_too() {
        let src = "use std::sync::atomic::Ordering::Relaxed;\n\
                   use std::sync::atomic::AtomicU64;\n\
                   fn f(a: &AtomicU64) { a.fetch_add(1, Relaxed); }\n";
        let findings = lint("crates/trace/src/x.rs", src);
        // The use line and the call site are both atomic-ordering hits.
        assert_eq!(
            rules_of(&findings),
            vec![RuleId::AtomicOrdering, RuleId::AtomicOrdering]
        );
    }

    #[test]
    fn relaxed_needs_adjacent_justification_in_approved_modules() {
        let bare = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                    fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }\n";
        let findings = lint("crates/obs/src/metrics.rs", bare);
        assert_eq!(rules_of(&findings), vec![RuleId::RelaxedComment]);
        let justified = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                         fn f(a: &AtomicU64) -> u64 {\n\
                         // Relaxed: independent counter, no ordering needed.\n\
                         a.load(Ordering::Relaxed) }\n";
        assert!(lint("crates/obs/src/metrics.rs", justified).is_empty());
    }

    #[test]
    fn spawn_confined_to_approved_modules() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_of(&lint("crates/cli/src/serve.rs", src)),
            vec![RuleId::ThreadSpawn]
        );
        assert!(lint("crates/serve/src/sharded.rs", src).is_empty());
        assert!(lint("crates/core/src/parallel.rs", src).is_empty());
        assert!(lint("crates/trace/src/ingest.rs", src).is_empty());
        // Bench binaries may spawn, but as crate roots they still owe the
        // unsafe attribute — so give them one.
        let rooted = format!("#![forbid(unsafe_code)]\n{src}");
        assert!(lint("crates/bench/src/bin/loadgen.rs", &rooted).is_empty());
    }

    #[test]
    fn spawn_in_test_modules_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(lint("crates/core/src/publish.rs", src).is_empty());
    }

    #[test]
    fn locks_banned_in_hot_path_modules() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(
            rules_of(&lint("crates/core/src/frozen.rs", src)),
            vec![RuleId::HotPathLock]
        );
        assert!(lint("crates/core/src/tree.rs", src).is_empty());
        assert_eq!(
            rules_of(&lint(
                "crates/core/src/topn.rs",
                "fn f(m: &std::sync::RwLock<u8>) {}\n"
            )),
            vec![RuleId::HotPathLock]
        );
    }

    #[test]
    fn drop_impls_must_not_panic_or_index() {
        let panic = "struct G;\nimpl Drop for G {\n fn drop(&mut self) { panic!(\"no\"); }\n}\n";
        assert_eq!(
            rules_of(&lint("crates/serve/src/x.rs", panic)),
            vec![RuleId::DropPanic]
        );
        let unwrap =
            "struct G;\nimpl Drop for G {\n fn drop(&mut self) { X.lock().unwrap(); }\n}\n";
        assert_eq!(
            rules_of(&lint("crates/serve/src/x.rs", unwrap)),
            vec![RuleId::DropPanic]
        );
        let index =
            "struct G { v: Vec<u8> }\nimpl Drop for G {\n fn drop(&mut self) { let _ = self.v[0]; }\n}\n";
        assert_eq!(
            rules_of(&lint("crates/serve/src/x.rs", index)),
            vec![RuleId::DropPanic]
        );
        let clean = "struct G;\nimpl Drop for G {\n fn drop(&mut self) { let _ = 1 + 1; }\n}\n";
        assert!(lint("crates/serve/src/x.rs", clean).is_empty());
        // Generic Drop impls are recognized too.
        let generic =
            "struct G<T>(T);\nimpl<T> Drop for G<T> {\n fn drop(&mut self) { panic!(); }\n}\n";
        assert_eq!(
            rules_of(&lint("crates/serve/src/x.rs", generic)),
            vec![RuleId::DropPanic]
        );
        // Panics outside the Drop body are someone else's rule.
        let outside = "fn f() { panic!(\"fine outside core\"); }\n";
        assert!(lint("crates/serve/src/x.rs", outside).is_empty());
    }

    #[test]
    fn unsafe_attr_policy_per_root() {
        assert_eq!(
            rules_of(&lint("crates/core/src/lib.rs", "pub mod tree;\n")),
            vec![RuleId::UnsafeAttr]
        );
        assert!(lint(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod tree;\n"
        )
        .is_empty());
        // obs: deny at the root, allow in alloc.rs — forbid is wrong there.
        assert_eq!(
            rules_of(&lint("crates/obs/src/lib.rs", "#![forbid(unsafe_code)]\n")),
            vec![RuleId::UnsafeAttr]
        );
        assert!(lint("crates/obs/src/lib.rs", "#![deny(unsafe_code)]\n").is_empty());
        assert!(lint("crates/obs/src/alloc.rs", "#![allow(unsafe_code)]\n").is_empty());
        // Non-root modules carry no attribute obligation.
        assert!(lint("crates/core/src/tree.rs", "pub struct Tree;\n").is_empty());
        // Bench binaries are roots.
        assert_eq!(
            rules_of(&lint("crates/bench/src/bin/loadgen.rs", "fn main() {}\n")),
            vec![RuleId::UnsafeAttr]
        );
    }

    #[test]
    fn test_files_only_owe_root_attributes() {
        let src = "fn f() { std::thread::spawn(|| x.unwrap()); }\n";
        assert!(lint("crates/core/tests/model_properties.rs", src).is_empty());
        assert!(lint("tests/end_to_end.rs", src).is_empty());
        assert!(lint("crates/bench/benches/substrate.rs", src).is_empty());
    }
}
