//@path crates/sim/src/planted.rs
// Planted violation: exactly one thread spawn outside the approved
// parallelism modules. The fn named spawn is a decoy (declaration, not
// a call into std::thread).

pub fn planted() {
    let handle = std::thread::spawn(|| 1 + 1);
    let _ = handle.join();
}

pub fn spawn(work: u64) -> u64 {
    work
}
