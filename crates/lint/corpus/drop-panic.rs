//@path crates/serve/src/planted.rs
// Planted violation: exactly one panicking construct inside a Drop impl.
// The panic in a free function is a decoy (drop-panic only polices Drop
// bodies; core-unwrap does not apply outside crates/core).

pub struct Guard;

impl Drop for Guard {
    fn drop(&mut self) {
        panic!("planted: panicking during drop aborts mid-unwind");
    }
}

pub fn panicking_outside_drop_is_another_rules_problem() {
    unreachable!("decoy");
}
