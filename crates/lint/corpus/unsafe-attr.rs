//@path crates/core/src/lib.rs
// Planted violation: a crate root with no `#![forbid(unsafe_code)]`.
pub mod planted;
