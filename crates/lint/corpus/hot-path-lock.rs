//@path crates/core/src/frozen.rs
// Planted violation: exactly one lock type named in a hot-path module.
// The word Mutex inside the string literal is a decoy.

use std::sync::Mutex;

pub fn decoy() -> &'static str {
    "a Mutex in prose does not trip the rule"
}
