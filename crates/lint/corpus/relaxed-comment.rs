//@path crates/core/src/publish.rs
// Planted violation: a Relaxed op in an approved atomics module with no
// adjacent justification comment. The justified op below is a decoy.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn justified(a: &AtomicU64) -> u64 {
    // Relaxed: monotone counter read, no ordering obligation.
    a.load(Ordering::Relaxed)
}

pub fn planted(a: &AtomicU64) {
    let _ = a;

    a.fetch_add(1, Ordering::Relaxed);
}
