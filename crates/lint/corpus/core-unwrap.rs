//@path crates/core/src/planted.rs
// Planted violation: exactly one real `.unwrap()` in non-test core code.
// The string literal and the test-module unwraps are decoys the retired
// grep gate got wrong in both directions: it flagged the string, and it
// never saw below the first `#[cfg(test)]`.

pub fn decoy() -> &'static str {
    "documentation may say .unwrap() without tripping the rule"
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let x: Option<u32> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}

pub fn planted(x: Option<u32>) -> u32 {
    x.unwrap()
}
