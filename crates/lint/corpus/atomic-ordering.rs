//@path crates/sim/src/planted.rs
// Planted violation: exactly one atomic Ordering use outside the
// approved concurrency modules. The cmp::Ordering function is a decoy.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn planted(a: &AtomicU64) -> u64 {
    a.load(Ordering::SeqCst)
}

pub fn cmp_ordering_is_fine(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b)
}
