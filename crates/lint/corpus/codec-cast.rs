//@path crates/core/src/snapshot.rs
// Planted violation: exactly one lossy `as` cast in the snapshot codec.
// The comment mentioning len as u64 and the float cast are decoys.

pub fn planted(n: usize) -> u32 {
    n as u32
}

pub fn float_casts_are_fine(n: u64) -> f64 {
    n as f64
}
