//! Property and pinned-case tests for the lint lexer: scrubbing must
//! never panic on arbitrary input (the linter reads every workspace
//! file, including half-written ones mid-edit), and the tricky token
//! forms the grep gate could not see must scrub exactly right.

use pbppm_lint::lexer::{scrub, tokenize};

use proptest::prelude::*;

/// Pieces that concentrate the lexer's hard cases: string/raw-string
/// openers, comment openers and closers, lifetimes, escapes — glued
/// together in arbitrary orders they produce unterminated and nested
/// forms far nastier than real code.
const SOUP: &[&str] = &[
    "\"",
    "'",
    "r\"",
    "r#\"",
    "br##\"",
    "c\"",
    "#",
    "\\",
    "/*",
    "*/",
    "//",
    "\n",
    "{",
    "}",
    "[",
    "]",
    "ident",
    "0.5",
    "'a",
    "'a'",
    "'\\n'",
    "b'",
    "!",
    "r#type",
    "Ordering::Relaxed",
    "#[cfg(test)]",
    "mod tests",
    "é",
    "🦀",
];

proptest! {
    /// Scrubbing and tokenizing arbitrary token soup never panics, and
    /// the scrub preserves length and line structure (byte offsets into
    /// the scrubbed code must stay valid for the original).
    #[test]
    fn scrub_never_panics_and_preserves_shape(
        picks in prop::collection::vec(0usize..SOUP.len(), 0..64),
    ) {
        let src: String = picks.iter().map(|&i| SOUP[i]).collect();
        let s = scrub(&src);
        prop_assert_eq!(s.code.len(), src.len(), "scrub changed the byte length");
        prop_assert_eq!(
            s.code.matches('\n').count(),
            src.matches('\n').count(),
            "scrub changed the line structure"
        );
        // Token offsets all point into the source.
        for tok in tokenize(&s.code) {
            prop_assert!(tok.start < src.len());
        }
    }

    /// Same property over fully arbitrary (including non-ASCII) strings.
    #[test]
    fn scrub_never_panics_on_arbitrary_text(src in ".{0,200}") {
        let s = scrub(&src);
        prop_assert_eq!(s.code.len(), src.len());
        let _ = tokenize(&s.code);
    }
}

#[test]
fn raw_strings_with_hashes_scrub_completely() {
    let src = r####"let x = r#"unwrap() "quoted" inside"# ; let y = r##"more "# tricks"## ;"####;
    let s = scrub(src);
    assert!(!s.code.contains("unwrap"), "{}", s.code);
    assert!(!s.code.contains("tricks"), "{}", s.code);
    assert!(s.code.contains("let x"));
    assert!(s.code.contains("let y"));
}

#[test]
fn nested_block_comments_scrub_to_the_matching_close() {
    let src = "before /* outer /* inner */ still comment */ after";
    let s = scrub(src);
    assert!(s.code.contains("before"));
    assert!(s.code.contains("after"));
    assert!(!s.code.contains("inner"));
    assert!(!s.code.contains("still"));
}

#[test]
fn lifetimes_are_not_char_literals() {
    // 'a is a lifetime (kept as code); 'a' is a char literal (blanked).
    let src = "fn f<'a>(x: &'a str) -> char { 'a' }";
    let s = scrub(src);
    assert!(s.code.contains("'a>"), "lifetime was eaten: {}", s.code);
    assert!(s.code.contains("&'a str"), "lifetime was eaten: {}", s.code);
    assert!(
        !s.code.contains("'a' "),
        "char literal survived: {}",
        s.code
    );
}

#[test]
fn line_comment_openers_inside_strings_do_not_comment() {
    let src = "let url = \"https://example.com/*path\"; let live = 1;";
    let s = scrub(src);
    assert!(
        !s.code.contains("example"),
        "string not blanked: {}",
        s.code
    );
    assert!(
        s.code.contains("let live = 1;"),
        "code after a //-in-string was lost: {}",
        s.code
    );
}

#[test]
fn unwrap_only_inside_literals_yields_no_unwrap_tokens() {
    // The acceptance demo for strictness over grep: grep flags this line,
    // the lexer does not surface any `unwrap` identifier token.
    let src = "let msg = \"please call .unwrap() yourself\"; // or .unwrap()\n";
    let s = scrub(src);
    let toks = tokenize(&s.code);
    assert!(
        toks.iter().all(|t| t.text != "unwrap"),
        "literal/comment text leaked into the token stream"
    );
}
