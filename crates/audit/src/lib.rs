//! # pbppm-audit — structural invariant auditing for pbppm models
//!
//! Four independent producers reshape the prediction trees in this
//! workspace: offline training, the online rebuild loop, pruning, and the
//! binary snapshot codec. Each encodes assumptions about what a valid
//! model looks like — grade-capped branch heights, special links to live
//! duplicated nodes, popularity grades that match their counts, fresh
//! fingerprint-index aggregates. This crate is the single place those
//! assumptions are *checked* rather than assumed.
//!
//! The checking engine itself lives in [`pbppm_core::verify`] (it needs
//! in-crate access to model internals); this crate re-exports it and adds
//! the snapshot-level entry points:
//!
//! * [`verify_model`] / [`verify_model_with_urls`] — audit a live model.
//! * [`verify_snapshot`] — audit a decoded [`SnapshotFile`]: instantiate
//!   its model image and run every structural check against the stored
//!   URL table.
//! * [`verify_bytes`] — audit a raw byte stream: envelope errors (bad
//!   magic, truncation, checksum) surface as [`CodecError`]s, while a
//!   payload that *decodes* but describes an invalid model — a
//!   checksum-valid forgery or a bug in a writer — comes back as a report
//!   with violations.
//!
//! The adversarial harness in `tests/` corrupts valid models and
//! snapshots one invariant at a time and pins the exact
//! [`Violation`] kind each corruption produces.

#![forbid(unsafe_code)]

pub use pbppm_core::verify::{
    runtime_audit, runtime_audit_enabled, verify_frozen_matches, verify_model,
    verify_model_with_urls, AuditReport, ModelRef, Violation,
};
pub use pbppm_core::{CodecError, ModelImage, SnapshotFile};

use pbppm_core::{LrsPpm, Order1Markov, PbPpm, Predictor, StandardPpm};

/// Audits a decoded snapshot: instantiates the stored model image and runs
/// the full structural verification against it, including URL-symbol
/// resolution against the snapshot's own URL table.
///
/// A model image that fails to instantiate (dangling node reference,
/// parent cycle, bad root registration) yields a report with a single
/// [`Violation::SnapshotRejected`] rather than an error: from the
/// auditor's point of view a payload the loader refuses *is* the finding.
pub fn verify_snapshot(file: &SnapshotFile) -> AuditReport {
    let urls = Some(file.urls.len());
    match &file.model {
        ModelImage::Pb(s) => match PbPpm::from_snapshot(s) {
            Ok(m) => {
                let mut report = verify_model_with_urls(&ModelRef::Pb(&m), urls);
                // The loader recompiles the frozen arena from the tree and
                // serves from the rebuild; a persisted arena is audited
                // against it so a stale or forged copy is still a finding.
                if let Some(persisted) = &s.frozen {
                    verify_frozen_matches(m.frozen(), persisted, &mut report);
                }
                report
            }
            Err(e) => AuditReport::rejected("pb", e.to_string()),
        },
        ModelImage::Standard(s) => match StandardPpm::from_snapshot(s) {
            Ok(m) => {
                let mut report = verify_model_with_urls(&ModelRef::Standard(&m), urls);
                if let Some(persisted) = &s.frozen {
                    verify_frozen_matches(m.frozen(), persisted, &mut report);
                }
                report
            }
            Err(e) => AuditReport::rejected("standard", e.to_string()),
        },
        ModelImage::Lrs(s) => match LrsPpm::from_snapshot(s) {
            Ok(m) => {
                let mut report = verify_model_with_urls(&ModelRef::Lrs(&m), urls);
                if let Some(persisted) = &s.frozen {
                    verify_frozen_matches(m.frozen(), persisted, &mut report);
                }
                report
            }
            Err(e) => AuditReport::rejected("lrs", e.to_string()),
        },
        ModelImage::Order1(s) => {
            let m = Order1Markov::from_snapshot(s);
            verify_model_with_urls(&ModelRef::Order1(&m), urls)
        }
        ModelImage::OnlinePb(s) => match pbppm_core::OnlinePbPpm::from_snapshot(s) {
            Ok(m) => {
                let mut report = verify_model_with_urls(&ModelRef::OnlinePb(&m), urls);
                if let Some(persisted) = s.model.as_ref().and_then(|inner| inner.frozen.as_ref()) {
                    verify_frozen_matches(m.frozen(), persisted, &mut report);
                }
                report
            }
            Err(e) => AuditReport::rejected("online-pb", e.to_string()),
        },
    }
}

/// Audits a raw snapshot byte stream.
///
/// `Err` means the envelope itself is unreadable (magic, version, length,
/// checksum, or payload framing); `Ok` carries the structural audit of
/// whatever the payload described — including the case where the checksum
/// passes but the decoded model is invalid.
pub fn verify_bytes(bytes: &[u8]) -> Result<AuditReport, CodecError> {
    let file = SnapshotFile::decode(bytes)?;
    Ok(verify_snapshot(&file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbppm_core::{Interner, PbConfig, PbPpm, PopularityTable, Predictor, UrlId};

    fn small_pb() -> (Vec<String>, PbPpm) {
        let mut interner = Interner::new();
        let urls: Vec<String> = (0..4)
            .map(|i| {
                let u = format!("/p{i}");
                interner.intern(&u);
                u
            })
            .collect();
        let mut pop = PopularityTable::builder();
        pop.record_n(UrlId(0), 100);
        pop.record_n(UrlId(1), 8);
        pop.record_n(UrlId(2), 1);
        let mut m = PbPpm::new(pop.build(), PbConfig::default());
        for _ in 0..5 {
            m.train_session(&[UrlId(0), UrlId(1), UrlId(2), UrlId(3)]);
        }
        m.finalize();
        (urls, m)
    }

    #[test]
    fn clean_snapshot_verifies_clean() {
        let (urls, m) = small_pb();
        let file = SnapshotFile {
            urls,
            model: ModelImage::Pb(m.to_snapshot()),
        };
        let report = verify_bytes(&file.encode()).expect("envelope is valid");
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.model, "pb");
    }

    #[test]
    fn envelope_errors_stay_errors() {
        assert!(matches!(
            verify_bytes(b"definitely not a snapshot"),
            Err(CodecError::BadMagic)
        ));
    }
}
