//! Property: no prune schedule can leave the model structurally invalid.
//!
//! The paper's two post-build space optimizations (§3.4) delete nodes out
//! from under special links and root registrations; the online wrapper
//! repeats that surgery on every rebuild. This suite drives randomized
//! workloads through randomized prune configurations and rebuild cadences
//! (fixed seeds — failures reproduce) and requires `verify_model` to come
//! back clean every time. In particular a special link may never dangle:
//! that exact class is `link-dup-orphaned` / `link-target-detached` in the
//! adversarial suite.

use pbppm_audit::{verify_model, verify_model_with_urls, ModelRef};
use pbppm_core::{OnlinePbPpm, PbConfig, PbPpm, PopularityTable, Predictor, PruneConfig, UrlId};
use rand::{rngs::StdRng, Rng, SeedableRng};

const URL_SPACE: u32 = 24;

fn random_sessions(rng: &mut StdRng, count: usize) -> Vec<Vec<UrlId>> {
    (0..count)
        .map(|_| {
            let len = rng.gen_range(1usize..9);
            (0..len)
                .map(|_| {
                    // Zipf-ish: half the mass on the first few URLs.
                    if rng.gen_bool(0.5) {
                        UrlId(rng.gen_range(0u32..4))
                    } else {
                        UrlId(rng.gen_range(0u32..URL_SPACE))
                    }
                })
                .collect()
        })
        .collect()
}

fn random_prune(rng: &mut StdRng) -> PruneConfig {
    PruneConfig {
        relative_threshold: if rng.gen_bool(0.7) {
            Some(rng.gen_range(0.0f64..0.3))
        } else {
            None
        },
        min_abs_count: if rng.gen_bool(0.7) {
            Some(rng.gen_range(1u64..5))
        } else {
            None
        },
    }
}

#[test]
fn pruned_offline_models_always_verify_clean() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sessions = random_sessions(&mut rng, 60);
        let mut pop = PopularityTable::builder();
        for s in &sessions {
            for &url in s {
                pop.record(url);
            }
        }
        let cfg = PbConfig {
            prune: random_prune(&mut rng),
            special_links: rng.gen_bool(0.8),
            ..PbConfig::default()
        };
        let mut m = PbPpm::new(pop.build(), cfg);
        for s in &sessions {
            m.train_session(s);
        }
        m.finalize();
        let report = verify_model_with_urls(&ModelRef::Pb(&m), Some(URL_SPACE as usize));
        assert!(report.is_clean(), "seed {seed}: {report}");

        // The snapshot of the pruned model re-verifies clean after a
        // round-trip through the loader, too.
        let reloaded = PbPpm::from_snapshot(&m.to_snapshot()).expect("clean snapshot loads");
        let report = verify_model(&ModelRef::Pb(&reloaded));
        assert!(report.is_clean(), "seed {seed} reloaded: {report}");
    }
}

#[test]
fn online_rebuild_schedules_always_verify_clean() {
    for seed in 100..115u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = PbConfig {
            prune: random_prune(&mut rng),
            ..PbConfig::default()
        };
        let max_window = rng.gen_range(5usize..40);
        let rebuild_every = rng.gen_range(1usize..12);
        let mut online = OnlinePbPpm::new(cfg, max_window, rebuild_every);
        for s in random_sessions(&mut rng, 80) {
            online.train_session(&s);
            // Audit mid-stream occasionally, not just at the end: the
            // invariant must hold after *every* rebuild, and the window /
            // schedule bookkeeping must stay consistent throughout.
            if rng.gen_bool(0.1) {
                let report = verify_model(&ModelRef::OnlinePb(&online));
                assert!(report.is_clean(), "seed {seed} mid-stream: {report}");
            }
        }
        online.finalize();
        let report = verify_model_with_urls(&ModelRef::OnlinePb(&online), Some(URL_SPACE as usize));
        assert!(report.is_clean(), "seed {seed}: {report}");
    }
}
