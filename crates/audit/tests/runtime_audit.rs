//! End-to-end check of the runtime audit hooks: with `PBPPM_AUDIT=1`
//! forced on, a realistic multi-day training run must pass every
//! build/prune/rebuild audit silently, and the finished model must verify
//! clean through the public API too.
//!
//! This file is its own process (integration test binary), so setting the
//! environment variable here cannot race the `OnceLock` cache against
//! other test suites.

use pbppm_audit::{runtime_audit_enabled, verify_model_with_urls, ModelRef};
use pbppm_core::{
    LrsPpm, OnlinePbPpm, Order1Markov, PbConfig, PbPpm, Predictor, PruneConfig, StandardPpm, UrlId,
};

fn force_audit_on() {
    std::env::set_var("PBPPM_AUDIT", "1");
    assert!(
        runtime_audit_enabled(),
        "PBPPM_AUDIT=1 must force audits on"
    );
}

fn u(n: u32) -> UrlId {
    UrlId(n)
}

/// A deterministic seven-day workload: a Zipf-ish core of hot pages with
/// day-varying tails, the same shape the simulator's presets use.
fn week_of_sessions() -> Vec<Vec<UrlId>> {
    let mut sessions = Vec::new();
    for day in 0..7u32 {
        for visitor in 0..20u32 {
            let mut s = vec![u(0), u(1 + (visitor % 3))];
            s.push(u(4 + (day % 3)));
            s.push(u(7 + ((day + visitor) % 5)));
            if visitor % 4 == 0 {
                s.push(u(0));
                s.push(u(2));
            }
            sessions.push(s);
        }
    }
    sessions
}

#[test]
fn week_long_training_passes_every_runtime_audit() {
    force_audit_on();
    let sessions = week_of_sessions();
    let url_count = 12usize;

    // Popularity from pass one, exactly like offline two-pass training.
    let mut pop = pbppm_core::PopularityTable::builder();
    for s in &sessions {
        for &url in s {
            pop.record(url);
        }
    }
    let pop = pop.build();

    // PB-PPM with pruning enabled: finalize runs build + prune + audit.
    let mut pb = PbPpm::new(pop, PbConfig::default());
    for s in &sessions {
        pb.train_session(s);
    }
    pb.finalize(); // runtime audit fires here; a violation panics
    let report = verify_model_with_urls(&ModelRef::Pb(&pb), Some(url_count));
    assert!(report.is_clean(), "{report}");

    // The comparators under the same hooks.
    let mut std_m = StandardPpm::new(Some(6));
    let mut lrs = LrsPpm::new();
    let mut o1 = Order1Markov::new();
    for s in &sessions {
        std_m.train_session(s);
        lrs.train_session(s);
        o1.train_session(s);
    }
    std_m.finalize();
    lrs.finalize();
    o1.finalize();
    for (model, report) in [
        (
            "standard",
            verify_model_with_urls(&ModelRef::Standard(&std_m), Some(url_count)),
        ),
        (
            "lrs",
            verify_model_with_urls(&ModelRef::Lrs(&lrs), Some(url_count)),
        ),
        (
            "order1",
            verify_model_with_urls(&ModelRef::Order1(&o1), Some(url_count)),
        ),
    ] {
        assert!(report.is_clean(), "{model}: {report}");
    }
}

#[test]
fn online_rebuild_schedule_passes_every_runtime_audit() {
    force_audit_on();
    let mut online = OnlinePbPpm::new(
        PbConfig {
            prune: PruneConfig {
                relative_threshold: Some(0.05),
                min_abs_count: Some(2),
            },
            ..PbConfig::default()
        },
        40,
        10,
    );
    // Every 10th session triggers a rebuild (popularity + tree + prune),
    // and each rebuild runs the audit hook.
    for s in week_of_sessions() {
        online.train_session(&s);
    }
    online.finalize();
    let report = verify_model_with_urls(&ModelRef::OnlinePb(&online), Some(12));
    assert!(report.is_clean(), "{report}");
}
