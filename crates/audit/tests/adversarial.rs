//! Adversarial corruption harness: take a valid model or snapshot, break
//! exactly one structural invariant, and pin the violation kind the audit
//! reports for it.
//!
//! Every snapshot-level corruption here goes through `encode()`, which
//! recomputes the checksum — so each corrupt payload arrives with a *valid*
//! envelope. That is the point: the checksum proves the bytes are what the
//! writer produced, and only the structural audit can prove the writer
//! produced something sane.

use pbppm_audit::{
    verify_bytes, verify_model, verify_snapshot, ModelImage, ModelRef, SnapshotFile,
};
use pbppm_core::tree::{NodeSnapshot, TreeSnapshot};
use pbppm_core::{
    Grade, Order1Markov, PbConfig, PbPpm, PopularityTable, Predictor, PruneConfig, UrlId,
};

fn u(n: u32) -> UrlId {
    UrlId(n)
}

fn urls(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("/page{i}.html")).collect()
}

/// Builds the paper's §3.4 example: grades 3,2,1,3,2,1 over one session
/// `0..6`, producing two roots (0 and 3) and a special link 0 ~> dup(3).
fn pb_with_link() -> PbPpm {
    let mut pop = PopularityTable::builder();
    for (i, count) in [1000u64, 50, 5, 1000, 50, 5].into_iter().enumerate() {
        pop.record_n(u(u32::try_from(i).unwrap_or(0)), count);
    }
    let mut m = PbPpm::new(
        pop.build(),
        PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        },
    );
    for _ in 0..3 {
        m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
    }
    m.finalize();
    m
}

/// A deep single-branch model: grade-3 head, everything else unpopular.
fn pb_deep() -> PbPpm {
    let mut pop = PopularityTable::builder();
    pop.record_n(u(0), 1000);
    pop.record_n(u(1), 1);
    let mut m = PbPpm::new(
        pop.build(),
        PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        },
    );
    for _ in 0..3 {
        m.train_session(&[u(0), u(1), u(2), u(3)]);
    }
    m.finalize();
    m
}

fn encode_pb(m: &PbPpm, url_count: usize) -> (Vec<String>, pbppm_core::pb::PbSnapshot) {
    (urls(url_count), m.to_snapshot())
}

#[test]
fn baseline_snapshots_are_clean() {
    for (label, file) in [
        (
            "linked",
            SnapshotFile {
                urls: urls(6),
                model: ModelImage::Pb(pb_with_link().to_snapshot()),
            },
        ),
        (
            "deep",
            SnapshotFile {
                urls: urls(4),
                model: ModelImage::Pb(pb_deep().to_snapshot()),
            },
        ),
    ] {
        let report = verify_bytes(&file.encode()).expect("valid envelope");
        assert!(report.is_clean(), "{label} baseline dirty: {report}");
    }
}

#[test]
fn inflated_child_count_is_caught() {
    let (urls, mut snap) = encode_pb(&pb_with_link(), 6);
    // Inflate the count of some non-root branch node: its parent's
    // children now sum past the parent's own transition count.
    let victim = snap
        .tree
        .nodes
        .iter()
        .position(|n| n.parent != u32::MAX && !n.link_dup)
        .expect("model has non-root nodes");
    snap.tree.nodes[victim].count += 1_000_000;
    let bytes = SnapshotFile {
        urls,
        model: ModelImage::Pb(snap),
    }
    .encode();
    let report = verify_bytes(&bytes).expect("checksum is valid by construction");
    assert!(report.has("child-count-exceeds-parent"), "{report}");
}

#[test]
fn dropped_child_entry_is_caught() {
    let (urls, mut snap) = encode_pb(&pb_with_link(), 6);
    // Remove a child *entry* while the child node itself stays in the
    // arena pointing at its parent: a desync the loader cannot see.
    let parent = snap
        .tree
        .nodes
        .iter()
        .position(|n| !n.children.is_empty() && n.parent != u32::MAX)
        .expect("a non-root node with children exists");
    snap.tree.nodes[parent].children.remove(0);
    let bytes = SnapshotFile {
        urls,
        model: ModelImage::Pb(snap),
    }
    .encode();
    let report = verify_bytes(&bytes).expect("valid envelope");
    assert!(report.has("child-not-linked"), "{report}");
}

#[test]
fn forged_depth_is_caught() {
    let (urls, mut snap) = encode_pb(&pb_with_link(), 6);
    let victim = snap
        .tree
        .nodes
        .iter()
        .position(|n| n.parent != u32::MAX && !n.link_dup)
        .expect("model has non-root nodes");
    snap.tree.nodes[victim].depth = snap.tree.nodes[victim].depth.saturating_add(3);
    let bytes = SnapshotFile {
        urls,
        model: ModelImage::Pb(snap),
    }
    .encode();
    let report = verify_bytes(&bytes).expect("valid envelope");
    assert!(report.has("child-depth-mismatch"), "{report}");
}

#[test]
fn height_cap_breach_is_caught() {
    let (urls, mut snap) = encode_pb(&pb_deep(), 4);
    // Rewrite the popularity table so the branch head's grade collapses to
    // G0 (height cap 1). The stored branch is 4 deep — legal when it was
    // built, over the cap for the popularity the snapshot now claims.
    snap.pop = PopularityTable::from_counts(vec![0, 1, 0, 0]);
    let bytes = SnapshotFile {
        urls,
        model: ModelImage::Pb(snap),
    }
    .encode();
    let report = verify_bytes(&bytes).expect("valid envelope");
    assert!(report.has("height-exceeds-cap"), "{report}");
}

#[test]
fn retargeted_special_link_is_caught() {
    let (urls, mut snap) = encode_pb(&pb_with_link(), 6);
    assert!(!snap.tree.links.is_empty(), "setup must produce a link");
    // Point the special link at an ordinary branch node instead of the
    // duplicated popular node. The id is in range, so the loader accepts.
    let branch_node = snap
        .tree
        .nodes
        .iter()
        .position(|n| n.parent != u32::MAX && !n.link_dup)
        .expect("branch node exists");
    snap.tree.links[0].1[0] = u32::try_from(branch_node).expect("small arena");
    let bytes = SnapshotFile {
        urls,
        model: ModelImage::Pb(snap),
    }
    .encode();
    let report = verify_bytes(&bytes).expect("valid envelope");
    assert!(report.has("link-target-not-dup"), "{report}");
}

#[test]
fn truncated_url_table_is_caught() {
    let (_, snap) = encode_pb(&pb_with_link(), 6);
    // Keep the model, drop most of the URL table: node symbols no longer
    // resolve against the snapshot's own interner image.
    let bytes = SnapshotFile {
        urls: urls(2),
        model: ModelImage::Pb(snap),
    }
    .encode();
    let report = verify_bytes(&bytes).expect("valid envelope");
    assert!(report.has("symbol-unresolved"), "{report}");
}

#[test]
fn forged_grade_table_is_caught() {
    // The codec serializes the popularity table as raw counts and
    // rederives grades on load, so a grade forgery cannot ride a snapshot;
    // it models in-memory corruption (or a future codec that persists
    // grades). Forge via the doc(hidden) constructor and audit the model.
    let mut m = pb_with_link();
    let counts = m.popularity().counts().to_vec();
    let mut grades: Vec<Grade> = (0..counts.len())
        .map(|i| m.popularity().grade(u(u32::try_from(i).unwrap_or(0))))
        .collect();
    grades[0] = Grade::G0; // url 0 really carries G3
    let forged = PopularityTable::from_parts_unchecked(
        counts,
        grades,
        m.popularity().max_count(),
        m.popularity().total_accesses(),
    );
    m.set_popularity_for_audit(forged);
    let report = verify_model(&ModelRef::Pb(&m));
    assert!(report.has("grade-mismatch"), "{report}");
}

#[test]
fn stale_index_aggregate_is_caught() {
    let m = pb_with_link();
    let mut reloaded = PbPpm::from_snapshot(&m.to_snapshot()).expect("clean snapshot loads");
    assert!(verify_model(&ModelRef::Pb(&reloaded)).is_clean());
    assert!(
        reloaded.skew_index_aggregate_for_audit(),
        "model must have a non-empty index group to skew"
    );
    let report = verify_model(&ModelRef::Pb(&reloaded));
    assert!(report.has("index-aggregate-stale"), "{report}");
}

#[test]
fn forged_persisted_frozen_arena_is_caught() {
    let m = pb_with_link();
    let mut snap = m.to_snapshot();
    assert!(
        snap.frozen
            .as_mut()
            .expect("finalized PB persists its frozen arena")
            .skew_count_for_audit(),
        "arena must be non-empty to skew"
    );
    let file = SnapshotFile {
        urls: urls(6),
        model: ModelImage::Pb(snap),
    };
    // The loader serves from a recompiled arena, so the model itself is
    // sound — only the persisted-copy cross-check can flag the forgery.
    let report = verify_bytes(&file.encode()).expect("envelope stays valid");
    assert!(report.has("frozen-mismatch"), "{report}");
}

#[test]
fn order1_row_total_skew_is_caught() {
    let mut m = Order1Markov::new();
    m.train_session(&[u(0), u(1), u(0), u(2)]);
    m.finalize();
    let mut snap = m.to_snapshot();
    snap.rows[0].total += 5;
    let bytes = SnapshotFile {
        urls: urls(3),
        model: ModelImage::Order1(snap),
    }
    .encode();
    let report = verify_bytes(&bytes).expect("valid envelope");
    assert_eq!(report.model, "order1");
    assert!(report.has("order1-row-total-mismatch"), "{report}");
}

#[test]
fn cyclic_parent_chain_is_rejected_not_hung() {
    // Two nodes claiming each other as parent: the loader must refuse (the
    // audit reports the refusal), and decoding must terminate.
    let cyclic = |url: u32, parent: u32| NodeSnapshot {
        url,
        count: 1,
        parent,
        depth: 2,
        children: Vec::new(),
        link_dup: false,
    };
    let mut snap = pb_deep().to_snapshot();
    snap.tree = TreeSnapshot {
        nodes: vec![cyclic(0, 1), cyclic(1, 0)],
        roots: Vec::new(),
        links: Vec::new(),
    };
    let bytes = SnapshotFile {
        urls: urls(2),
        model: ModelImage::Pb(snap),
    }
    .encode();
    let report = verify_bytes(&bytes).expect("the envelope itself is valid");
    assert!(report.has("snapshot-rejected"), "{report}");
}

#[test]
fn reports_serialize_with_kind_and_path() {
    let (urls, mut snap) = encode_pb(&pb_with_link(), 6);
    let victim = snap
        .tree
        .nodes
        .iter()
        .position(|n| n.parent != u32::MAX && !n.link_dup)
        .expect("non-root node exists");
    snap.tree.nodes[victim].count += 1_000_000;
    let file = SnapshotFile {
        urls,
        model: ModelImage::Pb(snap),
    };
    let report = verify_snapshot(&file);
    assert!(!report.is_clean());
    let json = report.to_json();
    assert!(json.contains("\"kind\":\"child-count-exceeds-parent\""));
    assert!(json.contains("\"path\":["));
}
