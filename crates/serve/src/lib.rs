//! # pbppm-serve — the sharded, epoch-published serving core
//!
//! The serving side of the toolkit, split out of the CLI so both the
//! `pbppm serve` binary and the bench harness drive the same engine:
//!
//! * [`ServeSession`] — one shard's writer: an [`pbppm_core::OnlinePbPpm`]
//!   behind the line protocol, with crash-safe checkpoints, a flight
//!   recorder, and live prequential self-evaluation (moved here from
//!   `pbppm-cli`, which now re-exports it).
//! * [`ShardedServer`] — N such writers, keyed by client hash. Each shard
//!   pairs its single writer with an epoch-published, immutable model
//!   snapshot ([`PublishedModel`] behind
//!   [`pbppm_core::publish::EpochPublisher`]) that any number of readers
//!   can predict against without taking a lock in steady state. Requests
//!   arrive in batches and are drained per shard, dispatched across worker
//!   threads, and re-assembled in arrival order — responses are
//!   deterministic for a given client-to-shard assignment regardless of
//!   thread count.
//!
//! The structural audit (PR 5) gates publication: a writer only publishes
//! a rebuilt model that passes `verify_model_with_urls`; a failing rebuild
//! keeps serving the previous epoch and bumps `serve.publish_rejected`.

#![forbid(unsafe_code)]

pub mod session;
pub mod sharded;

pub use session::{Flow, Recovery, ServeOptions, ServeSession};
pub use sharded::{PublishedModel, ShardedOptions, ShardedServer};

/// Spawns the stdin reader thread and hands back the line channel.
///
/// Stdin drains into the channel while the serving core is busy, so
/// pipelined commands dispatch as one batch; the receiver returning
/// `Err` means stdin hit EOF. The thread may stay blocked on a final
/// read after `quit`; process exit reaps it. Lives here rather than in
/// the CLI because thread creation is confined to the serving and
/// parallelism crates (see `pbppm lint`'s `thread-spawn` rule).
#[must_use]
pub fn spawn_stdin_reader() -> std::sync::mpsc::Receiver<String> {
    let (tx, rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in std::io::stdin().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    rx
}
