//! One shard's writer: a long-running, crash-safe online prediction loop.
//!
//! Wraps [`OnlinePbPpm`] behind a line protocol and checkpoints its full
//! serving state (URL interner + sliding window + built model) through
//! [`SnapshotStore`] every `--checkpoint-every` rebuilds. On startup the
//! newest valid checkpoint generation is recovered, so a crash — even one
//! that truncates the latest snapshot mid-write — costs at most the
//! sessions since the previous checkpoint.
//!
//! The loop observes itself (ISSUE 7): every request is timed and ringed
//! through a fixed-capacity [`FlightRecorder`]; every `train` session is
//! first scored against the current model's own predictions ([`LiveEval`],
//! prequential test-then-train), so the server carries live sliding-window
//! precision / hit-ratio / traffic-increment numbers and a popularity-drift
//! signal; and the `metrics` / `trace` / `health` commands expose all of it
//! without stopping the process. A `serve_metrics.json` report is flushed
//! into the snapshot dir alongside checkpoints (and every `--flush-every`
//! requests), so even a crashed process leaves its last observed state
//! behind.
//!
//! In the sharded server ([`crate::ShardedServer`]) one `ServeSession` is
//! the single *writer* of each shard: it owns training, rebuilds,
//! checkpoints and flight recording, while predictions are answered by
//! readers against the epoch-published model snapshot.
//!
//! ## Protocol
//!
//! One command per line; every command answers with one `ok …` or `err …`
//! line (plus extra rows after `ok N`):
//!
//! ```text
//! train /a.html,/b.html,/c.html      feed one session (scored, then trained)
//! predict /a.html,/b.html            -> "ok N" then N lines "prob url"
//! checkpoint                         force a checkpoint now
//! stats                              one-line model + serving-session summary
//! metrics [--prom]                   -> "ok N" then N report lines
//! trace N                            -> "ok M" then M flight-recorder lines
//! health                             one line: healthy/degraded + counters
//! quit                               checkpoint and exit
//! ```
//!
//! Request accounting is write-ordered: the response is staged, written to
//! the client, and only then recorded — a failed client write counts as an
//! error outcome in the flight recorder, never as a served request.

use pbppm_core::eval::EvalConfig;
use pbppm_core::snapshot::{Generation, ModelImage, SnapshotFile, SnapshotStore};
use pbppm_core::{
    traffic_increment, Interner, LiveEval, LiveEvalConfig, ModelRef, OnlinePbPpm, PbConfig,
    Prediction, PredictionQuality, Predictor, UrlId,
};
use pbppm_obs::flight::COMMAND_KINDS;
use pbppm_obs::{CommandKind, FlightRecorder, Registry, RunReport};
use std::io::Write;
use std::time::Instant;

/// What a handled protocol line means for the read loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep reading.
    Continue,
    /// The client said `quit`; stop cleanly.
    Quit,
}

/// Where a freshly opened serving session got its state from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// No checkpoint existed; the model starts empty.
    Fresh,
    /// A checkpoint generation was loaded.
    Warm(Generation),
}

impl Recovery {
    pub(crate) fn label(self) -> &'static str {
        match self {
            Recovery::Fresh => "fresh",
            Recovery::Warm(Generation::Current) => "current",
            Recovery::Warm(Generation::Previous) => "previous",
        }
    }

    /// Numeric form for the `serve.recovered_generation` gauge.
    pub(crate) fn gauge(self) -> u64 {
        match self {
            Recovery::Fresh => 0,
            Recovery::Warm(Generation::Current) => 1,
            Recovery::Warm(Generation::Previous) => 2,
        }
    }
}

/// Tunables for a serving session beyond the model configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeOptions {
    /// Sliding window of sessions the online model keeps.
    pub window: usize,
    /// Rebuild the model every this many trained sessions.
    pub rebuild_every: usize,
    /// Checkpoint after this many completed rebuilds.
    pub checkpoint_every: u64,
    /// Predictions returned per `predict`.
    pub top: usize,
    /// Live-eval sliding window, in contexts.
    pub eval_window: usize,
    /// Degrade health when windowed precision@k falls below this fraction
    /// of the lifetime mean.
    pub drift_fraction: f64,
    /// Flight-recorder ring capacity, in requests.
    pub flight_capacity: usize,
    /// Flush `serve_metrics.json` every this many requests (0 = only on
    /// checkpoints and quit).
    pub flush_every: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            window: 1000,
            rebuild_every: 50,
            checkpoint_every: 1,
            top: 10,
            eval_window: 512,
            drift_fraction: 0.5,
            flight_capacity: 256,
            flush_every: 256,
        }
    }
}

/// The serving loop's state: interner, online model, checkpoint store,
/// and the observability layer (flight recorder + live evaluator).
pub struct ServeSession {
    urls: Interner,
    online: OnlinePbPpm,
    store: SnapshotStore,
    /// Checkpoint after this many completed rebuilds.
    checkpoint_every: u64,
    last_checkpoint_rebuilds: u64,
    top: usize,
    recovery: Recovery,
    recorder: FlightRecorder,
    live: LiveEval,
    start_rebuilds: u64,
    checkpoints_written: u64,
    recovery_audits: u64,
    requests: u64,
    errors: u64,
    flush_every: u64,
    flush_failures: u64,
    /// Predictions whose interned URL could not be resolved — each one is
    /// an interner/model desync that would previously have been rendered
    /// as a literal `"?"` and lost.
    interner_desync: u64,
    /// Reused response staging buffer — one per shard, so the hot path
    /// does not allocate per request.
    resp_buf: Vec<u8>,
    /// Reused predict-payload staging for the flight record.
    top_buf: Vec<(String, f64)>,
}

impl ServeSession {
    /// Opens a serving session over `dir`, recovering from the newest
    /// valid checkpoint when one exists. The model-shaping options
    /// (`window`/`rebuild_every`) only apply to a **fresh** session; a
    /// recovered snapshot carries its own configuration.
    pub fn open(
        dir: &str,
        cfg: PbConfig,
        opts: ServeOptions,
    ) -> Result<(Self, Recovery), Box<dyn std::error::Error>> {
        let store = SnapshotStore::open(dir)?;
        let mut recovery_audits = 0u64;
        let (urls, online, recovery) = match store.recover()? {
            Some((file, generation)) => {
                let ModelImage::OnlinePb(snap) = &file.model else {
                    return Err(format!(
                        "{}: snapshot holds a {} model, not online serving state",
                        store.dir().display(),
                        file.model.kind_label()
                    )
                    .into());
                };
                let online = OnlinePbPpm::from_snapshot(snap)?;
                // A checkpoint can be checksum-valid yet structurally
                // rotten (writer bug, partial logic migration). Refuse to
                // serve predictions from a model that fails the audit —
                // at this point the damage is recoverable; after hours of
                // serving and re-checkpointing it no longer is.
                let report = pbppm_core::verify_model_with_urls(
                    &ModelRef::OnlinePb(&online),
                    Some(file.urls.len()),
                );
                if !report.is_clean() {
                    return Err(format!(
                        "{}: recovered checkpoint fails the structural audit; \
                         refusing to serve from it\n{report}",
                        store.dir().display()
                    )
                    .into());
                }
                recovery_audits = 1;
                (file.interner(), online, Recovery::Warm(generation))
            }
            None => (
                Interner::new(),
                OnlinePbPpm::new(cfg, opts.window, opts.rebuild_every),
                Recovery::Fresh,
            ),
        };
        let last_checkpoint_rebuilds = online.rebuild_count();
        Ok((
            Self {
                urls,
                start_rebuilds: online.rebuild_count(),
                online,
                store,
                checkpoint_every: opts.checkpoint_every.max(1),
                last_checkpoint_rebuilds,
                top: opts.top,
                recovery,
                recorder: FlightRecorder::new(opts.flight_capacity),
                live: LiveEval::new(LiveEvalConfig {
                    eval: EvalConfig {
                        k: opts.top.max(1),
                        ..EvalConfig::default()
                    },
                    window: opts.eval_window,
                    drift_fraction: opts.drift_fraction,
                    ..LiveEvalConfig::default()
                }),
                checkpoints_written: 0,
                recovery_audits,
                requests: 0,
                errors: 0,
                flush_every: opts.flush_every,
                flush_failures: 0,
                interner_desync: 0,
                resp_buf: Vec::new(),
                top_buf: Vec::new(),
            },
            recovery,
        ))
    }

    /// The online model being served (tests, publication).
    pub fn online(&self) -> &OnlinePbPpm {
        &self.online
    }

    /// The interner the writer trains against (publication clones it).
    pub fn urls(&self) -> &Interner {
        &self.urls
    }

    /// The live prequential evaluator (tests).
    pub fn live(&self) -> &LiveEval {
        &self.live
    }

    /// The flight recorder (tests).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Where this session's state came from at open time.
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// Checkpoints written by this session.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Requests handled (including errored ones).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests that answered `err` (or failed to reach the client).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// `serve_metrics.json` flushes that failed (disk trouble).
    pub fn flush_failures(&self) -> u64 {
        self.flush_failures
    }

    /// Predictions dropped because the model referenced an interned URL
    /// the interner could not resolve.
    pub fn interner_desync(&self) -> u64 {
        self.interner_desync
    }

    /// Predictions returned per `predict` (the `--top` option).
    pub fn top(&self) -> usize {
        self.top
    }

    /// Counts one interner/model desync observed on the shard's reader
    /// path; returns the new total (for the error message).
    pub(crate) fn note_interner_desync(&mut self) -> u64 {
        self.interner_desync += 1;
        self.interner_desync
    }

    /// Writes a checkpoint of the full serving state (and refreshes the
    /// metrics flush alongside it). Returns its size.
    pub fn checkpoint(&mut self) -> Result<u64, Box<dyn std::error::Error>> {
        let file = SnapshotFile {
            urls: interner_urls(&self.urls),
            model: ModelImage::OnlinePb(self.online.to_snapshot()),
        };
        let bytes = self.store.checkpoint(&file)?;
        self.last_checkpoint_rebuilds = self.online.rebuild_count();
        self.checkpoints_written += 1;
        if self.flush_metrics().is_err() {
            self.flush_failures += 1;
        }
        Ok(bytes)
    }

    /// Checkpoints when enough rebuilds have accumulated since the last
    /// one. Returns the bytes written, if any.
    fn maybe_checkpoint(&mut self) -> Result<Option<u64>, Box<dyn std::error::Error>> {
        if self.online.rebuild_count() - self.last_checkpoint_rebuilds >= self.checkpoint_every {
            return self.checkpoint().map(Some);
        }
        Ok(None)
    }

    /// Atomically (write + rename) refreshes `serve_metrics.json` in the
    /// snapshot dir with the current [`RunReport`], so the last observed
    /// serving state survives a crash.
    pub fn flush_metrics(&self) -> std::io::Result<()> {
        let path = self.store.dir().join("serve_metrics.json");
        let tmp = self.store.dir().join("serve_metrics.json.tmp");
        std::fs::write(&tmp, self.build_report().to_json())?;
        std::fs::rename(&tmp, &path)
    }

    fn parse_urls(&mut self, raw: &str, intern_new: bool) -> Vec<UrlId> {
        raw.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .filter_map(|s| {
                if intern_new {
                    Some(self.urls.intern(s))
                } else {
                    // Prediction contexts only match URLs the model has
                    // seen; unknown ones cannot contribute and are skipped.
                    self.urls.get(s)
                }
            })
            .collect()
    }

    /// Handles one protocol line, writing the response to `out`.
    ///
    /// The response is staged through the session's reused buffer, written
    /// to the client, and only *then* recorded: the flight record's
    /// outcome covers delivery, so a broken client connection shows up as
    /// an error, not a phantom success.
    pub fn handle_line(&mut self, line: &str, out: &mut dyn Write) -> std::io::Result<Flow> {
        let line = line.trim();
        if line.is_empty() {
            return Ok(Flow::Continue);
        }
        let started = Instant::now();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        let kind = CommandKind::parse(cmd);
        // Staging buffers are session fields reused across requests (one
        // pair per shard); `take` sidesteps the borrow against `dispatch`.
        let mut buf = std::mem::take(&mut self.resp_buf);
        let mut top = std::mem::take(&mut self.top_buf);
        buf.clear();
        top.clear();
        let flow = self.dispatch(kind, cmd, rest, &mut buf, &mut top)?;
        let write_result = out.write_all(&buf);
        let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ok = buf.starts_with(b"ok") && write_result.is_ok();
        let strategy = match kind {
            CommandKind::Predict => self.online.match_strategy().map(|s| s.label()),
            _ => None,
        };
        self.finish_request(kind, latency_ns, ok, strategy, &top);
        self.resp_buf = buf;
        self.top_buf = top;
        write_result?;
        Ok(flow)
    }

    /// Post-delivery accounting shared by the writer path (`handle_line`)
    /// and the sharded reader path: flight record, request/error counters,
    /// and the periodic metrics flush.
    pub(crate) fn finish_request(
        &mut self,
        kind: CommandKind,
        latency_ns: u64,
        ok: bool,
        strategy: Option<&'static str>,
        top: &[(String, f64)],
    ) {
        if !ok {
            self.errors += 1;
        }
        let top_refs: Vec<(&str, f64)> = top.iter().map(|(u, p)| (u.as_str(), *p)).collect();
        self.recorder
            .push(kind, latency_ns, ok, strategy, &top_refs);
        self.requests += 1;
        if self.flush_every > 0
            && self.requests.is_multiple_of(self.flush_every)
            && self.flush_metrics().is_err()
        {
            self.flush_failures += 1;
        }
    }

    /// Runs one command, writing its response lines into `buf`. `top`
    /// receives the predict payload for the flight record.
    fn dispatch(
        &mut self,
        kind: CommandKind,
        cmd: &str,
        rest: &str,
        buf: &mut Vec<u8>,
        top: &mut Vec<(String, f64)>,
    ) -> std::io::Result<Flow> {
        let out: &mut dyn Write = buf;
        match kind {
            CommandKind::Train => {
                let session = self.parse_urls(rest, true);
                if session.is_empty() {
                    writeln!(out, "err train expects a comma-separated URL list")?;
                    return Ok(Flow::Continue);
                }
                // Prequential self-evaluation: score the incoming clicks
                // against the *current* model before training on them.
                let grades = self.online.current().map(|m| m.popularity());
                self.live.observe_session(&self.online, grades, &session);
                let rebuilds_before = self.online.rebuild_count();
                let train_started = Instant::now();
                self.online.train_session(&session);
                if self.online.rebuild_count() > rebuilds_before {
                    // Attribute the whole train call to the rebuild
                    // histogram when one fired: the rebuild dominates the
                    // window push by orders of magnitude.
                    let ns = u64::try_from(train_started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    self.recorder.observe(CommandKind::Rebuild, ns);
                }
                match self.maybe_checkpoint() {
                    Ok(saved) => writeln!(
                        out,
                        "ok trained {} url(s); window {}, rebuilds {}{}",
                        session.len(),
                        self.online.window_len(),
                        self.online.rebuild_count(),
                        match saved {
                            Some(bytes) => format!(", checkpointed {bytes} bytes"),
                            None => String::new(),
                        }
                    )?,
                    Err(e) => writeln!(out, "err checkpoint failed: {e}")?,
                }
            }
            CommandKind::Predict => {
                let context = self.parse_urls(rest, false);
                let mut preds = Vec::new();
                self.online.predict(&context, &mut preds);
                preds.truncate(self.top);
                if let Err(id) = write_predictions(&self.urls, &preds, out, top)? {
                    self.interner_desync += 1;
                    writeln!(
                        out,
                        "err predict: model emitted unresolvable url id {id} \
                         (interner/model desync; {} total)",
                        self.interner_desync
                    )?;
                }
            }
            CommandKind::Checkpoint => match self.checkpoint() {
                Ok(bytes) => writeln!(out, "ok checkpointed {bytes} bytes")?,
                Err(e) => writeln!(out, "err checkpoint failed: {e}")?,
            },
            CommandKind::Stats => {
                let s = self.online.stats();
                writeln!(
                    out,
                    "ok urls {}, window {}, rebuilds {}, nodes {}, bytes {}, \
                     recovered {}, rebuilds_since_start {}, checkpoints {}, \
                     flush_failures {}",
                    self.urls.len(),
                    self.online.window_len(),
                    self.online.rebuild_count(),
                    s.nodes,
                    s.total_bytes(),
                    self.recovery.label(),
                    self.online.rebuild_count() - self.start_rebuilds,
                    self.checkpoints_written,
                    self.flush_failures,
                )?;
            }
            CommandKind::Metrics => {
                let report = self.build_report();
                let rendered = if rest.trim() == "--prom" {
                    report.render_prometheus()
                } else if rest.trim().is_empty() {
                    report.render_text()
                } else {
                    writeln!(out, "err metrics takes no argument except --prom")?;
                    return Ok(Flow::Continue);
                };
                let lines: Vec<&str> = rendered.lines().collect();
                writeln!(out, "ok {}", lines.len())?;
                for l in lines {
                    writeln!(out, "{l}")?;
                }
            }
            CommandKind::Trace => {
                let n = if rest.trim().is_empty() {
                    10
                } else {
                    match rest.trim().parse::<usize>() {
                        Ok(n) => n,
                        Err(_) => {
                            writeln!(out, "err trace expects a count, got {:?}", rest.trim())?;
                            return Ok(Flow::Continue);
                        }
                    }
                };
                let records: Vec<String> = self.recorder.last(n).map(|r| r.render()).collect();
                writeln!(out, "ok {}", records.len())?;
                for r in records {
                    writeln!(out, "{r}")?;
                }
            }
            CommandKind::Health => {
                let drifted = self.live.drifted();
                let window = self.live.window_quality();
                writeln!(
                    out,
                    "ok {} recovered={} rebuilds={} checkpoints={} audits={} \
                     window_precision_at_k={:.3} lifetime_precision_at_k={:.3} \
                     flush_failures={}",
                    if drifted { "degraded" } else { "healthy" },
                    self.recovery.label(),
                    self.online.rebuild_count(),
                    self.checkpoints_written,
                    self.recovery_audits,
                    window.precision_at_k(),
                    self.live.lifetime().precision_at_k(),
                    self.flush_failures,
                )?;
            }
            CommandKind::Quit => {
                match self.checkpoint() {
                    Ok(bytes) => writeln!(out, "ok bye; checkpointed {bytes} bytes")?,
                    Err(e) => writeln!(out, "err final checkpoint failed: {e}")?,
                }
                return Ok(Flow::Quit);
            }
            CommandKind::Rebuild | CommandKind::Other => {
                writeln!(
                    out,
                    "err unknown command {cmd:?} \
                     (train/predict/checkpoint/stats/metrics/trace/health/quit)"
                )?;
            }
        }
        Ok(Flow::Continue)
    }

    /// Builds the serving [`RunReport`]: request/error counters, per-kind
    /// latency histograms, the online model's shape, and the live
    /// evaluator's lifetime/window/per-grade quality — the same schema
    /// `--metrics-out` uses everywhere else, so `metrics --prom` is
    /// directly scrapeable and `serve_metrics.json` is directly parseable.
    pub fn build_report(&self) -> RunReport {
        let reg = Registry::new();
        self.fill_report(&reg);
        RunReport {
            schema_version: pbppm_obs::report::SCHEMA_VERSION,
            command: "serve".to_owned(),
            telemetry_enabled: pbppm_obs::ENABLED,
            spans: Vec::new(),
            metrics: reg.snapshot(),
        }
    }

    /// Emits this session's metrics into `reg`. Counters and histograms
    /// are additive, so the sharded server calls this once per shard on a
    /// shared registry (in shard order — the merge is deterministic);
    /// gauges are summed there separately.
    pub(crate) fn fill_report(&self, reg: &Registry) {
        for kind in COMMAND_KINDS {
            let hist = self.recorder.hist(kind);
            if hist.count() == 0 {
                continue;
            }
            let label = format!("cmd={}", kind.label());
            reg.counter("serve.requests", &label).add(hist.count());
            reg.histogram("serve.latency_ns", &label).absorb(hist);
        }
        reg.counter("serve.errors", "").add(self.errors);
        reg.counter("serve.rebuilds", "")
            .add(self.online.rebuild_count());
        reg.counter("serve.checkpoints", "")
            .add(self.checkpoints_written);
        reg.counter("serve.recovery_audits", "")
            .add(self.recovery_audits);
        reg.counter("serve.metrics_flush_failures", "")
            .add(self.flush_failures);
        reg.counter("serve.interner_desync", "")
            .add(self.interner_desync);
        reg.gauge("serve.recovered_generation", "")
            .set(self.recovery.gauge());
        reg.gauge("serve.window_sessions", "")
            .set(self.online.window_len() as u64);

        let s = self.online.stats();
        reg.gauge("model.nodes", "").set(s.nodes as u64);
        reg.gauge("model.bytes", "").set(s.total_bytes() as u64);

        let lifetime = self.live.lifetime();
        reg.counter("live.sessions", "").add(self.live.sessions());
        quality_counters(reg, "live", lifetime);
        for (level, g) in self.live.by_grade().iter().enumerate() {
            let label = format!("grade=G{level}");
            reg.counter("live.grade.contexts", &label).add(g.contexts);
            reg.counter("live.grade.hits_at_k", &label).add(g.hits_at_k);
        }

        let window = self.live.window_quality();
        reg.gauge("live.window.contexts", "").set(window.contexts);
        reg.gauge("live.window.precision_at_1_ppm", "")
            .set(ppm(window.precision_at_1()));
        reg.gauge("live.window.precision_at_k_ppm", "")
            .set(ppm(window.precision_at_k()));
        reg.gauge("live.window.coverage_ppm", "")
            .set(ppm(window.coverage()));
        reg.gauge("live.window.traffic_increment_milli", "")
            .set(milli(traffic_increment(&window)));
        reg.gauge("live.drift", "")
            .set(u64::from(self.live.drifted()));
    }
}

/// Renders `ok N` + one `prob url` row per prediction into `out`, filling
/// `top` for the flight record — unless some prediction's interned URL
/// cannot be resolved, in which case *nothing* is written and the
/// offending id is returned: an unresolvable id means the model and the
/// interner have desynced, and serving a placeholder URL would silently
/// mask it. Shared by the writer predict path and the sharded reader path
/// so both render byte-identically.
pub(crate) fn write_predictions(
    urls: &Interner,
    preds: &[Prediction],
    out: &mut dyn Write,
    top: &mut Vec<(String, f64)>,
) -> std::io::Result<Result<(), UrlId>> {
    if let Some(p) = preds.iter().find(|p| urls.resolve(p.url).is_none()) {
        return Ok(Err(p.url));
    }
    writeln!(out, "ok {}", preds.len())?;
    for p in preds {
        let url = urls.resolve(p.url).unwrap_or("");
        writeln!(out, "{:.3} {}", p.prob, url)?;
        top.push((url.to_owned(), p.prob));
    }
    Ok(Ok(()))
}

/// Snapshot payload helper: every interned URL, in id order (mirrors the
/// bundle writer in `pbppm-cli`).
fn interner_urls(urls: &Interner) -> Vec<String> {
    urls.iter().map(|(_, name)| name.to_owned()).collect()
}

/// Publishes one [`PredictionQuality`]'s raw counters under `prefix.*`.
pub(crate) fn quality_counters(reg: &Registry, prefix: &str, q: &PredictionQuality) {
    reg.counter(&format!("{prefix}.contexts"), "")
        .add(q.contexts);
    reg.counter(&format!("{prefix}.covered"), "").add(q.covered);
    reg.counter(&format!("{prefix}.hits_at_1"), "")
        .add(q.hits_at_1);
    reg.counter(&format!("{prefix}.hits_at_k"), "")
        .add(q.hits_at_k);
    reg.counter(&format!("{prefix}.useful_at_k"), "")
        .add(q.useful_at_k);
    reg.counter(&format!("{prefix}.emitted"), "").add(q.emitted);
}

/// A ratio in `[0, 1]` as integer parts-per-million (gauges store `u64`).
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub(crate) fn ppm(x: f64) -> u64 {
    (x.clamp(0.0, 1.0) * 1_000_000.0).round() as u64
}

/// A small non-negative rate as integer thousandths.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
pub(crate) fn milli(x: f64) -> u64 {
    (x.max(0.0) * 1_000.0).round().min(1e18) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("pbppm-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.display().to_string()
    }

    fn open(dir: &str) -> (ServeSession, Recovery) {
        // rebuild_every=1 + checkpoint_every=1: every session rebuilds and
        // checkpoints, so generations accumulate quickly.
        let opts = ServeOptions {
            window: 100,
            rebuild_every: 1,
            checkpoint_every: 1,
            top: 10,
            ..ServeOptions::default()
        };
        ServeSession::open(dir, PbConfig::default(), opts).unwrap()
    }

    fn line(s: &mut ServeSession, cmd: &str) -> String {
        let mut buf = Vec::new();
        s.handle_line(cmd, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn protocol_basics() {
        let dir = temp_dir("protocol");
        let (mut s, recovery) = open(&dir);
        assert_eq!(recovery, Recovery::Fresh);
        assert!(line(&mut s, "train /a,/b,/a,/b").starts_with("ok trained 4"));
        let reply = line(&mut s, "predict /a");
        assert!(reply.starts_with("ok 1"), "unexpected reply: {reply}");
        assert!(reply.contains("/b"), "unexpected reply: {reply}");
        assert!(line(&mut s, "predict /never-seen").starts_with("ok 0"));
        assert!(line(&mut s, "stats").starts_with("ok urls 2"));
        assert!(line(&mut s, "bogus").starts_with("err unknown command"));
        assert!(line(&mut s, "train ").starts_with("err train expects"));
        assert!(line(&mut s, "quit").starts_with("ok bye"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_restores_predictions() {
        let dir = temp_dir("warm");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b,/c");
        line(&mut s, "train /a,/b,/c");
        let before = line(&mut s, "predict /a,/b");
        drop(s);

        let (mut s2, recovery) = open(&dir);
        assert_eq!(recovery, Recovery::Warm(Generation::Current));
        assert_eq!(line(&mut s2, "predict /a,/b"), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovers_from_truncated_current_snapshot() {
        let dir = temp_dir("truncated");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        let after_first = line(&mut s, "predict /a");
        line(&mut s, "train /x,/y");
        drop(s);

        // Simulate a crash mid-write: the newest generation is cut short.
        let current = SnapshotStore::open(&dir).unwrap().current_path();
        let bytes = std::fs::read(&current).unwrap();
        std::fs::write(&current, &bytes[..bytes.len() / 2]).unwrap();

        let (mut s2, recovery) = open(&dir);
        assert_eq!(recovery, Recovery::Warm(Generation::Previous));
        // The previous generation predates the second train line.
        assert_eq!(line(&mut s2, "predict /a"), after_first);
        assert!(line(&mut s2, "predict /x").starts_with("ok 0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn training_continues_after_recovery() {
        let dir = temp_dir("resume");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        drop(s);
        let (mut s2, _) = open(&dir);
        assert!(line(&mut s2, "train /a,/c").starts_with("ok trained 2"));
        let reply = line(&mut s2, "predict /a");
        assert!(reply.starts_with("ok 2"), "both sessions count: {reply}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_reports_serving_session_state() {
        let dir = temp_dir("stats-session");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        line(&mut s, "checkpoint");
        let reply = line(&mut s, "stats");
        assert!(reply.contains("recovered fresh"), "{reply}");
        assert!(reply.contains("rebuilds_since_start 1"), "{reply}");
        // rebuild-triggered checkpoint + the explicit one
        assert!(reply.contains("checkpoints 2"), "{reply}");
        assert!(reply.contains("flush_failures 0"), "{reply}");
        drop(s);
        let (mut s2, _) = open(&dir);
        let reply = line(&mut s2, "stats");
        assert!(reply.contains("recovered current"), "{reply}");
        assert!(reply.contains("rebuilds_since_start 0"), "{reply}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_command_renders_both_formats() {
        let dir = temp_dir("metrics");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        line(&mut s, "predict /a");
        let human = line(&mut s, "metrics");
        let (head, body) = human.split_once('\n').unwrap();
        let n: usize = head.strip_prefix("ok ").unwrap().parse().unwrap();
        assert_eq!(body.lines().count(), n, "line count must match header");
        assert!(body.contains("serve.requests"), "{body}");
        let prom = line(&mut s, "metrics --prom");
        assert!(prom.starts_with("ok "), "{prom}");
        assert!(
            prom.contains("pbppm_serve_requests{cmd=\"train\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("pbppm_serve_latency_ns_bucket"), "{prom}");
        assert!(prom.contains("pbppm_live_contexts 1"), "{prom}");
        assert!(line(&mut s, "metrics bogus").starts_with("err metrics"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_dumps_recent_requests() {
        let dir = temp_dir("trace");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        line(&mut s, "train /a,/b");
        line(&mut s, "predict /a");
        let reply = line(&mut s, "trace 2");
        let mut lines = reply.lines();
        assert_eq!(lines.next(), Some("ok 2"));
        let second_to_last = lines.next().unwrap();
        assert!(second_to_last.contains("train ok"), "{second_to_last}");
        let last = lines.next().unwrap();
        assert!(last.contains("predict ok"), "{last}");
        assert!(last.contains("strategy="), "{last}");
        assert!(last.contains("/b"), "predict payload recorded: {last}");
        assert!(line(&mut s, "trace x").starts_with("err trace expects"));
        // The malformed trace request itself lands in the ring.
        let after = line(&mut s, "trace 10");
        assert!(after.contains("trace err"), "{after}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_degrades_on_drift_and_reports_recovery() {
        let dir = temp_dir("health");
        let opts = ServeOptions {
            window: 100,
            rebuild_every: 1,
            checkpoint_every: 1_000_000, // keep checkpoints out of the way
            top: 10,
            eval_window: 8,
            drift_fraction: 0.5,
            ..ServeOptions::default()
        };
        let (mut s, _) = ServeSession::open(&dir, PbConfig::default(), opts).unwrap();
        assert!(line(&mut s, "health").starts_with("ok healthy"), "fresh");
        // Long accurate phase: the model keeps predicting /a -> /b right.
        for _ in 0..64 {
            line(&mut s, "train /a,/b");
        }
        assert!(line(&mut s, "health").starts_with("ok healthy"));
        // Popularity shifts: /a now leads somewhere never seen before
        // (a fresh URL each time, so no rebuild can catch up within the
        // window) and the windowed precision collapses to zero.
        for i in 0..8 {
            line(&mut s, &format!("train /a,/shift{i}"));
        }
        let reply = line(&mut s, "health");
        assert!(reply.starts_with("ok degraded"), "{reply}");
        assert!(reply.contains("recovered=fresh"), "{reply}");
        assert!(reply.contains("checkpoints=0"), "{reply}");
        assert!(reply.contains("flush_failures=0"), "{reply}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_flush_lands_in_the_snapshot_dir() {
        let dir = temp_dir("flush");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b"); // rebuild + checkpoint -> flush
        let path = std::path::Path::new(&dir).join("serve_metrics.json");
        let json = std::fs::read_to_string(&path).unwrap();
        let report = RunReport::from_json(&json).unwrap();
        assert_eq!(report.command, "serve");
        assert!(report
            .metrics
            .counters
            .iter()
            .any(|c| c.name == "serve.requests"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A sink whose writes always fail, like a client that hung up.
    struct BrokenPipe;

    impl Write for BrokenPipe {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "client gone",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// ISSUE 8 satellite: a failed client write must be recorded as an
    /// error outcome, never as a successfully served request. (The old
    /// loop recorded *before* writing, so a dead client produced phantom
    /// "ok" flight records.)
    #[test]
    fn failed_client_write_is_recorded_as_an_error() {
        let dir = temp_dir("broken-pipe");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        let err = s.handle_line("predict /a", &mut BrokenPipe).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // The request is still accounted for — as an error.
        assert_eq!(s.requests(), 2);
        assert_eq!(s.errors(), 1);
        let record = s.recorder().last(1).next().unwrap().render();
        assert!(record.contains("predict err"), "{record}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ISSUE 8 satellite: a prediction whose interned URL cannot be
    /// resolved is an interner/model desync — it must answer `err` and
    /// bump an audit-worthy counter, not render a literal `"?"` that is
    /// indistinguishable from a real URL.
    #[test]
    fn unresolvable_prediction_is_an_error_not_a_question_mark() {
        let dir = temp_dir("desync");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b,/a,/b");
        // Fabricate the desync: swap in an interner that still knows the
        // context URL (same id 0) but has lost the model's target /b.
        s.urls = Interner::new();
        s.urls.intern("/a");
        let reply = line(&mut s, "predict /a");
        assert!(reply.starts_with("err predict"), "{reply}");
        assert!(reply.contains("desync"), "{reply}");
        assert!(!reply.contains('?'), "no placeholder URL: {reply}");
        assert_eq!(s.interner_desync(), 1);
        assert_eq!(s.errors(), 1);
        let report = s.build_report();
        assert!(
            report
                .metrics
                .counters
                .iter()
                .any(|c| c.name == "serve.interner_desync" && c.value == 1),
            "desync counter must reach the report"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ISSUE 8 satellite: the response staging buffer is a session field
    /// reused across requests — after any request its capacity must be
    /// retained (a fresh `Vec::new()` per request would show capacity 0
    /// here after the post-request restore).
    #[test]
    fn response_buffer_is_reused_across_requests() {
        let dir = temp_dir("buf-reuse");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        let cap = s.resp_buf.capacity();
        assert!(cap > 0, "staging buffer retained after the request");
        line(&mut s, "predict /a");
        assert!(
            s.resp_buf.capacity() >= cap,
            "capacity only grows across requests"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// ISSUE 8 satellite: flush failures are operator-visible in stats,
    /// health, and the metrics report — not just a private counter.
    #[test]
    fn flush_failures_are_surfaced_everywhere() {
        let dir = temp_dir("flush-failures");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        s.flush_failures = 3;
        assert!(line(&mut s, "stats").contains("flush_failures 3"));
        assert!(line(&mut s, "health").contains("flush_failures=3"));
        let prom = s.build_report().render_prometheus();
        assert!(
            prom.contains("pbppm_serve_metrics_flush_failures 3"),
            "{prom}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
