//! The sharded serving core: N single-writer shards, epoch-published
//! read snapshots, batched drain-then-dispatch request handling.
//!
//! ## Shape
//!
//! Clients are assigned to shards by [`shard_of`] (Fx hash of the client
//! name — deterministic across runs and thread counts). Each shard owns:
//!
//! * one **writer** — a [`ServeSession`] that trains, rebuilds,
//!   checkpoints and flight-records exactly as the single-threaded server
//!   did (its snapshot dir is `DIR/shard-NNN`, or `DIR` itself when the
//!   server runs with one shard, keeping single-shard layouts
//!   byte-compatible with the old server);
//! * one [`EpochPublisher`] holding the shard's immutable
//!   [`PublishedModel`] — a clone of the last rebuilt model plus the
//!   interner as of that rebuild. After every rebuild the writer runs the
//!   structural audit and publishes only a clean model; a dirty rebuild
//!   keeps the previous epoch serving and bumps `publish_rejected`.
//!
//! `predict` is answered by a **reader** against the published snapshot —
//! never against the writer's live state — so any number of reader
//! threads can serve while a rebuild is in flight. The epoch semantics
//! are deliberate: predictions reflect the model *as of the last clean
//! publish*; URLs trained since then become visible at the next rebuild.
//!
//! ## Batching and determinism
//!
//! [`ShardedServer::handle_batch`] takes a drained batch of protocol
//! lines. `train`/`predict` lines carry an optional `@client` token
//! (`train @c7 /a,/b`) used for routing (absent ⇒ client `""`); they are
//! grouped per shard preserving arrival order and dispatched across
//! worker threads (each busy shard is handled by exactly one worker, in
//! order). Any other command is a **barrier**: pending routed traffic is
//! flushed first, then the control command runs against the consistent
//! whole. Responses are re-assembled in arrival order, so for a fixed
//! client-to-shard assignment the output is byte-identical regardless of
//! worker-thread count — and an N-shard server answers exactly like N
//! independent single-shard servers, each fed its shard's clients.

use crate::session::{write_predictions, Flow, ServeOptions, ServeSession};
use pbppm_core::{
    shard_of, EpochPublisher, EpochReader, Interner, ModelRef, PbConfig, PbPpm, PredictUsage,
    PredictionQuality, Predictor, UrlId,
};
use pbppm_obs::{CommandKind, Registry, RunReport};
use std::io::Write;
use std::time::Instant;

/// One epoch's immutable read snapshot: the model and the interner as of
/// the publishing rebuild, shared by every reader via `Arc`.
pub struct PublishedModel {
    /// The writer's rebuild count when this snapshot was published.
    pub rebuilds: u64,
    /// Interner frozen at publish time; parses incoming predict contexts.
    pub urls: Interner,
    /// The finalized model (`None` until the first rebuild publishes).
    pub model: Option<PbPpm>,
}

/// Tunables for the sharded server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedOptions {
    /// Model shards (clients are hash-partitioned across them). `0` is
    /// clamped to 1; 1 keeps the single-shard directory layout.
    pub shards: usize,
    /// Dispatch worker threads (0 = available parallelism, capped at the
    /// number of busy shards). Thread count never changes responses.
    pub threads: usize,
    /// Per-shard writer options.
    pub serve: ServeOptions,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        Self {
            shards: 1,
            threads: 0,
            serve: ServeOptions::default(),
        }
    }
}

/// One shard: the writer session plus the publication pair.
struct Shard {
    session: ServeSession,
    publisher: EpochPublisher<PublishedModel>,
    /// The dispatch path's own reader handle.
    reader: EpochReader<PublishedModel>,
    /// Rebuild count at the last (attempted or successful) publish.
    published_rebuilds: u64,
    /// Rebuilds whose audit failed; the previous epoch kept serving.
    publish_rejected: u64,
    /// Reused reader-path staging buffers (one pair per shard).
    scratch_buf: Vec<u8>,
    scratch_top: Vec<(String, f64)>,
}

/// A routed request waiting for dispatch.
struct PendingReq {
    idx: usize,
    shard: usize,
    kind: CommandKind,
    /// The protocol line with the `@client` routing token stripped.
    line: String,
}

/// The sharded server: see the module docs for the architecture.
pub struct ShardedServer {
    shards: Vec<Shard>,
    threads: usize,
}

impl ShardedServer {
    /// Opens (or warm-recovers) every shard under `dir`. With one shard
    /// the snapshot dir is `dir` itself — the exact layout the
    /// single-threaded server used — so existing serving dirs keep
    /// working; with N > 1 each shard checkpoints into `dir/shard-NNN`.
    /// Changing the shard count re-partitions clients, so it only
    /// warm-recovers state checkpointed under the same count.
    pub fn open(
        dir: &str,
        cfg: PbConfig,
        opts: ShardedOptions,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let shard_count = opts.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        for k in 0..shard_count {
            let shard_dir = if shard_count == 1 {
                dir.to_owned()
            } else {
                format!("{dir}/shard-{k:03}")
            };
            let (session, _) = ServeSession::open(&shard_dir, cfg, opts.serve)?;
            // Publish the recovered state immediately (it already passed
            // the recovery audit in `ServeSession::open`), so readers can
            // answer from the first request on.
            let initial = PublishedModel {
                rebuilds: session.online().rebuild_count(),
                urls: session.urls().clone(),
                model: session.online().current().cloned(),
            };
            let published_rebuilds = initial.rebuilds;
            let publisher = EpochPublisher::new(initial);
            let reader = publisher.reader();
            shards.push(Shard {
                session,
                publisher,
                reader,
                published_rebuilds,
                publish_rejected: 0,
                scratch_buf: Vec::new(),
                scratch_top: Vec::new(),
            });
        }
        Ok(Self {
            shards,
            threads: opts.threads,
        })
    }

    /// Number of model shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a client name routes to.
    pub fn shard_of_client(&self, client: &str) -> usize {
        shard_of(client, self.shards.len())
    }

    /// One shard's writer session (tests, stats aggregation, greeting).
    pub fn shard_session(&self, k: usize) -> &ServeSession {
        &self.shards[k].session
    }

    /// A fresh reader handle onto shard `k`'s published snapshot, safe to
    /// move to any thread (concurrency tests, side-car readers).
    pub fn shard_reader(&self, k: usize) -> EpochReader<PublishedModel> {
        self.shards[k].publisher.reader()
    }

    /// Shard `k`'s publication epoch.
    pub fn shard_epoch(&self, k: usize) -> u64 {
        self.shards[k].publisher.epoch()
    }

    /// Rebuilds rejected by the publish audit, across shards.
    pub fn publish_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.publish_rejected).sum()
    }

    /// Recovery summary for the greeting: the shared label when every
    /// shard recovered the same way, `"mixed"` otherwise.
    pub fn recovery_label(&self) -> &'static str {
        let first = self.shards[0].session.recovery().label();
        if self
            .shards
            .iter()
            .all(|s| s.session.recovery().label() == first)
        {
            first
        } else {
            "mixed"
        }
    }

    /// Total sliding-window sessions across shards.
    pub fn total_window(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.session.online().window_len())
            .sum()
    }

    /// Total rebuilds across shards.
    pub fn total_rebuilds(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.session.online().rebuild_count())
            .sum()
    }

    /// Handles one drained batch of protocol lines. `responses` is
    /// cleared and refilled with exactly one response string per handled
    /// line, in arrival order. On `quit` the batch is truncated: lines
    /// after the `quit` get no response and [`Flow::Quit`] is returned.
    pub fn handle_batch(
        &mut self,
        lines: &[String],
        responses: &mut Vec<String>,
    ) -> std::io::Result<Flow> {
        responses.clear();
        let mut pending: Vec<PendingReq> = Vec::new();
        let mut results: Vec<(usize, String)> = Vec::with_capacity(lines.len());
        for (idx, raw) in lines.iter().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                results.push((idx, String::new()));
                continue;
            }
            let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
            let kind = CommandKind::parse(cmd);
            match kind {
                CommandKind::Train | CommandKind::Predict => {
                    let (client, payload) = split_client(rest);
                    pending.push(PendingReq {
                        idx,
                        shard: shard_of(client, self.shards.len()),
                        kind,
                        line: format!("{cmd} {payload}"),
                    });
                }
                _ => {
                    // Control barrier: flush routed traffic first so the
                    // command observes a consistent, fully-applied state.
                    self.run_pending(&mut pending, &mut results)?;
                    let (resp, flow) = self.control(kind, line)?;
                    results.push((idx, resp));
                    if flow == Flow::Quit {
                        results.sort_unstable_by_key(|(i, _)| *i);
                        responses.extend(results.into_iter().map(|(_, r)| r));
                        return Ok(Flow::Quit);
                    }
                }
            }
        }
        self.run_pending(&mut pending, &mut results)?;
        results.sort_unstable_by_key(|(i, _)| *i);
        responses.extend(results.into_iter().map(|(_, r)| r));
        Ok(Flow::Continue)
    }

    /// Dispatches the accumulated routed requests: grouped per shard in
    /// arrival order, each busy shard handled by exactly one worker.
    fn run_pending(
        &mut self,
        pending: &mut Vec<PendingReq>,
        results: &mut Vec<(usize, String)>,
    ) -> std::io::Result<()> {
        if pending.is_empty() {
            return Ok(());
        }
        let mut groups: Vec<Vec<PendingReq>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for req in pending.drain(..) {
            groups[req.shard].push(req);
        }
        let busy = groups.iter().filter(|g| !g.is_empty()).count();
        let threads = self.resolve_threads(busy);
        if threads <= 1 {
            for (shard, group) in self.shards.iter_mut().zip(groups) {
                for req in group {
                    results.push(handle_shard_request(shard, req)?);
                }
            }
            return Ok(());
        }
        // Round-robin busy shards over the workers; a shard never splits
        // across workers, so per-shard order (and thus every response) is
        // independent of the thread count.
        let mut per_worker: Vec<Vec<(&mut Shard, Vec<PendingReq>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (k, (shard, group)) in self.shards.iter_mut().zip(groups).enumerate() {
            if group.is_empty() {
                continue;
            }
            per_worker[k % threads].push((shard, group));
        }
        let worker_results: Vec<std::io::Result<Vec<(usize, String)>>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = per_worker
                    .into_iter()
                    .map(|work| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for (shard, group) in work {
                                for req in group {
                                    out.push(handle_shard_request(shard, req)?);
                                }
                            }
                            Ok(out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(std::io::Error::other("shard dispatch worker panicked"))
                        })
                    })
                    .collect()
            });
        for r in worker_results {
            results.extend(r?);
        }
        Ok(())
    }

    fn resolve_threads(&self, busy_shards: usize) -> usize {
        let configured = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.threads
        };
        configured.min(busy_shards).max(1)
    }

    /// Runs a control (barrier) command against the whole server.
    fn control(&mut self, kind: CommandKind, line: &str) -> std::io::Result<(String, Flow)> {
        if self.shards.len() == 1 {
            // Single shard: delegate for exact protocol compatibility with
            // the historical single-threaded server (same responses, same
            // flight records).
            let mut buf = Vec::new();
            let flow = self.shards[0].session.handle_line(line, &mut buf)?;
            return Ok((String::from_utf8_lossy(&buf).into_owned(), flow));
        }
        let started = Instant::now();
        let rest = line.split_once(' ').map_or("", |(_, r)| r);
        let (resp, flow) = match kind {
            CommandKind::Stats => (self.aggregate_stats(), Flow::Continue),
            CommandKind::Health => (self.aggregate_health(), Flow::Continue),
            CommandKind::Checkpoint => (self.checkpoint_all("ok checkpointed"), Flow::Continue),
            CommandKind::Quit => (self.checkpoint_all("ok bye; checkpointed"), Flow::Quit),
            CommandKind::Metrics => (self.aggregate_metrics(rest), Flow::Continue),
            CommandKind::Trace => (self.aggregate_trace(rest), Flow::Continue),
            _ => {
                // Unknown commands: let shard 0's writer answer (and
                // flight-record) them exactly like the legacy server.
                let mut buf = Vec::new();
                let flow = self.shards[0].session.handle_line(line, &mut buf)?;
                return Ok((String::from_utf8_lossy(&buf).into_owned(), flow));
            }
        };
        // Aggregate commands are accounted on shard 0 — one flight record
        // per request, deterministic home.
        let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ok = resp.starts_with("ok");
        self.shards[0]
            .session
            .finish_request(kind, latency_ns, ok, None, &[]);
        Ok((resp, flow))
    }

    fn aggregate_stats(&self) -> String {
        let mut urls = 0usize;
        let mut window = 0usize;
        let mut rebuilds = 0u64;
        let mut nodes = 0usize;
        let mut bytes = 0usize;
        let mut checkpoints = 0u64;
        let mut flush_failures = 0u64;
        for shard in &self.shards {
            let s = shard.session.online().stats();
            urls += shard.session.urls().len();
            window += shard.session.online().window_len();
            rebuilds += shard.session.online().rebuild_count();
            nodes += s.nodes;
            bytes += s.total_bytes();
            checkpoints += shard.session.checkpoints_written();
            flush_failures += shard.session.flush_failures();
        }
        format!(
            "ok shards {}, urls {}, window {}, rebuilds {}, nodes {}, bytes {}, \
             recovered {}, checkpoints {}, flush_failures {}, publish_rejected {}\n",
            self.shards.len(),
            urls,
            window,
            rebuilds,
            nodes,
            bytes,
            self.recovery_label(),
            checkpoints,
            flush_failures,
            self.publish_rejected(),
        )
    }

    fn aggregate_health(&self) -> String {
        let drifted = self
            .shards
            .iter()
            .filter(|s| s.session.live().drifted())
            .count();
        let checkpoints: u64 = self
            .shards
            .iter()
            .map(|s| s.session.checkpoints_written())
            .sum();
        let flush_failures: u64 = self.shards.iter().map(|s| s.session.flush_failures()).sum();
        let epochs: u64 = self.shards.iter().map(|s| s.publisher.epoch()).sum();
        format!(
            "ok {} shards={} drifted={} rebuilds={} checkpoints={} \
             published_epochs={} publish_rejected={} flush_failures={}\n",
            if drifted == 0 { "healthy" } else { "degraded" },
            self.shards.len(),
            drifted,
            self.total_rebuilds(),
            checkpoints,
            epochs,
            self.publish_rejected(),
            flush_failures,
        )
    }

    fn checkpoint_all(&mut self, prefix: &str) -> String {
        let mut total = 0u64;
        for shard in &mut self.shards {
            match shard.session.checkpoint() {
                Ok(bytes) => total += bytes,
                Err(e) => return format!("err checkpoint failed: {e}\n"),
            }
        }
        format!("{prefix} {total} bytes ({} shards)\n", self.shards.len())
    }

    fn aggregate_trace(&self, rest: &str) -> String {
        let n = if rest.trim().is_empty() {
            10
        } else {
            match rest.trim().parse::<usize>() {
                Ok(n) => n,
                Err(_) => return format!("err trace expects a count, got {:?}\n", rest.trim()),
            }
        };
        let mut rows = Vec::new();
        for (k, shard) in self.shards.iter().enumerate() {
            for r in shard.session.recorder().last(n) {
                rows.push(format!("s{k} {}", r.render()));
            }
        }
        let mut out = format!("ok {}\n", rows.len());
        for row in rows {
            out.push_str(&row);
            out.push('\n');
        }
        out
    }

    fn aggregate_metrics(&self, rest: &str) -> String {
        let rendered = match rest.trim() {
            "--prom" => self.build_report().render_prometheus(),
            "" => self.build_report().render_text(),
            _ => return "err metrics takes no argument except --prom\n".to_owned(),
        };
        let lines: Vec<&str> = rendered.lines().collect();
        let mut out = format!("ok {}\n", lines.len());
        for l in lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// The merged serving report: counters and histograms are absorbed
    /// additively shard by shard (in shard order — deterministic);
    /// capacity gauges are re-set to cross-shard sums afterwards, and the
    /// live window gauges are recomputed from the summed window counters.
    pub fn build_report(&self) -> RunReport {
        let reg = Registry::new();
        for shard in &self.shards {
            shard.session.fill_report(&reg);
            reg.counter("serve.publish_rejected", "")
                .add(shard.publish_rejected);
            reg.counter("serve.published_epochs", "")
                .add(shard.publisher.epoch());
        }
        // `fill_report` sets gauges per shard (last writer wins); replace
        // them with whole-server values.
        reg.gauge("serve.shards", "").set(self.shards.len() as u64);
        reg.gauge("serve.window_sessions", "")
            .set(self.total_window() as u64);
        reg.gauge("serve.recovered_generation", "").set(
            self.shards
                .iter()
                .map(|s| s.session.recovery().gauge())
                .max()
                .unwrap_or(0),
        );
        let mut nodes = 0usize;
        let mut bytes = 0usize;
        let mut window = PredictionQuality::default();
        let mut drifted = false;
        for shard in &self.shards {
            let s = shard.session.online().stats();
            nodes += s.nodes;
            bytes += s.total_bytes();
            let w = shard.session.live().window_quality();
            window.contexts += w.contexts;
            window.covered += w.covered;
            window.hits_at_1 += w.hits_at_1;
            window.hits_at_k += w.hits_at_k;
            window.useful_at_k += w.useful_at_k;
            window.emitted += w.emitted;
            drifted |= shard.session.live().drifted();
        }
        reg.gauge("model.nodes", "").set(nodes as u64);
        reg.gauge("model.bytes", "").set(bytes as u64);
        reg.gauge("live.window.contexts", "").set(window.contexts);
        reg.gauge("live.window.precision_at_1_ppm", "")
            .set(crate::session::ppm(window.precision_at_1()));
        reg.gauge("live.window.precision_at_k_ppm", "")
            .set(crate::session::ppm(window.precision_at_k()));
        reg.gauge("live.window.coverage_ppm", "")
            .set(crate::session::ppm(window.coverage()));
        reg.gauge("live.window.traffic_increment_milli", "")
            .set(crate::session::milli(pbppm_core::traffic_increment(
                &window,
            )));
        reg.gauge("live.drift", "").set(u64::from(drifted));
        RunReport {
            schema_version: pbppm_obs::report::SCHEMA_VERSION,
            command: "serve".to_owned(),
            telemetry_enabled: pbppm_obs::ENABLED,
            spans: Vec::new(),
            metrics: reg.snapshot(),
        }
    }
}

/// Splits the optional `@client` routing token off a train/predict
/// payload: `"@c7 /a,/b"` → `("c7", "/a,/b")`, `"/a,/b"` → `("", "/a,/b")`.
fn split_client(rest: &str) -> (&str, &str) {
    match rest.strip_prefix('@') {
        Some(tagged) => match tagged.split_once(char::is_whitespace) {
            Some((client, payload)) => (client, payload.trim_start()),
            None => (tagged, ""),
        },
        None => ("", rest),
    }
}

/// Handles one routed request on its shard: `train` goes to the writer
/// session (then attempts publication), `predict` to a reader against the
/// published epoch.
fn handle_shard_request(shard: &mut Shard, req: PendingReq) -> std::io::Result<(usize, String)> {
    let mut buf = std::mem::take(&mut shard.scratch_buf);
    buf.clear();
    let resp = match req.kind {
        CommandKind::Predict => {
            let started = Instant::now();
            let mut top = std::mem::take(&mut shard.scratch_top);
            top.clear();
            let rest = req.line.split_once(' ').map_or("", |(_, r)| r);
            // Clone the Arc out of the reader so the borrow on the shard
            // ends before the session records the request.
            let published = std::sync::Arc::clone(shard.reader.current());
            let outcome =
                predict_published(&published, shard.session.top(), rest, &mut buf, &mut top)?;
            if let Err(id) = outcome {
                let total = shard.session.note_interner_desync();
                writeln!(
                    buf,
                    "err predict: model emitted unresolvable url id {id} \
                     (interner/model desync; {total} total)"
                )?;
            }
            let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let ok = buf.starts_with(b"ok");
            let strategy = published
                .model
                .as_ref()
                .and_then(Predictor::match_strategy)
                .map(|s| s.label());
            shard
                .session
                .finish_request(CommandKind::Predict, latency_ns, ok, strategy, &top);
            shard.scratch_top = top;
            String::from_utf8_lossy(&buf).into_owned()
        }
        _ => {
            // `train` (and anything else routed here): the writer handles
            // and records it; a completed rebuild then tries to publish.
            shard.session.handle_line(&req.line, &mut buf)?;
            if req.kind == CommandKind::Train {
                try_publish(shard);
            }
            String::from_utf8_lossy(&buf).into_owned()
        }
    };
    shard.scratch_buf = buf;
    Ok((req.idx, resp))
}

/// Publishes the writer's freshly rebuilt model — if, and only if, it
/// passes the structural audit. A failing rebuild keeps the previous
/// epoch serving (readers never see it) and is counted.
fn try_publish(shard: &mut Shard) {
    let rebuilds = shard.session.online().rebuild_count();
    if rebuilds == shard.published_rebuilds {
        return;
    }
    // Either way, the rebuild is consumed: a rejected one is not retried
    // until the next rebuild produces a different model.
    shard.published_rebuilds = rebuilds;
    let report = pbppm_core::verify_model_with_urls(
        &ModelRef::OnlinePb(shard.session.online()),
        Some(shard.session.urls().len()),
    );
    if !report.is_clean() {
        shard.publish_rejected += 1;
        return;
    }
    shard.publisher.publish(PublishedModel {
        rebuilds,
        urls: shard.session.urls().clone(),
        model: shard.session.online().current().cloned(),
    });
}

/// The reader-path predict: parses the context against the *published*
/// interner, ranks against the *published* model (read-only — the usage
/// diagnostics are writer-side state and are not collected here), and
/// renders byte-identically to the writer path via [`write_predictions`].
pub fn predict_published(
    published: &PublishedModel,
    top_n: usize,
    rest: &str,
    buf: &mut Vec<u8>,
    top: &mut Vec<(String, f64)>,
) -> std::io::Result<Result<(), UrlId>> {
    let context: Vec<UrlId> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .filter_map(|s| published.urls.get(s))
        .collect();
    let mut preds = Vec::new();
    if let Some(model) = &published.model {
        let mut usage = PredictUsage::default();
        model.predict_ro(&context, &mut preds, &mut usage);
    }
    preds.truncate(top_n);
    write_predictions(&published.urls, &preds, buf, top)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("pbppm-sharded-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.display().to_string()
    }

    fn opts(shards: usize, threads: usize) -> ShardedOptions {
        ShardedOptions {
            shards,
            threads,
            serve: ServeOptions {
                window: 100,
                rebuild_every: 1,
                checkpoint_every: 1,
                top: 10,
                ..ServeOptions::default()
            },
        }
    }

    fn batch(server: &mut ShardedServer, lines: &[&str]) -> Vec<String> {
        let lines: Vec<String> = lines.iter().map(|s| (*s).to_owned()).collect();
        let mut responses = Vec::new();
        server.handle_batch(&lines, &mut responses).unwrap();
        responses
    }

    #[test]
    fn split_client_token() {
        assert_eq!(split_client("@c7 /a,/b"), ("c7", "/a,/b"));
        assert_eq!(split_client("/a,/b"), ("", "/a,/b"));
        assert_eq!(split_client("@lonely"), ("lonely", ""));
        assert_eq!(split_client(""), ("", ""));
    }

    #[test]
    fn single_shard_delegates_the_legacy_protocol() {
        let dir = temp_dir("legacy");
        let mut server = ShardedServer::open(&dir, PbConfig::default(), opts(1, 1)).unwrap();
        let rs = batch(
            &mut server,
            &["train /a,/b,/a,/b", "predict /a", "stats", "bogus", "quit"],
        );
        assert!(rs[0].starts_with("ok trained 4"), "{}", rs[0]);
        assert!(rs[1].starts_with("ok 1"), "{}", rs[1]);
        assert!(rs[1].contains("/b"), "{}", rs[1]);
        assert!(rs[2].starts_with("ok urls 2"), "{}", rs[2]);
        assert!(rs[3].starts_with("err unknown command"), "{}", rs[3]);
        assert!(rs[4].starts_with("ok bye"), "{}", rs[4]);
        // Single shard keeps the flat directory layout.
        assert!(std::path::Path::new(&dir).join("current.pbss").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn predictions_come_from_the_published_epoch() {
        let dir = temp_dir("epoch");
        // rebuild_every=2: the first train does NOT rebuild, so nothing
        // beyond the (empty) initial epoch is published.
        let mut server = ShardedServer::open(
            &dir,
            PbConfig::default(),
            ShardedOptions {
                shards: 2,
                threads: 1,
                serve: ServeOptions {
                    window: 100,
                    rebuild_every: 2,
                    checkpoint_every: 1_000_000,
                    top: 10,
                    ..ServeOptions::default()
                },
            },
        )
        .unwrap();
        let client = "@c0";
        let rs = batch(
            &mut server,
            &[
                &format!("train {client} /a,/b"),
                &format!("predict {client} /a"),
            ],
        );
        assert!(rs[0].starts_with("ok trained"), "{}", rs[0]);
        // No rebuild yet -> initial (empty) epoch still serving.
        assert!(rs[1].starts_with("ok 0"), "pre-publish: {}", rs[1]);
        let rs = batch(
            &mut server,
            &[
                &format!("train {client} /a,/b"),
                &format!("predict {client} /a"),
            ],
        );
        // Second train rebuilt and published; the reader now sees it.
        assert!(rs[1].starts_with("ok 1"), "post-publish: {}", rs[1]);
        assert!(rs[1].contains("/b"), "{}", rs[1]);
        let k = server.shard_of_client("c0");
        assert_eq!(server.shard_epoch(k), 1, "one publication on c0's shard");
        assert_eq!(server.publish_rejected(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn aggregate_commands_cover_all_shards() {
        let dir = temp_dir("aggregate");
        let mut server = ShardedServer::open(&dir, PbConfig::default(), opts(4, 2)).unwrap();
        let mut lines: Vec<String> = Vec::new();
        for c in 0..16 {
            lines.push(format!("train @c{c} /a,/b,/c"));
        }
        lines.push("stats".to_owned());
        lines.push("health".to_owned());
        lines.push("trace 3".to_owned());
        lines.push("metrics --prom".to_owned());
        let mut rs = Vec::new();
        server.handle_batch(&lines, &mut rs).unwrap();
        let stats = &rs[16];
        assert!(stats.starts_with("ok shards 4"), "{stats}");
        assert!(stats.contains("window 16"), "all trains landed: {stats}");
        assert!(stats.contains("publish_rejected 0"), "{stats}");
        assert!(rs[17].starts_with("ok healthy shards=4"), "{}", rs[17]);
        assert!(rs[18].starts_with("ok "), "{}", rs[18]);
        assert!(rs[18].contains("s0 #"), "per-shard trace rows: {}", rs[18]);
        let prom = &rs[19];
        assert!(
            prom.contains("pbppm_serve_requests{cmd=\"train\"} 16"),
            "merged train counter: {prom}"
        );
        assert!(prom.contains("pbppm_serve_shards 4"), "{prom}");
        // Sharded layout on disk.
        assert!(std::path::Path::new(&dir).join("shard-000").exists());
        assert!(std::path::Path::new(&dir).join("shard-003").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quit_truncates_the_batch_and_checkpoints_every_shard() {
        let dir = temp_dir("quit");
        let mut server = ShardedServer::open(&dir, PbConfig::default(), opts(2, 1)).unwrap();
        let lines: Vec<String> = vec![
            "train @a /a,/b".to_owned(),
            "train @b /x,/y".to_owned(),
            "quit".to_owned(),
            "train @c /p,/q".to_owned(), // never handled
        ];
        let mut rs = Vec::new();
        let flow = server.handle_batch(&lines, &mut rs).unwrap();
        assert_eq!(flow, Flow::Quit);
        assert_eq!(rs.len(), 3, "lines after quit get no response");
        assert!(rs[2].starts_with("ok bye; checkpointed"), "{}", rs[2]);
        assert!(rs[2].contains("(2 shards)"), "{}", rs[2]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
