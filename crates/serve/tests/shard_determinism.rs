//! ISSUE 8 acceptance tests for the sharded server's determinism
//! contract:
//!
//! 1. **Shard isolation** — an N-shard server answers a fixed trace
//!    byte-identically to N independent single-shard servers, each fed
//!    exactly the clients the N-shard router assigns to that shard.
//! 2. **Thread-count invariance** — the same server, same shard count,
//!    dispatched with 1 vs many worker threads produces byte-identical
//!    responses (routing and per-shard order never depend on threads).
//! 3. **Warm restart** — the sharded server recovers every shard's
//!    checkpoint and keeps answering identically (the single-shard
//!    warm-restart smoke, extended to N shards).

use pbppm_core::{shard_of, PbConfig};
use pbppm_serve::{ServeOptions, ShardedOptions, ShardedServer};

const SHARDS: usize = 4;

fn temp_dir(tag: &str) -> String {
    let dir =
        std::env::temp_dir().join(format!("pbppm-shard-det-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.display().to_string()
}

fn opts(shards: usize, threads: usize) -> ShardedOptions {
    ShardedOptions {
        shards,
        threads,
        serve: ServeOptions {
            window: 1000,
            rebuild_every: 3,
            checkpoint_every: 1_000_000,
            top: 5,
            ..ServeOptions::default()
        },
    }
}

/// A deterministic mixed workload: 24 clients, interleaved train and
/// predict traffic with overlapping URL spaces so predictions are
/// non-trivial on every shard.
fn workload() -> Vec<String> {
    let mut lines = Vec::new();
    for round in 0..6 {
        for c in 0..24 {
            lines.push(format!(
                "train @c{c} /index.html,/cat{}.html,/shared.html,/leaf{}.html",
                (c + round) % 3,
                c % 2
            ));
            if round >= 2 {
                lines.push(format!(
                    "predict @c{c} /index.html,/cat{}.html",
                    (c + round) % 3
                ));
                lines.push(format!("predict @c{c} /shared.html"));
            }
        }
    }
    lines
}

fn run(server: &mut ShardedServer, lines: &[String]) -> Vec<String> {
    // Feed in small batches so routed traffic and barriers interleave the
    // way the real front-end drains stdin.
    let mut all = Vec::new();
    let mut responses = Vec::new();
    for chunk in lines.chunks(17) {
        server.handle_batch(chunk, &mut responses).unwrap();
        all.append(&mut responses);
    }
    all
}

#[test]
fn n_shards_equal_n_independent_single_shard_servers() {
    let lines = workload();

    let dir_n = temp_dir("iso-n");
    let mut sharded = ShardedServer::open(&dir_n, PbConfig::default(), opts(SHARDS, 1)).unwrap();
    let sharded_responses = run(&mut sharded, &lines);

    // N independent 1-shard servers, each fed only its clients — but the
    // routing token must hash as the N-shard router does, so predictions
    // compare against the same per-shard training history.
    let mut solo_responses: Vec<Option<String>> = vec![None; lines.len()];
    for k in 0..SHARDS {
        let dir = temp_dir(&format!("iso-solo{k}"));
        let mut solo = ShardedServer::open(&dir, PbConfig::default(), opts(1, 1)).unwrap();
        let mut kept_idx = Vec::new();
        let mut kept_lines = Vec::new();
        for (i, line) in lines.iter().enumerate() {
            let client = line
                .split_whitespace()
                .nth(1)
                .and_then(|t| t.strip_prefix('@'))
                .unwrap();
            if shard_of(client, SHARDS) == k {
                kept_idx.push(i);
                kept_lines.push(line.clone());
            }
        }
        let rs = run(&mut solo, &kept_lines);
        assert_eq!(rs.len(), kept_idx.len());
        for (i, r) in kept_idx.into_iter().zip(rs) {
            solo_responses[i] = Some(r);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    let mut predicts = 0;
    let mut nonempty = 0;
    for (i, (got, want)) in sharded_responses.iter().zip(&solo_responses).enumerate() {
        let want = want.as_ref().expect("every line routed to some shard");
        assert_eq!(got, want, "line {i} ({}) diverged", lines[i]);
        if lines[i].starts_with("predict") {
            predicts += 1;
            if !got.starts_with("ok 0") {
                nonempty += 1;
            }
        }
    }
    assert!(predicts > 100, "the workload actually predicts: {predicts}");
    assert!(nonempty > 0, "some predictions are non-empty");
    let _ = std::fs::remove_dir_all(&dir_n);
}

#[test]
fn responses_are_thread_count_invariant() {
    let lines = workload();
    let dir_serial = temp_dir("threads-1");
    let dir_parallel = temp_dir("threads-8");
    let mut serial =
        ShardedServer::open(&dir_serial, PbConfig::default(), opts(SHARDS, 1)).unwrap();
    let mut parallel =
        ShardedServer::open(&dir_parallel, PbConfig::default(), opts(SHARDS, 8)).unwrap();
    assert_eq!(run(&mut serial, &lines), run(&mut parallel, &lines));
    let _ = std::fs::remove_dir_all(&dir_serial);
    let _ = std::fs::remove_dir_all(&dir_parallel);
}

#[test]
fn sharded_warm_restart_restores_every_shard() {
    let dir = temp_dir("warm");
    let lines = workload();
    let probe: Vec<String> = (0..24)
        .map(|c| format!("predict @c{c} /index.html"))
        .collect();

    let mut server = ShardedServer::open(&dir, PbConfig::default(), opts(SHARDS, 2)).unwrap();
    run(&mut server, &lines);
    let mut responses = Vec::new();
    server
        .handle_batch(&["quit".to_owned()], &mut responses)
        .unwrap();
    assert!(
        responses[0].starts_with("ok bye; checkpointed"),
        "{responses:?}"
    );
    let before = run(&mut server, &probe);
    drop(server);

    let mut recovered = ShardedServer::open(&dir, PbConfig::default(), opts(SHARDS, 2)).unwrap();
    assert_eq!(recovered.recovery_label(), "current");
    assert_eq!(
        run(&mut recovered, &probe),
        before,
        "recovered shards answer exactly like the pre-restart server"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
