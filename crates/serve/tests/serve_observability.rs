//! ISSUE 7 acceptance test: replay a trace through the serve loop and
//! assert the **live** sliding-window precision agrees with the
//! **offline** eval engine on the same clicks.
//!
//! Setup that makes exact agreement possible:
//!
//! * `rebuild_every` is sized so the model rebuilds exactly once, at the
//!   end of the warm-up phase — during the whole evaluation phase both
//!   paths query the *same* frozen model;
//! * the live eval window is sized to exactly the evaluation phase's
//!   context count, so every warm-up context (scored against an evolving
//!   or empty model) has been evicted by the end;
//! * the offline run replays the identical evaluation sessions through
//!   `pbppm_core::eval::evaluate` with the same k / threshold / horizon /
//!   context-cap parameters the serve loop uses.
//!
//! Both paths then execute the same `predict_ro` ranking on the same
//! model — the counters must agree *exactly*, not approximately.

use pbppm_core::eval::{evaluate, EvalConfig};
use pbppm_core::{Interner, OnlinePbPpm, PbConfig, Predictor, UrlId};
use pbppm_serve::{ServeOptions, ServeSession};

const WARMUP_SESSIONS: usize = 30;
const EVAL_SESSIONS: usize = 20;
const TOP: usize = 5;

fn temp_dir(tag: &str) -> String {
    let dir =
        std::env::temp_dir().join(format!("pbppm-serve-obs-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir.display().to_string()
}

/// Warm-up traffic: a skewed, deterministic mix over a handful of URLs.
fn warmup_session(i: usize) -> Vec<String> {
    vec![
        "/index.html".to_owned(),
        format!("/cat{}.html", i % 3),
        "/shared.html".to_owned(),
        format!("/leaf{}.html", i % 2),
    ]
}

/// Evaluation traffic: overlaps the warm-up distribution but not
/// identically — hits, misses and uncovered contexts all occur.
fn eval_session(i: usize) -> Vec<String> {
    vec![
        "/index.html".to_owned(),
        format!("/cat{}.html", (i + 1) % 4), // /cat3 never seen in warm-up
        "/shared.html".to_owned(),
        format!("/leaf{}.html", i % 3), // /leaf2 never seen in warm-up
    ]
}

#[test]
fn live_window_precision_agrees_with_offline_eval() {
    let eval_contexts = EVAL_SESSIONS * (eval_session(0).len() - 1);

    // --- The serve loop, driven through the real line protocol. ---
    let dir = temp_dir("agreement");
    let opts = ServeOptions {
        window: 10_000,
        rebuild_every: WARMUP_SESSIONS, // exactly one rebuild, after warm-up
        checkpoint_every: 1_000_000,
        top: TOP,
        eval_window: eval_contexts,
        ..ServeOptions::default()
    };
    let (mut serve, _) = ServeSession::open(&dir, PbConfig::default(), opts).unwrap();
    let mut buf = Vec::new();
    for i in 0..WARMUP_SESSIONS {
        buf.clear();
        serve
            .handle_line(&format!("train {}", warmup_session(i).join(",")), &mut buf)
            .unwrap();
        assert!(buf.starts_with(b"ok"), "warm-up train failed");
    }
    assert_eq!(
        serve.online().rebuild_count(),
        1,
        "the model must rebuild exactly once, at the end of warm-up"
    );
    for i in 0..EVAL_SESSIONS {
        buf.clear();
        serve
            .handle_line(&format!("train {}", eval_session(i).join(",")), &mut buf)
            .unwrap();
        assert!(buf.starts_with(b"ok"), "eval train failed");
    }
    assert_eq!(
        serve.online().rebuild_count(),
        1,
        "no rebuild during the evaluation phase — the model stayed fixed"
    );
    assert_eq!(serve.live().window_len(), eval_contexts, "window full");
    let live = serve.live().window_quality();

    // --- The offline engine on the same clicks against the same model. ---
    let mut urls = Interner::new();
    let mut offline = OnlinePbPpm::new(PbConfig::default(), 10_000, WARMUP_SESSIONS);
    for i in 0..WARMUP_SESSIONS {
        let session: Vec<UrlId> = warmup_session(i).iter().map(|u| urls.intern(u)).collect();
        offline.train_session(&session);
    }
    assert_eq!(offline.rebuild_count(), 1);
    let held_out: Vec<Vec<UrlId>> = (0..EVAL_SESSIONS)
        .map(|i| eval_session(i).iter().map(|u| urls.intern(u)).collect())
        .collect();
    let cfg = serve.live().config();
    assert_eq!(cfg.eval.k, TOP, "serve wires --top into the live eval's k");
    let offline_q = evaluate(
        &mut offline,
        &held_out,
        cfg.context_cap,
        &EvalConfig { ..cfg.eval },
    );

    assert_eq!(
        live, offline_q,
        "live sliding-window counters must equal the offline engine's \
         on the same clicks against the same model"
    );
    // Sanity: the fixture actually exercises hits, misses and gaps.
    assert!(offline_q.contexts == eval_contexts as u64);
    assert!(offline_q.hits_at_k > 0, "some predictions hit");
    assert!(
        offline_q.hits_at_k < offline_q.contexts,
        "some predictions miss"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The same replay, checked against the serve loop's own exposition: the
/// Prometheus rendering of `metrics` must carry the live counters.
#[test]
fn metrics_exposition_carries_live_counters() {
    let dir = temp_dir("exposition");
    let opts = ServeOptions {
        window: 1_000,
        rebuild_every: 5,
        checkpoint_every: 1_000_000,
        top: TOP,
        ..ServeOptions::default()
    };
    let (mut serve, _) = ServeSession::open(&dir, PbConfig::default(), opts).unwrap();
    let mut buf = Vec::new();
    for i in 0..10 {
        buf.clear();
        serve
            .handle_line(&format!("train {}", warmup_session(i).join(",")), &mut buf)
            .unwrap();
    }
    let lifetime = *serve.live().lifetime();
    let report = serve.build_report();
    let prom = report.render_prometheus();
    assert!(
        prom.contains(&format!("pbppm_live_contexts {}", lifetime.contexts)),
        "{prom}"
    );
    assert!(
        prom.contains(&format!("pbppm_live_hits_at_k {}", lifetime.hits_at_k)),
        "{prom}"
    );
    assert!(
        prom.contains("pbppm_serve_latency_ns_bucket{cmd=\"train\",le=\"+Inf\"} 10"),
        "{prom}"
    );
    let grade_total: u64 = (0..4)
        .filter_map(|g| {
            let needle = format!("pbppm_live_grade_contexts{{grade=\"G{g}\"}} ");
            prom.lines()
                .find(|l| l.starts_with(&needle))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse::<u64>().ok())
        })
        .sum();
    // Warm-up contexts before the first rebuild have no popularity table
    // (no model yet), so the graded total counts only post-rebuild ones.
    let pre_rebuild = 5 * (warmup_session(0).len() - 1) as u64;
    assert_eq!(grade_total, lifetime.contexts - pre_rebuild, "{prom}");
    let _ = std::fs::remove_dir_all(&dir);
}
