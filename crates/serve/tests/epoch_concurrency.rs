//! ISSUE 8 concurrency test for the epoch publish path: readers running
//! concurrently with a training/publishing writer must always observe a
//! *coherent* snapshot — the model and interner of exactly one epoch,
//! never a mix ("torn" state).
//!
//! Strategy: replay the same training sequence serially first and record,
//! for every epoch, the exact predict response that epoch must produce.
//! Then re-run the sequence with hammering reader threads: every reader
//! response must byte-match the recorded response *for the epoch the
//! reader saw*. A torn snapshot (new model + old interner, or vice versa)
//! either desyncs (unresolvable URL -> the test unwraps an Err) or
//! renders a response no single epoch ever produced.

use pbppm_core::PbConfig;
use pbppm_serve::sharded::predict_published;
use pbppm_serve::{ServeOptions, ShardedOptions, ShardedServer};
use std::sync::atomic::{AtomicBool, Ordering};

const ROUNDS: usize = 200;

fn temp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!(
        "pbppm-epoch-conc-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir.display().to_string()
}

fn opts() -> ShardedOptions {
    ShardedOptions {
        shards: 1,
        threads: 1,
        serve: ServeOptions {
            window: 1000,
            rebuild_every: 1, // every train rebuilds and publishes
            checkpoint_every: 1_000_000,
            top: 5,
            ..ServeOptions::default()
        },
    }
}

/// Round `k`'s training session: the target after `/a` keeps shifting so
/// consecutive epochs answer differently (and keep introducing URLs the
/// previous epoch's interner has never seen — the torn-state bait).
fn train_line(k: usize) -> String {
    format!("train /a,/t{k},/a,/t{k}")
}

fn predict_via_reader(
    reader: &mut pbppm_core::EpochReader<pbppm_serve::PublishedModel>,
) -> (u64, String) {
    let published = std::sync::Arc::clone(reader.current());
    let mut buf = Vec::new();
    let mut top = Vec::new();
    predict_published(&published, 5, "/a", &mut buf, &mut top)
        .unwrap()
        .unwrap_or_else(|id| panic!("torn snapshot: unresolvable url id {id}"));
    (published.rebuilds, String::from_utf8(buf).unwrap())
}

#[test]
fn concurrent_readers_always_see_a_coherent_epoch() {
    // Phase 1: serial replay records the ground truth per epoch.
    let dir = temp_dir("serial");
    let mut server = ShardedServer::open(&dir, PbConfig::default(), opts()).unwrap();
    let mut expected = Vec::with_capacity(ROUNDS + 1);
    {
        let mut reader = server.shard_reader(0);
        expected.push(predict_via_reader(&mut reader).1); // epoch 0: empty model
    }
    let mut responses = Vec::new();
    for k in 0..ROUNDS {
        server
            .handle_batch(&[train_line(k)], &mut responses)
            .unwrap();
        assert!(responses[0].starts_with("ok trained"), "{responses:?}");
        let mut reader = server.shard_reader(0);
        let (rebuilds, resp) = predict_via_reader(&mut reader);
        assert_eq!(rebuilds, (k + 1) as u64, "every round publishes");
        expected.push(resp);
    }
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    // Sanity: the fixture's epochs are actually distinguishable.
    assert_ne!(expected[1], expected[2]);

    // Phase 2: the same sequence with reader threads hammering the
    // publication handle while the writer trains.
    let dir = temp_dir("concurrent");
    let mut server = ShardedServer::open(&dir, PbConfig::default(), opts()).unwrap();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let mut reader = server.shard_reader(0);
            let done = &done;
            let expected = &expected;
            scope.spawn(move || {
                let mut seen_epochs = 0u64;
                let mut last = 0u64;
                while !done.load(Ordering::Acquire) || seen_epochs == 0 {
                    let (rebuilds, resp) = predict_via_reader(&mut reader);
                    assert_eq!(
                        resp,
                        expected[usize::try_from(rebuilds).unwrap()],
                        "epoch {rebuilds} answered with another epoch's response"
                    );
                    assert!(rebuilds >= last, "epochs went backwards");
                    if rebuilds != last {
                        seen_epochs += 1;
                        last = rebuilds;
                    }
                }
                assert!(seen_epochs > 0, "readers actually observed publishes");
            });
        }
        let mut responses = Vec::new();
        for k in 0..ROUNDS {
            server
                .handle_batch(&[train_line(k)], &mut responses)
                .unwrap();
        }
        done.store(true, Ordering::Release);
    });
    assert_eq!(server.shard_epoch(0), ROUNDS as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
