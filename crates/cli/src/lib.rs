//! # pbppm-cli — the command-line toolkit
//!
//! Library half of the `pbppm` binary: argument parsing ([`args`]), the
//! trained-model file format ([`bundle`]), and the command implementations
//! ([`commands`]). The binary in `main.rs` is a thin dispatcher, which
//! keeps every command testable as a plain function.

#![forbid(unsafe_code)]

pub mod args;
pub mod bundle;
pub mod commands;
pub mod serve;
