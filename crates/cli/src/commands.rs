//! The CLI commands: generate, analyze, train, predict, save,
//! load-predict, simulate.

use crate::args::Args;
use crate::bundle::{interner_urls, ModelSnapshot, TrainedBundle};
use pbppm_core::snapshot::{ModelImage, SnapshotFile};
use pbppm_core::{
    Interner, LrsPpm, Order1Markov, PbConfig, PbPpm, PopularityTable, Predictor, PruneConfig,
    StandardPpm,
};
use pbppm_sim::{run_experiment, ExperimentConfig, ModelSpec};
use pbppm_trace::clf::{format_clf_line, ClfRecord};
use pbppm_trace::combined::{
    detect_format, format_combined_line, trace_from_log, CombinedRecord, LogFormat, LogIngest,
};
use pbppm_trace::ingest::{trace_from_clf_path, IngestConfig};
use pbppm_trace::{
    classify_clients, sessionize, ClassifyConfig, ClientClass, Session, SessionStats,
    SessionizerConfig, Trace, WorkloadConfig,
};
use std::io::{BufRead, Write};
use std::path::Path;

type CmdResult = Result<(), Box<dyn std::error::Error>>;
/// What `train_model` hands back: the label, the serializable snapshot,
/// and the live model for immediate reporting.
type TrainedModel = (String, ModelSnapshot, Box<dyn Predictor>);
/// Same, for `train_image`: the binary-codec image instead of the JSON one.
type TrainedImage = (String, ModelImage, Box<dyn Predictor>);

/// Seconds of 1995-07-01 04:00 UTC — the epoch generated logs start at,
/// matching the real NASA-KSC file.
const NASA_EPOCH: i64 = 804_571_200;

fn workload_preset(name: &str, seed: u64) -> Result<WorkloadConfig, String> {
    match name {
        "nasa" => Ok(WorkloadConfig::nasa_like(seed)),
        "ucb" => Ok(WorkloadConfig::ucb_like(seed)),
        "tiny" => Ok(WorkloadConfig::tiny(seed)),
        other => Err(format!(
            "unknown preset {other:?} (expected nasa, ucb, or tiny)"
        )),
    }
}

/// `pbppm generate --preset nasa --out access.log [--seed N] [--days D]
/// [--sessions S] [--format clf|combined]`
pub fn generate(args: &Args) -> CmdResult {
    args.reject_unknown(&["preset", "out", "seed", "days", "sessions", "format"])?;
    let seed = args.get_parsed("seed", 1u64)?;
    let mut cfg = workload_preset(args.get("preset").unwrap_or("nasa"), seed)?;
    if let Some(days) = args.get("days") {
        cfg.days = days.parse().map_err(|_| format!("bad --days {days:?}"))?;
    }
    if let Some(sessions) = args.get("sessions") {
        cfg.sessions_per_day = sessions
            .parse()
            .map_err(|_| format!("bad --sessions {sessions:?}"))?;
    }
    let out = args.require("out")?;
    let format = args.get("format").unwrap_or("clf");
    if !matches!(format, "clf" | "combined") {
        return Err(format!("unknown --format {format:?} (expected clf or combined)").into());
    }
    let trace = cfg.generate();
    let file = std::fs::File::create(out)?;
    let mut w = std::io::BufWriter::new(file);
    for r in &trace.requests {
        let host = trace
            .clients
            .resolve(pbppm_core::UrlId(r.client.0))
            .unwrap_or("unknown")
            .to_owned();
        let is_robot = host.starts_with("robot");
        let rec = ClfRecord {
            host,
            time: r.time as i64 + NASA_EPOCH,
            method: "GET".to_owned(),
            path: trace.urls.resolve(r.url).unwrap_or("/").to_owned(),
            status: r.status,
            size: r.size,
        };
        if format == "combined" {
            let rec = CombinedRecord {
                clf: rec,
                referer: None,
                user_agent: Some(if is_robot {
                    "PBPPM-Crawler/1.0 (+http://example.org/bot)".to_owned()
                } else {
                    "Mozilla/4.08 [en] (WinNT; U)".to_owned()
                }),
            };
            writeln!(w, "{}", format_combined_line(&rec))?;
        } else {
            writeln!(w, "{}", format_clf_line(&rec))?;
        }
    }
    w.flush()?;
    println!(
        "wrote {}: {} requests, {} URLs, {} clients, {} day(s)",
        out,
        trace.requests.len(),
        trace.distinct_urls(),
        trace.clients.len(),
        trace.days()
    );
    Ok(())
}

/// Reads just enough of `path` to detect the log dialect: the first line
/// that parses in either format decides (mirroring [`trace_from_log`]'s
/// first-parsable-line rule).
fn sniff_format(path: &str) -> Result<Option<LogFormat>, std::io::Error> {
    let file = std::fs::File::open(path)?;
    for line in std::io::BufReader::new(file).lines().map_while(Result::ok) {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(f) = detect_format(&line) {
            return Ok(Some(f));
        }
    }
    Ok(None)
}

fn load_trace_full(
    path: &str,
    threads: usize,
) -> Result<(Trace, LogIngest), Box<dyn std::error::Error>> {
    // Common-format logs go through the chunked parallel ingester — same
    // Trace bit-for-bit (see `pbppm_trace::ingest`), bounded memory, and
    // parse parallelism. Combined logs (or undetectable ones) stay on the
    // sequential whole-file path, which alone understands user agents.
    let (trace, ingest) = if sniff_format(path)? == Some(LogFormat::Common) {
        let cfg = IngestConfig {
            threads,
            ..IngestConfig::default()
        };
        let (trace, stats) = trace_from_clf_path(path, Path::new(path), &cfg)?;
        let robot_clients = if stats.accepted > 0 {
            // Plain CLF has no user-agent field: nobody is UA-identifiable
            // as a robot, matching `trace_from_log`'s CLF behaviour.
            vec![false; trace.clients.len()]
        } else {
            Vec::new()
        };
        let ingest = LogIngest {
            stats,
            format: Some(LogFormat::Common),
            robot_clients,
        };
        (trace, ingest)
    } else {
        let file = std::fs::File::open(path)?;
        let lines = std::io::BufReader::new(file).lines().map_while(Result::ok);
        trace_from_log(path, lines)
    };
    pbppm_obs::obs_info!(
        "parsed {path} ({:?}): {} accepted, {} filtered, {} malformed",
        ingest.format,
        ingest.stats.accepted,
        ingest.stats.filtered,
        ingest.stats.malformed
    );
    if ingest.stats.malformed > ingest.stats.accepted {
        pbppm_obs::obs_warn!(
            "{path}: more malformed than accepted lines ({} vs {}) — wrong format?",
            ingest.stats.malformed,
            ingest.stats.accepted
        );
    }
    if trace.requests.is_empty() {
        return Err("no usable requests in the log".into());
    }
    Ok((trace, ingest))
}

fn load_trace(path: &str, threads: usize) -> Result<Trace, Box<dyn std::error::Error>> {
    Ok(load_trace_full(path, threads)?.0)
}

/// `pbppm analyze access.log [--json]`
pub fn analyze(args: &Args) -> CmdResult {
    args.reject_unknown(&[])?;
    let path = args
        .positional
        .first()
        .ok_or("usage: pbppm analyze <access.log>")?;
    let (trace, ingest) = load_trace_full(path, 0)?;
    let ua_robots = ingest.robot_clients.iter().filter(|&&b| b).count();
    let sessions = sessionize(&trace.requests, &SessionizerConfig::default());
    let stats = SessionStats::of(&sessions);
    let mut counts = PopularityTable::builder();
    for s in &sessions {
        for v in &s.views {
            counts.record(v.url);
        }
    }
    let pop = counts.build();
    let hist = pop.grade_histogram();
    let classes = classify_clients(&trace.requests, &ClassifyConfig::default());
    let proxies = classes.iter().filter(|&&c| c == ClientClass::Proxy).count();
    let popular_starts = sessions
        .iter()
        .filter(|s| pop.is_popular(s.views[0].url))
        .count();

    if args.switch("json") {
        let summary = serde_json::json!({
            "requests": trace.requests.len(),
            "distinct_urls": trace.distinct_urls(),
            "clients": trace.clients.len(),
            "days": trace.days(),
            "total_bytes": trace.total_bytes(),
            "sessions": stats.count,
            "mean_session_len": stats.mean_len,
            "frac_len_le_9": stats.frac_len_le_9,
            "grades": {"g3": hist[3], "g2": hist[2], "g1": hist[1], "g0": hist[0]},
            "proxies": proxies,
            "ua_robots": ua_robots,
            "popular_start_fraction":
                popular_starts as f64 / sessions.len().max(1) as f64,
        });
        println!("{}", serde_json::to_string_pretty(&summary)?);
        return Ok(());
    }
    println!(
        "{} requests, {} URLs, {} clients ({} proxies, {} UA-identified robots), {} day(s), {} MB",
        trace.requests.len(),
        trace.distinct_urls(),
        trace.clients.len(),
        proxies,
        ua_robots,
        trace.days(),
        trace.total_bytes() / 1_000_000
    );
    println!(
        "{} sessions: mean {:.2} views, {:.1}% with <= 9 views",
        stats.count,
        stats.mean_len,
        100.0 * stats.frac_len_le_9
    );
    println!(
        "popularity grades: {} G3 / {} G2 / {} G1 / {} G0; {:.1}% of sessions start popular",
        hist[3],
        hist[2],
        hist[1],
        hist[0],
        100.0 * popular_starts as f64 / sessions.len().max(1) as f64
    );
    Ok(())
}

/// The per-session URL paths, materialized once so the deterministic
/// parallel trainers (`train_sessions`) can partition them.
fn session_urls(sessions: &[Session]) -> Vec<Vec<pbppm_core::UrlId>> {
    sessions
        .iter()
        .map(|s| s.views.iter().map(|v| v.url).collect())
        .collect()
}

fn train_model(
    kind: &str,
    sessions: &[Session],
    aggressive: bool,
    no_links: bool,
    threads: usize,
) -> Result<TrainedModel, Box<dyn std::error::Error>> {
    let urls = session_urls(sessions);
    match kind {
        "pb" => {
            let counts = pbppm_core::PopularityBuilder::count_sessions(&urls, threads);
            let cfg = PbConfig {
                prune: if aggressive {
                    PruneConfig::aggressive()
                } else {
                    PruneConfig::default()
                },
                special_links: !no_links,
                ..PbConfig::default()
            };
            let mut m = PbPpm::new(counts.build(), cfg);
            m.train_sessions(&urls, threads);
            m.finalize();
            let snap = ModelSnapshot::Pb(m.to_snapshot());
            Ok(("PB-PPM".into(), snap, Box::new(m)))
        }
        "standard" => {
            let mut m = StandardPpm::unbounded();
            m.train_sessions(&urls, threads);
            m.finalize();
            let snap = ModelSnapshot::Standard(m.to_snapshot());
            Ok(("PPM".into(), snap, Box::new(m)))
        }
        "lrs" => {
            let mut m = LrsPpm::new();
            m.train_sessions(&urls, threads);
            m.finalize();
            let snap = ModelSnapshot::Lrs(m.to_snapshot());
            Ok(("LRS".into(), snap, Box::new(m)))
        }
        other => Err(format!("unknown model {other:?} (expected pb, standard, or lrs)").into()),
    }
}

/// Trains a model and hands back a binary-codec [`ModelImage`] instead of
/// the JSON bundle snapshot. Adds the order-1 baseline, which the JSON
/// bundle format never learned to carry.
pub fn train_image(
    kind: &str,
    sessions: &[Session],
    aggressive: bool,
    no_links: bool,
    threads: usize,
) -> Result<TrainedImage, Box<dyn std::error::Error>> {
    match kind {
        "o1" => {
            let mut urls = Vec::new();
            let mut m = Order1Markov::new();
            for s in sessions {
                urls.clear();
                urls.extend(s.views.iter().map(|v| v.url));
                m.train_session(&urls);
            }
            m.finalize();
            let image = ModelImage::Order1(m.to_snapshot());
            Ok(("O1".into(), image, Box::new(m)))
        }
        "pb" | "standard" | "lrs" => {
            let (label, snap, model) = train_model(kind, sessions, aggressive, no_links, threads)?;
            let image = match snap {
                ModelSnapshot::Pb(s) => ModelImage::Pb(s),
                ModelSnapshot::Standard(s) => ModelImage::Standard(s),
                ModelSnapshot::Lrs(s) => ModelImage::Lrs(s),
            };
            Ok((label, image, model))
        }
        other => Err(format!("unknown model {other:?} (expected pb, standard, lrs, or o1)").into()),
    }
}

/// `pbppm train access.log --out model.json [--model pb|standard|lrs]
/// [--days N] [--threads N] [--aggressive-prune] [--no-links]`
pub fn train(args: &Args) -> CmdResult {
    args.reject_unknown(&["out", "model", "days", "threads"])?;
    let path = args
        .positional
        .first()
        .ok_or("usage: pbppm train <access.log> --out model.json")?;
    let out = args.require("out")?;
    let threads = args.get_parsed("threads", 0usize)?;
    let trace = load_trace(path, threads)?;
    let days = args.get_parsed("days", usize::MAX)?;
    let requests = if days == usize::MAX {
        &trace.requests[..]
    } else {
        trace.first_days(days)
    };
    let sessions = sessionize(requests, &SessionizerConfig::default());
    let (label, snapshot, model) = train_model(
        args.get("model").unwrap_or("pb"),
        &sessions,
        args.switch("aggressive-prune"),
        args.switch("no-links"),
        threads,
    )?;
    let bundle = TrainedBundle {
        version: TrainedBundle::VERSION,
        label: label.clone(),
        urls: interner_urls(&trace.urls),
        train_sessions: sessions.len(),
        model: snapshot,
    };
    bundle.save(Path::new(out))?;
    println!(
        "trained {label} on {} sessions: {} nodes -> {out}",
        sessions.len(),
        model.node_count()
    );
    Ok(())
}

/// `pbppm predict model.json --context "/a.html,/b.html" [--top N] [--json]`
///
/// Several contexts can be separated by `;` — they are answered in one
/// batched [`Predictor::predict_many`] call.
pub fn predict(args: &Args) -> CmdResult {
    args.reject_unknown(&["context", "top"])?;
    let path = args
        .positional
        .first()
        .ok_or("usage: pbppm predict <model.json> --context \"/a,/b\"")?;
    let bundle = TrainedBundle::load(Path::new(path))?;
    let interner = bundle.interner();
    let mut model = bundle.instantiate()?;
    let mut stdout = std::io::stdout().lock();
    run_predict(&interner, model.as_mut(), args, &mut stdout)
}

/// `pbppm load-predict model.pbss --context "/a.html,/b.html" [--top N]
/// [--json]`
///
/// Same query interface as `predict`, but over a binary snapshot written
/// by `save` (or a `serve` checkpoint). The rendered output is
/// byte-identical to what the in-process model would produce — the
/// integration tests pin that.
pub fn load_predict(args: &Args) -> CmdResult {
    args.reject_unknown(&["context", "top"])?;
    let path = args
        .positional
        .first()
        .ok_or("usage: pbppm load-predict <model.pbss> --context \"/a,/b\"")?;
    let file = SnapshotFile::read(Path::new(path))?;
    let interner = file.interner();
    let mut model = file.instantiate()?;
    let mut stdout = std::io::stdout().lock();
    run_predict(&interner, model.as_mut(), args, &mut stdout)
}

/// The shared prediction-query driver behind `predict` and `load-predict`:
/// parses `--context`, batches the query, renders to `out`.
pub fn run_predict(
    interner: &Interner,
    model: &mut dyn Predictor,
    args: &Args,
    out: &mut dyn Write,
) -> CmdResult {
    let top = args.get_parsed("top", 10usize)?;

    let context_raw = args.require("context")?;
    let mut contexts: Vec<Vec<pbppm_core::UrlId>> = Vec::new();
    for group in context_raw.split(';') {
        let mut context = Vec::new();
        for part in group.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match interner.get(part) {
                Some(id) => context.push(id),
                None => {
                    pbppm_obs::obs_warn!("{part:?} was never seen in training; skipping")
                }
            }
        }
        if context.is_empty() {
            return Err("no usable context URLs".into());
        }
        contexts.push(context);
    }

    let slices: Vec<&[pbppm_core::UrlId]> = contexts.iter().map(Vec::as_slice).collect();
    let mut outs = Vec::new();
    model.predict_many(&slices, &mut outs);
    for preds in &mut outs {
        preds.truncate(top);
    }

    if args.switch("json") {
        let render = |preds: &[pbppm_core::Prediction]| -> Vec<serde_json::Value> {
            preds
                .iter()
                .map(|p| {
                    serde_json::json!({
                        "url": interner.resolve(p.url),
                        "probability": p.prob,
                    })
                })
                .collect()
        };
        if outs.len() == 1 {
            writeln!(out, "{}", serde_json::to_string_pretty(&render(&outs[0]))?)?;
        } else {
            let rows: Vec<_> = contexts
                .iter()
                .zip(&outs)
                .map(|(ctx, preds)| {
                    let urls: Vec<_> = ctx.iter().filter_map(|&u| interner.resolve(u)).collect();
                    serde_json::json!({"context": urls, "predictions": render(preds)})
                })
                .collect();
            writeln!(out, "{}", serde_json::to_string_pretty(&rows)?)?;
        }
        return Ok(());
    }
    for (i, (ctx, preds)) in contexts.iter().zip(&outs).enumerate() {
        if outs.len() > 1 {
            let urls: Vec<_> = ctx
                .iter()
                .map(|&u| interner.resolve(u).unwrap_or("?"))
                .collect();
            writeln!(out, "context {}: {}", i + 1, urls.join(" -> "))?;
        }
        if preds.is_empty() {
            writeln!(out, "no predictions for this context")?;
        } else {
            for p in preds {
                writeln!(
                    out,
                    "{:.3}  {}",
                    p.prob,
                    interner.resolve(p.url).unwrap_or("?")
                )?;
            }
        }
    }
    Ok(())
}

/// `pbppm save access.log --out model.pbss [--model pb|standard|lrs|o1]
/// [--days N] [--threads N] [--aggressive-prune] [--no-links]`
///
/// `train`'s sibling for the binary snapshot format: same training
/// pipeline, but the result is written with the versioned, checksummed
/// codec that `load-predict` and `serve` read.
pub fn save(args: &Args) -> CmdResult {
    args.reject_unknown(&["out", "model", "days", "threads"])?;
    let path = args
        .positional
        .first()
        .ok_or("usage: pbppm save <access.log> --out model.pbss")?;
    let out = args.require("out")?;
    let threads = args.get_parsed("threads", 0usize)?;
    let trace = load_trace(path, threads)?;
    let days = args.get_parsed("days", usize::MAX)?;
    let requests = if days == usize::MAX {
        &trace.requests[..]
    } else {
        trace.first_days(days)
    };
    let sessions = sessionize(requests, &SessionizerConfig::default());
    let (label, image, model) = train_image(
        args.get("model").unwrap_or("pb"),
        &sessions,
        args.switch("aggressive-prune"),
        args.switch("no-links"),
        threads,
    )?;
    let file = SnapshotFile {
        urls: interner_urls(&trace.urls),
        model: image,
    };
    let bytes = file.write_atomic(Path::new(out))?;
    println!(
        "saved {label}: {} sessions, {} nodes, {bytes} bytes -> {out}",
        sessions.len(),
        model.node_count()
    );
    Ok(())
}

/// `pbppm simulate (<access.log> | --preset nasa) --model pb|standard|lrs|top10|o1
/// [--train-days N] [--seed N] [--threads N] [--json]`
pub fn simulate(args: &Args) -> CmdResult {
    args.reject_unknown(&["preset", "model", "train-days", "seed", "threads"])?;
    let trace = match args.positional.first() {
        Some(path) => load_trace(path, args.get_parsed("threads", 0usize)?)?,
        None => {
            let seed = args.get_parsed("seed", 1u64)?;
            workload_preset(args.get("preset").unwrap_or("nasa"), seed)?.generate()
        }
    };
    let spec = match args.get("model").unwrap_or("pb") {
        "pb" => ModelSpec::pb_paper(true),
        "standard" => ModelSpec::Standard { max_height: None },
        "3ppm" => ModelSpec::Standard {
            max_height: Some(3),
        },
        "lrs" => ModelSpec::Lrs,
        "o1" => ModelSpec::Order1,
        "top10" => ModelSpec::TopN { n: 10 },
        "none" => ModelSpec::NoPrefetch,
        other => return Err(format!("unknown model {other:?}").into()),
    };
    let default_days = trace.days().saturating_sub(1).max(1);
    let train_days = args.get_parsed("train-days", default_days)?;
    let mut cfg = ExperimentConfig::paper_default(spec, train_days);
    cfg.threads = args.get_parsed("threads", 0usize)?;
    pbppm_obs::obs_info!(
        "simulating {} on {}: {} training day(s), {} worker(s) (0 = auto)",
        cfg.model.label(),
        trace.name,
        train_days,
        cfg.threads
    );
    let r = run_experiment(&trace, &cfg);
    if args.switch("json") {
        println!("{}", serde_json::to_string_pretty(&r)?);
        return Ok(());
    }
    println!(
        "{} on {} — trained {} days ({} sessions), evaluated {} requests",
        r.label, r.trace, r.train_days, r.train_sessions, r.eval_requests
    );
    println!(
        "  hit ratio      {:>6.1}%   (caching only: {:.1}%)",
        100.0 * r.hit_ratio(),
        100.0 * r.baseline_hit_ratio()
    );
    println!("  latency saved  {:>6.1}%", 100.0 * r.latency_reduction());
    println!("  traffic cost   {:>6.1}%", 100.0 * r.traffic_increment());
    println!("  model size     {:>6} nodes", r.node_count);
    Ok(())
}

/// `pbppm audit model.pbss [--json]`
///
/// Structurally verifies a binary snapshot: decodes the envelope, loads
/// the model image, and runs every invariant check in `pbppm-audit`
/// (tree shape, height caps, special links, popularity grades, index
/// aggregates, symbol resolution). Exits nonzero when any violation is
/// found — including payloads whose checksum passes but whose contents
/// are structurally invalid. `serve` runs the same audit on recovery.
pub fn audit(args: &Args) -> CmdResult {
    args.reject_unknown(&[])?;
    let path = args
        .positional
        .first()
        .ok_or("usage: pbppm audit <model.pbss> [--json]")?;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let report = pbppm_audit::verify_bytes(&bytes).map_err(|e| format!("{path}: {e}"))?;
    if args.switch("json") {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{path}: {} structural violation(s)",
            report.violations.len()
        )
        .into())
    }
}

/// `pbppm lint [--json] [--self-test] [workspace-root]`
///
/// Runs the workspace linter (panic and concurrency policy; see
/// DESIGN.md §15). `--self-test` lints the planted-violation corpus
/// instead and requires every rule to trip exactly once.
pub fn lint(args: &Args) -> CmdResult {
    args.reject_unknown(&[])?;
    let start = args.positional.first().map_or(".", String::as_str);
    let root = pbppm_lint::find_workspace_root(Path::new(start))?;
    if args.switch("self-test") {
        pbppm_lint::self_test(&root)?;
        println!(
            "pbppm-lint self-test OK: {} rules each tripped exactly once",
            pbppm_lint::ALL_RULES.len()
        );
        return Ok(());
    }
    let report = pbppm_lint::lint_workspace(&root)?;
    if args.switch("json") {
        println!("{}", report.to_json());
    } else {
        for v in &report.violations {
            println!("{v}");
        }
        println!(
            "pbppm-lint: {} files, {} checks, {} allowed, {} violation(s)",
            report.files,
            report.checks,
            report.allowed,
            report.violations.len()
        );
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} lint violation(s)", report.violations.len()).into())
    }
}

/// `pbppm stats run_metrics.json [--prom]`
///
/// Renders a telemetry report exported by `--metrics-out`: a human-readable
/// span/metric summary by default, Prometheus text exposition with
/// `--prom`.
pub fn stats(args: &Args) -> CmdResult {
    args.reject_unknown(&[])?;
    let path = args
        .positional
        .first()
        .ok_or("usage: pbppm stats <run_metrics.json> [--prom]")?;
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let report = pbppm_obs::RunReport::from_json(&raw).map_err(|e| format!("{path}: {e}"))?;
    if args.switch("prom") {
        print!("{}", report.render_prometheus());
    } else {
        print!("{}", report.render_text());
    }
    Ok(())
}
