//! The on-disk format for trained models: a model snapshot plus the URL
//! interner it was trained against (snapshots store dense URL ids; the
//! bundle makes them meaningful again).

use pbppm_core::{Interner, LrsPpm, PbPpm, Predictor, StandardPpm};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A snapshot of any of the three tree-backed models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ModelSnapshot {
    /// Popularity-based PPM.
    Pb(pbppm_core::pb::PbSnapshot),
    /// Standard PPM.
    Standard(pbppm_core::standard::StandardSnapshot),
    /// LRS-PPM.
    Lrs(pbppm_core::lrs::LrsSnapshot),
}

/// A self-contained trained model file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedBundle {
    /// Format version, for forward compatibility.
    pub version: u32,
    /// Human-readable model label ("PB-PPM", …).
    pub label: String,
    /// Interned URL strings, in id order (`urls[i]` is `UrlId(i)`).
    pub urls: Vec<String>,
    /// Sessions the model was trained on.
    pub train_sessions: usize,
    /// The model itself.
    pub model: ModelSnapshot,
}

impl TrainedBundle {
    /// Current format version.
    pub const VERSION: u32 = 1;

    /// Writes the bundle as JSON.
    pub fn save(&self, path: &Path) -> Result<(), Box<dyn std::error::Error>> {
        let json = serde_json::to_string(self)?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Reads a bundle back from JSON.
    pub fn load(path: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        let json = std::fs::read_to_string(path)?;
        let bundle: TrainedBundle = serde_json::from_str(&json)?;
        if bundle.version != Self::VERSION {
            return Err(format!(
                "unsupported bundle version {} (expected {})",
                bundle.version,
                Self::VERSION
            )
            .into());
        }
        Ok(bundle)
    }

    /// Rebuilds the interner from the stored URL list.
    pub fn interner(&self) -> Interner {
        let mut interner = Interner::with_capacity(self.urls.len());
        for url in &self.urls {
            interner.intern(url);
        }
        interner
    }

    /// Instantiates the model behind the common [`Predictor`] interface.
    pub fn instantiate(&self) -> Result<Box<dyn Predictor>, Box<dyn std::error::Error>> {
        Ok(match &self.model {
            ModelSnapshot::Pb(s) => Box::new(PbPpm::from_snapshot(s)?),
            ModelSnapshot::Standard(s) => Box::new(StandardPpm::from_snapshot(s)?),
            ModelSnapshot::Lrs(s) => Box::new(LrsPpm::from_snapshot(s)?),
        })
    }
}

/// Captures an interner's contents in id order.
pub fn interner_urls(interner: &Interner) -> Vec<String> {
    interner.iter().map(|(_, s)| s.to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbppm_core::{PbConfig, PopularityTable, UrlId};

    #[test]
    fn bundle_roundtrip_through_disk() {
        let mut interner = Interner::new();
        let a = interner.intern("/a.html");
        let b = interner.intern("/b.html");
        let mut pop = PopularityTable::builder();
        for _ in 0..10 {
            pop.record(a);
            pop.record(b);
        }
        let mut model = PbPpm::new(pop.build(), PbConfig::default());
        for _ in 0..3 {
            model.train_session(&[a, b]);
        }
        model.finalize();

        let bundle = TrainedBundle {
            version: TrainedBundle::VERSION,
            label: "PB-PPM".into(),
            urls: interner_urls(&interner),
            train_sessions: 3,
            model: ModelSnapshot::Pb(model.to_snapshot()),
        };
        let path = std::env::temp_dir().join("pbppm-bundle-test.json");
        bundle.save(&path).unwrap();
        let loaded = TrainedBundle::load(&path).unwrap();
        assert_eq!(loaded.label, "PB-PPM");
        assert_eq!(loaded.train_sessions, 3);

        let interner2 = loaded.interner();
        assert_eq!(interner2.get("/a.html"), Some(a));
        assert_eq!(interner2.resolve(UrlId(1)), Some("/b.html"));

        let mut restored = loaded.instantiate().unwrap();
        let mut out = Vec::new();
        restored.predict(&[a], &mut out);
        assert_eq!(out[0].url, b);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let path = std::env::temp_dir().join("pbppm-bundle-badver.json");
        let mut interner = Interner::new();
        interner.intern("/x");
        let mut m = StandardPpm::unbounded();
        m.train_session(&[UrlId(0)]);
        m.finalize();
        let bundle = TrainedBundle {
            version: 999,
            label: "PPM".into(),
            urls: interner_urls(&interner),
            train_sessions: 1,
            model: ModelSnapshot::Standard(m.to_snapshot()),
        };
        let json = serde_json::to_string(&bundle).unwrap();
        std::fs::write(&path, json).unwrap();
        assert!(TrainedBundle::load(&path).is_err());
    }
}
