//! `pbppm serve` — a long-running, crash-safe online prediction loop.
//!
//! Wraps [`OnlinePbPpm`] behind a line protocol on stdin/stdout and
//! checkpoints its full serving state (URL interner + sliding window +
//! built model) through [`SnapshotStore`] every `--checkpoint-every`
//! rebuilds. On startup the newest valid checkpoint generation is
//! recovered, so a crash — even one that truncates the latest snapshot
//! mid-write — costs at most the sessions since the previous checkpoint.
//!
//! ## Protocol
//!
//! One command per line; every command answers with one `ok …` or `err …`
//! line (plus prediction rows after `ok N`):
//!
//! ```text
//! train /a.html,/b.html,/c.html      feed one session
//! predict /a.html,/b.html            -> "ok N" then N lines "prob url"
//! checkpoint                         force a checkpoint now
//! stats                              one-line model summary
//! quit                               checkpoint and exit
//! ```

use crate::args::Args;
use crate::bundle::interner_urls;
use pbppm_core::snapshot::{Generation, ModelImage, SnapshotFile, SnapshotStore};
use pbppm_core::{Interner, OnlinePbPpm, PbConfig, Predictor, PruneConfig, UrlId};
use std::io::{BufRead, Write};

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// What a handled protocol line means for the read loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep reading.
    Continue,
    /// The client said `quit`; stop cleanly.
    Quit,
}

/// Where a freshly opened serving session got its state from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// No checkpoint existed; the model starts empty.
    Fresh,
    /// A checkpoint generation was loaded.
    Warm(Generation),
}

impl Recovery {
    fn label(self) -> &'static str {
        match self {
            Recovery::Fresh => "fresh",
            Recovery::Warm(Generation::Current) => "current",
            Recovery::Warm(Generation::Previous) => "previous",
        }
    }
}

/// The serving loop's state: interner, online model, checkpoint store.
pub struct ServeSession {
    urls: Interner,
    online: OnlinePbPpm,
    store: SnapshotStore,
    /// Checkpoint after this many completed rebuilds.
    checkpoint_every: u64,
    last_checkpoint_rebuilds: u64,
    top: usize,
}

impl ServeSession {
    /// Opens a serving session over `dir`, recovering from the newest
    /// valid checkpoint when one exists. The `cfg`/`window`/`rebuild_every`
    /// parameters only shape a **fresh** session; a recovered snapshot
    /// carries its own configuration.
    pub fn open(
        dir: &str,
        cfg: PbConfig,
        window: usize,
        rebuild_every: usize,
        checkpoint_every: u64,
        top: usize,
    ) -> Result<(Self, Recovery), Box<dyn std::error::Error>> {
        let store = SnapshotStore::open(dir)?;
        let (urls, online, recovery) = match store.recover()? {
            Some((file, generation)) => {
                let ModelImage::OnlinePb(snap) = &file.model else {
                    return Err(format!(
                        "{}: snapshot holds a {} model, not online serving state",
                        store.dir().display(),
                        file.model.kind_label()
                    )
                    .into());
                };
                let online = OnlinePbPpm::from_snapshot(snap)?;
                // A checkpoint can be checksum-valid yet structurally
                // rotten (writer bug, partial logic migration). Refuse to
                // serve predictions from a model that fails the audit —
                // at this point the damage is recoverable; after hours of
                // serving and re-checkpointing it no longer is.
                let report = pbppm_audit::verify_model_with_urls(
                    &pbppm_audit::ModelRef::OnlinePb(&online),
                    Some(file.urls.len()),
                );
                if !report.is_clean() {
                    return Err(format!(
                        "{}: recovered checkpoint fails the structural audit; \
                         refusing to serve from it\n{report}",
                        store.dir().display()
                    )
                    .into());
                }
                (file.interner(), online, Recovery::Warm(generation))
            }
            None => (
                Interner::new(),
                OnlinePbPpm::new(cfg, window, rebuild_every),
                Recovery::Fresh,
            ),
        };
        let last_checkpoint_rebuilds = online.rebuild_count();
        Ok((
            Self {
                urls,
                online,
                store,
                checkpoint_every: checkpoint_every.max(1),
                last_checkpoint_rebuilds,
                top,
            },
            recovery,
        ))
    }

    /// The online model being served (tests).
    pub fn online(&self) -> &OnlinePbPpm {
        &self.online
    }

    /// Writes a checkpoint of the full serving state. Returns its size.
    pub fn checkpoint(&mut self) -> Result<u64, Box<dyn std::error::Error>> {
        let file = SnapshotFile {
            urls: interner_urls(&self.urls),
            model: ModelImage::OnlinePb(self.online.to_snapshot()),
        };
        let bytes = self.store.checkpoint(&file)?;
        self.last_checkpoint_rebuilds = self.online.rebuild_count();
        Ok(bytes)
    }

    /// Checkpoints when enough rebuilds have accumulated since the last
    /// one. Returns the bytes written, if any.
    fn maybe_checkpoint(&mut self) -> Result<Option<u64>, Box<dyn std::error::Error>> {
        if self.online.rebuild_count() - self.last_checkpoint_rebuilds >= self.checkpoint_every {
            return self.checkpoint().map(Some);
        }
        Ok(None)
    }

    fn parse_urls(&mut self, raw: &str, intern_new: bool) -> Vec<UrlId> {
        raw.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .filter_map(|s| {
                if intern_new {
                    Some(self.urls.intern(s))
                } else {
                    // Prediction contexts only match URLs the model has
                    // seen; unknown ones cannot contribute and are skipped.
                    self.urls.get(s)
                }
            })
            .collect()
    }

    /// Handles one protocol line, writing the response to `out`.
    pub fn handle_line(&mut self, line: &str, out: &mut dyn Write) -> std::io::Result<Flow> {
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "train" => {
                let session = self.parse_urls(rest, true);
                if session.is_empty() {
                    writeln!(out, "err train expects a comma-separated URL list")?;
                    return Ok(Flow::Continue);
                }
                self.online.train_session(&session);
                match self.maybe_checkpoint() {
                    Ok(saved) => writeln!(
                        out,
                        "ok trained {} url(s); window {}, rebuilds {}{}",
                        session.len(),
                        self.online.window_len(),
                        self.online.rebuild_count(),
                        match saved {
                            Some(bytes) => format!(", checkpointed {bytes} bytes"),
                            None => String::new(),
                        }
                    )?,
                    Err(e) => writeln!(out, "err checkpoint failed: {e}")?,
                }
            }
            "predict" => {
                let context = self.parse_urls(rest, false);
                let mut preds = Vec::new();
                self.online.predict(&context, &mut preds);
                preds.truncate(self.top);
                writeln!(out, "ok {}", preds.len())?;
                for p in &preds {
                    writeln!(
                        out,
                        "{:.3} {}",
                        p.prob,
                        self.urls.resolve(p.url).unwrap_or("?")
                    )?;
                }
            }
            "checkpoint" => match self.checkpoint() {
                Ok(bytes) => writeln!(out, "ok checkpointed {bytes} bytes")?,
                Err(e) => writeln!(out, "err checkpoint failed: {e}")?,
            },
            "stats" => {
                let s = self.online.stats();
                writeln!(
                    out,
                    "ok urls {}, window {}, rebuilds {}, nodes {}, bytes {}",
                    self.urls.len(),
                    self.online.window_len(),
                    self.online.rebuild_count(),
                    s.nodes,
                    s.total_bytes()
                )?;
            }
            "quit" => {
                match self.checkpoint() {
                    Ok(bytes) => writeln!(out, "ok bye; checkpointed {bytes} bytes")?,
                    Err(e) => writeln!(out, "err final checkpoint failed: {e}")?,
                }
                return Ok(Flow::Quit);
            }
            other => {
                writeln!(
                    out,
                    "err unknown command {other:?} (train/predict/checkpoint/stats/quit)"
                )?;
            }
        }
        Ok(Flow::Continue)
    }
}

/// `pbppm serve --dir DIR [--window N] [--rebuild-every N]
/// [--checkpoint-every N] [--top N] [--aggressive-prune] [--no-links]`
pub fn serve(args: &Args) -> CmdResult {
    args.reject_unknown(&["dir", "window", "rebuild-every", "checkpoint-every", "top"])?;
    let dir = args.require("dir")?;
    let window = args.get_parsed("window", 1000usize)?;
    let rebuild_every = args.get_parsed("rebuild-every", 50usize)?;
    let checkpoint_every = args.get_parsed("checkpoint-every", 1u64)?;
    let top = args.get_parsed("top", 10usize)?;
    let cfg = PbConfig {
        prune: if args.switch("aggressive-prune") {
            PruneConfig::aggressive()
        } else {
            PruneConfig::default()
        },
        special_links: !args.switch("no-links"),
        ..PbConfig::default()
    };
    let (mut session, recovery) =
        ServeSession::open(dir, cfg, window, rebuild_every, checkpoint_every, top)?;
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    writeln!(
        stdout,
        "ready recovered={} window={} rebuilds={}",
        recovery.label(),
        session.online().window_len(),
        session.online().rebuild_count()
    )?;
    stdout.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        let flow = session.handle_line(&line, &mut stdout)?;
        stdout.flush()?;
        if flow == Flow::Quit {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> String {
        let dir =
            std::env::temp_dir().join(format!("pbppm-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.display().to_string()
    }

    fn open(dir: &str) -> (ServeSession, Recovery) {
        // rebuild_every=1 + checkpoint_every=1: every session rebuilds and
        // checkpoints, so generations accumulate quickly.
        ServeSession::open(dir, PbConfig::default(), 100, 1, 1, 10).unwrap()
    }

    fn line(s: &mut ServeSession, cmd: &str) -> String {
        let mut buf = Vec::new();
        s.handle_line(cmd, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn protocol_basics() {
        let dir = temp_dir("protocol");
        let (mut s, recovery) = open(&dir);
        assert_eq!(recovery, Recovery::Fresh);
        assert!(line(&mut s, "train /a,/b,/a,/b").starts_with("ok trained 4"));
        let reply = line(&mut s, "predict /a");
        assert!(reply.starts_with("ok 1"), "unexpected reply: {reply}");
        assert!(reply.contains("/b"), "unexpected reply: {reply}");
        assert!(line(&mut s, "predict /never-seen").starts_with("ok 0"));
        assert!(line(&mut s, "stats").starts_with("ok urls 2"));
        assert!(line(&mut s, "bogus").starts_with("err unknown command"));
        assert!(line(&mut s, "train ").starts_with("err train expects"));
        assert!(line(&mut s, "quit").starts_with("ok bye"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_start_restores_predictions() {
        let dir = temp_dir("warm");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b,/c");
        line(&mut s, "train /a,/b,/c");
        let before = line(&mut s, "predict /a,/b");
        drop(s);

        let (mut s2, recovery) = open(&dir);
        assert_eq!(recovery, Recovery::Warm(Generation::Current));
        assert_eq!(line(&mut s2, "predict /a,/b"), before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovers_from_truncated_current_snapshot() {
        let dir = temp_dir("truncated");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        let after_first = line(&mut s, "predict /a");
        line(&mut s, "train /x,/y");
        drop(s);

        // Simulate a crash mid-write: the newest generation is cut short.
        let current = SnapshotStore::open(&dir).unwrap().current_path();
        let bytes = std::fs::read(&current).unwrap();
        std::fs::write(&current, &bytes[..bytes.len() / 2]).unwrap();

        let (mut s2, recovery) = open(&dir);
        assert_eq!(recovery, Recovery::Warm(Generation::Previous));
        // The previous generation predates the second train line.
        assert_eq!(line(&mut s2, "predict /a"), after_first);
        assert!(line(&mut s2, "predict /x").starts_with("ok 0"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn training_continues_after_recovery() {
        let dir = temp_dir("resume");
        let (mut s, _) = open(&dir);
        line(&mut s, "train /a,/b");
        drop(s);
        let (mut s2, _) = open(&dir);
        assert!(line(&mut s2, "train /a,/c").starts_with("ok trained 2"));
        let reply = line(&mut s2, "predict /a");
        assert!(reply.starts_with("ok 2"), "both sessions count: {reply}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
