//! `pbppm serve` — the stdin/stdout front-end over the sharded serving
//! core ([`pbppm_serve::ShardedServer`]).
//!
//! The engine itself (per-shard writer sessions, epoch-published read
//! snapshots, batched dispatch) lives in the `pbppm-serve` crate; this
//! module only parses flags, prints the greeting, and pumps lines between
//! stdin and the server. A dedicated reader thread drains stdin into a
//! channel so bursts of pipelined commands arrive at the core as one
//! batch (drain-then-dispatch per shard) instead of one syscall-paced
//! round-trip each.
//!
//! With `--shards 1` (the default) the protocol, directory layout, and
//! responses are exactly the historical single-threaded server's. With
//! `--shards N`, `train`/`predict` accept an optional `@client` routing
//! token (`train @c7 /a,/b`) and every shard checkpoints under
//! `DIR/shard-NNN`; `stats`/`health`/`metrics`/`trace` aggregate across
//! shards.

use crate::args::Args;
use std::io::Write;

// Everything the old in-crate serve module exported is re-exported so
// `pbppm_cli::serve::{ServeOptions, ServeSession, ...}` keeps working.
pub use pbppm_serve::{
    Flow, PublishedModel, Recovery, ServeOptions, ServeSession, ShardedOptions, ShardedServer,
};

type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// Upper bound on lines dispatched as one batch: keeps control-command
/// barriers responsive under sustained load.
const MAX_BATCH: usize = 256;

/// `pbppm serve --dir DIR [--shards N] [--threads N] [--window N]
/// [--rebuild-every N] [--checkpoint-every N] [--top N] [--eval-window N]
/// [--drift-fraction F] [--flight-capacity N] [--flush-every N]
/// [--aggressive-prune] [--no-links]`
pub fn serve(args: &Args) -> CmdResult {
    args.reject_unknown(&[
        "dir",
        "shards",
        "threads",
        "window",
        "rebuild-every",
        "checkpoint-every",
        "top",
        "eval-window",
        "drift-fraction",
        "flight-capacity",
        "flush-every",
    ])?;
    let dir = args.require("dir")?;
    let defaults = ServeOptions::default();
    let opts = ShardedOptions {
        shards: args.get_parsed("shards", 1)?,
        threads: args.get_parsed("threads", 0)?,
        serve: ServeOptions {
            window: args.get_parsed("window", defaults.window)?,
            rebuild_every: args.get_parsed("rebuild-every", defaults.rebuild_every)?,
            checkpoint_every: args.get_parsed("checkpoint-every", defaults.checkpoint_every)?,
            top: args.get_parsed("top", defaults.top)?,
            eval_window: args.get_parsed("eval-window", defaults.eval_window)?,
            drift_fraction: args.get_parsed("drift-fraction", defaults.drift_fraction)?,
            flight_capacity: args.get_parsed("flight-capacity", defaults.flight_capacity)?,
            flush_every: args.get_parsed("flush-every", defaults.flush_every)?,
        },
    };
    let cfg = pbppm_core::PbConfig {
        prune: if args.switch("aggressive-prune") {
            pbppm_core::PruneConfig::aggressive()
        } else {
            pbppm_core::PruneConfig::default()
        },
        special_links: !args.switch("no-links"),
        ..pbppm_core::PbConfig::default()
    };
    let mut server = ShardedServer::open(dir, cfg, opts)?;
    let mut stdout = std::io::stdout().lock();
    if server.shard_count() == 1 {
        // Byte-compatible with the historical single-threaded greeting.
        writeln!(
            stdout,
            "ready recovered={} window={} rebuilds={}",
            server.recovery_label(),
            server.total_window(),
            server.total_rebuilds()
        )?;
    } else {
        writeln!(
            stdout,
            "ready recovered={} shards={} window={} rebuilds={}",
            server.recovery_label(),
            server.shard_count(),
            server.total_window(),
            server.total_rebuilds()
        )?;
    }
    stdout.flush()?;

    // Reader thread: stdin drains into the channel while the core is
    // busy, so pipelined commands dispatch as one batch.
    let rx = pbppm_serve::spawn_stdin_reader();

    let mut batch: Vec<String> = Vec::new();
    let mut responses: Vec<String> = Vec::new();
    // recv() blocks for the first line of a batch (Err = stdin EOF),
    // then try_recv() drains whatever queued while the core was busy.
    while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        while batch.len() < MAX_BATCH {
            match rx.try_recv() {
                Ok(line) => batch.push(line),
                Err(_) => break,
            }
        }
        let flow = server.handle_batch(&batch, &mut responses)?;
        for r in &responses {
            stdout.write_all(r.as_bytes())?;
        }
        stdout.flush()?;
        if flow == Flow::Quit {
            break;
        }
    }
    Ok(())
}
