//! A small hand-rolled argument parser: positional arguments plus
//! `--flag value` / `--switch` options. Good enough for a five-command
//! tool, and keeps the dependency set at zero.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Args {
    /// Positional arguments, in order.
    pub positional: Vec<String>,
    /// `--key value` options and bare `--switch`es (mapped to `""`).
    pub options: BTreeMap<String, String>,
}

/// Errors from argument parsing or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// An option that expects a value got none.
    MissingValue(String),
    /// A required option was not given.
    MissingOption(&'static str),
    /// An option's value failed to parse.
    BadValue(&'static str, String),
    /// An option that is not recognized by the command.
    Unknown(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "option --{k} expects a value"),
            ArgError::MissingOption(k) => write!(f, "missing required option --{k}"),
            ArgError::BadValue(k, v) => write!(f, "invalid value for --{k}: {v:?}"),
            ArgError::Unknown(k) => write!(f, "unknown option --{k}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Switches (options that take no value) recognized anywhere.
const SWITCHES: &[&str] = &[
    "json",
    "aggressive-prune",
    "no-links",
    "help",
    "verbose",
    "prom",
    "self-test",
];

/// Value options recognized by every command (handled by the driver, not
/// the individual commands).
const GLOBAL_OPTIONS: &[&str] = &["metrics-out"];

impl Args {
    /// Parses raw arguments (excluding the program and command names).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if SWITCHES.contains(&key) {
                    args.options.insert(key.to_owned(), String::new());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(key.to_owned()))?;
                    args.options.insert(key.to_owned(), value);
                }
            } else {
                args.positional.push(tok);
            }
        }
        Ok(args)
    }

    /// The value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// The value of a required `--key`.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgError> {
        self.get(key).ok_or(ArgError::MissingOption(key))
    }

    /// A parsed `--key` value, or `default` when absent.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue(key, v.to_owned())),
        }
    }

    /// True when the bare switch `--key` was given.
    pub fn switch(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Rejects any option not in `allowed` (switches and driver-level
    /// options included automatically).
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str())
                && !SWITCHES.contains(&key.as_str())
                && !GLOBAL_OPTIONS.contains(&key.as_str())
            {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positional_and_options_mix() {
        let a = parse(&["file.log", "--seed", "7", "--json", "more"]).unwrap();
        assert_eq!(a.positional, vec!["file.log", "more"]);
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.switch("json"));
        assert!(!a.switch("quiet"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse(&["--seed"]).unwrap_err(),
            ArgError::MissingValue("seed".into())
        );
    }

    #[test]
    fn require_and_parsed() {
        let a = parse(&["--days", "5"]).unwrap();
        assert_eq!(a.require("days").unwrap(), "5");
        assert!(a.require("out").is_err());
        assert_eq!(a.get_parsed("days", 1usize).unwrap(), 5);
        assert_eq!(a.get_parsed("seed", 42u64).unwrap(), 42);
        let bad = parse(&["--days", "x"]).unwrap();
        assert!(bad.get_parsed("days", 1usize).is_err());
    }

    #[test]
    fn unknown_rejection() {
        let a = parse(&["--bogus", "1"]).unwrap();
        assert_eq!(
            a.reject_unknown(&["seed"]).unwrap_err(),
            ArgError::Unknown("bogus".into())
        );
        let b = parse(&["--seed", "1", "--json"]).unwrap();
        assert!(b.reject_unknown(&["seed"]).is_ok());
    }

    #[test]
    fn driver_level_options_are_always_accepted() {
        let a = parse(&["--metrics-out", "m.json", "--verbose", "--prom"]).unwrap();
        assert!(a.reject_unknown(&[]).is_ok());
        assert_eq!(a.get("metrics-out"), Some("m.json"));
        assert!(a.switch("verbose"));
        assert!(a.switch("prom"));
        // --metrics-out still takes a value: bare use is an error.
        assert_eq!(
            parse(&["--metrics-out"]).unwrap_err(),
            ArgError::MissingValue("metrics-out".into())
        );
    }
}
