//! `pbppm` — the command-line interface to the PB-PPM web prefetching
//! toolkit.
//!
//! ```text
//! pbppm generate --preset nasa --out access.log    synthesize a CLF log
//! pbppm analyze  access.log                        sessions, popularity, clients
//! pbppm train    access.log --out model.json       train a prediction model
//! pbppm predict  model.json --context "/a,/b"      what to prefetch next
//! pbppm simulate access.log --model pb             full prefetching experiment
//! pbppm stats    run_metrics.json                  render an exported report
//! ```

#![forbid(unsafe_code)]

use pbppm_cli::args::Args;
use pbppm_cli::commands;

/// Span byte deltas need allocation accounting; the CLI opts in. The perf
/// gate's `throughput` binary deliberately does not, keeping its
/// measurements allocator-overhead-free.
#[global_allocator]
static ALLOC: pbppm_obs::alloc::CountingAllocator = pbppm_obs::alloc::CountingAllocator;

const HELP: &str = "\
pbppm — popularity-based PPM web prefetching toolkit

USAGE:
    pbppm <command> [arguments]

COMMANDS:
    generate   Synthesize a multi-day Common Log Format server log
               --preset nasa|ucb|tiny  --out FILE  [--seed N] [--days D] [--sessions S]
    analyze    Parse a CLF log and report sessions, popularity and clients
               <access.log>  [--json]
    train      Train a prediction model from a CLF log (parallel chunked
               ingestion and deterministic parallel training; results are
               bit-identical at every thread count)
               <access.log>  --out model.json  [--model pb|standard|lrs]
               [--days N] [--threads N] [--aggressive-prune] [--no-links]
    predict    Query a trained model for prefetch candidates; separate
               multiple contexts with ';' for one batched query
               <model.json>  --context \"/a.html,/b.html\"  [--top N] [--json]
    save       Train a model and write it as a binary snapshot (.pbss)
               <access.log>  --out model.pbss  [--model pb|standard|lrs|o1]
               [--days N] [--threads N] [--aggressive-prune] [--no-links]
    load-predict
               Query a binary snapshot; same interface and output as predict
               <model.pbss>  --context \"/a.html,/b.html\"  [--top N] [--json]
    serve      Long-running online prediction server: client-sharded
               writers with epoch-published read snapshots, crash-safe
               checkpoints and live self-observation (line protocol on
               stdin: train/predict/checkpoint/stats/metrics [--prom]/
               trace N/health/quit; with --shards > 1, train/predict
               accept an optional @client routing token)
               --dir DIR  [--shards N] [--threads N] [--window N]
               [--rebuild-every N] [--checkpoint-every N] [--top N]
               [--eval-window N] [--drift-fraction F]
               [--flight-capacity N] [--flush-every N]
               [--aggressive-prune] [--no-links]
    audit      Structurally verify a binary snapshot (tree shape, height
               caps, special links, grades, index aggregates); exits
               nonzero when any invariant is violated
               <model.pbss>  [--json]
    simulate   Run a full trace-driven prefetching experiment
               (<access.log> | --preset nasa|ucb|tiny [--seed N])
               [--model pb|standard|3ppm|lrs|o1|top10|none] [--train-days N]
               [--threads N] [--json]
    lint       Run the workspace source linter (panic + concurrency
               policy: unsafe attrs, core unwraps, codec casts, atomic
               orderings, Relaxed justifications, thread spawns,
               hot-path locks, Drop panics, allowlist staleness)
               [workspace-root]  [--json] [--self-test]
    stats      Render an exported telemetry report
               <run_metrics.json>  [--prom]
    help       Show this message

GLOBAL OPTIONS:
    --metrics-out FILE   Export this run's telemetry (spans + metrics) as JSON
    --verbose            Raise logging to debug (stderr; stdout stays clean)

ENVIRONMENT:
    PBPPM_LOG      error|warn|info|debug|trace — logging threshold
    PBPPM_THREADS  positive worker count where --threads is 0/omitted

All commands are deterministic for a given input and seed.
";

/// Validates the observability environment and flags up front so a typo
/// fails loudly before any work starts.
fn init_observability(args: &Args) -> Result<(), String> {
    pbppm_obs::log::init_from_env()?;
    if args.switch("verbose") {
        let level = pbppm_obs::log::Level::Debug.max(pbppm_obs::log::max_level());
        pbppm_obs::log::set_level(level);
    }
    pbppm_sim::threads_from_env()?;
    if !pbppm_obs::ENABLED && args.get("metrics-out").is_some() {
        pbppm_obs::obs_warn!("--metrics-out: telemetry is compiled out; the report will be empty");
    }
    Ok(())
}

/// Writes the collected telemetry report where `--metrics-out` points.
fn export_metrics(command: &str, path: &str) -> Result<(), String> {
    let report = pbppm_obs::RunReport::collect(command);
    let json = report.to_json();
    std::fs::write(path, json.as_bytes())
        .map_err(|e| format!("--metrics-out: cannot write {path:?}: {e}"))?;
    pbppm_obs::obs_info!("wrote telemetry report to {path}");
    Ok(())
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_owned());
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = init_observability(&args) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    if args.switch("help") {
        print!("{HELP}");
        return;
    }
    let result = match command.as_str() {
        "generate" => commands::generate(&args),
        "analyze" => commands::analyze(&args),
        "train" => commands::train(&args),
        "predict" => commands::predict(&args),
        "save" => commands::save(&args),
        "load-predict" => commands::load_predict(&args),
        "audit" => commands::audit(&args),
        "serve" => pbppm_cli::serve::serve(&args),
        "simulate" => commands::simulate(&args),
        "lint" => commands::lint(&args),
        "stats" => commands::stats(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if let Some(path) = args.get("metrics-out") {
        if let Err(e) = export_metrics(&command, path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
