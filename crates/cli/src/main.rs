//! `pbppm` — the command-line interface to the PB-PPM web prefetching
//! toolkit.
//!
//! ```text
//! pbppm generate --preset nasa --out access.log    synthesize a CLF log
//! pbppm analyze  access.log                        sessions, popularity, clients
//! pbppm train    access.log --out model.json       train a prediction model
//! pbppm predict  model.json --context "/a,/b"      what to prefetch next
//! pbppm simulate access.log --model pb             full prefetching experiment
//! ```

use pbppm_cli::args::Args;
use pbppm_cli::commands;

const HELP: &str = "\
pbppm — popularity-based PPM web prefetching toolkit

USAGE:
    pbppm <command> [arguments]

COMMANDS:
    generate   Synthesize a multi-day Common Log Format server log
               --preset nasa|ucb|tiny  --out FILE  [--seed N] [--days D] [--sessions S]
    analyze    Parse a CLF log and report sessions, popularity and clients
               <access.log>  [--json]
    train      Train a prediction model from a CLF log
               <access.log>  --out model.json  [--model pb|standard|lrs]
               [--days N] [--aggressive-prune] [--no-links]
    predict    Query a trained model for prefetch candidates; separate
               multiple contexts with ';' for one batched query
               <model.json>  --context \"/a.html,/b.html\"  [--top N] [--json]
    simulate   Run a full trace-driven prefetching experiment
               (<access.log> | --preset nasa|ucb|tiny [--seed N])
               [--model pb|standard|3ppm|lrs|o1|top10|none] [--train-days N]
               [--threads N] [--json]
    help       Show this message

All commands are deterministic for a given input and seed.
";

fn main() {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().unwrap_or_else(|| "help".to_owned());
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.switch("help") {
        print!("{HELP}");
        return;
    }
    let result = match command.as_str() {
        "generate" => commands::generate(&args),
        "analyze" => commands::analyze(&args),
        "train" => commands::train(&args),
        "predict" => commands::predict(&args),
        "simulate" => commands::simulate(&args),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown command {other:?}\n\n{HELP}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
