//! End-to-end CLI flow: generate → analyze → train → predict → simulate,
//! driving the command functions directly with temp files.

use pbppm_cli::args::Args;
use pbppm_cli::bundle::TrainedBundle;
use pbppm_cli::commands;
use std::path::PathBuf;

fn args(tokens: &[&str]) -> Args {
    Args::parse(tokens.iter().map(|s| s.to_string())).expect("parse")
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pbppm-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn generate_analyze_train_predict_simulate() {
    let log = temp("flow.log");
    let model = temp("flow-model.json");
    let log_s = log.to_str().unwrap();
    let model_s = model.to_str().unwrap();

    // generate
    commands::generate(&args(&["--preset", "tiny", "--out", log_s, "--seed", "5"]))
        .expect("generate");
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(text.lines().count() > 1000, "log should have many lines");
    assert!(text.contains("GET"));

    // analyze (both modes)
    commands::analyze(&args(&[log_s])).expect("analyze");
    commands::analyze(&args(&[log_s, "--json"])).expect("analyze --json");

    // train each model kind
    for kind in ["pb", "standard", "lrs"] {
        commands::train(&args(&[
            log_s,
            "--out",
            model_s,
            "--model",
            kind,
            "--aggressive-prune",
        ]))
        .unwrap_or_else(|e| panic!("train {kind}: {e}"));
        let bundle = TrainedBundle::load(&model).expect("load bundle");
        assert!(!bundle.urls.is_empty());
        let m = bundle.instantiate().expect("instantiate");
        assert!(m.node_count() > 0);
        let _ = m.stats();
    }

    // train PB again for predict
    commands::train(&args(&[log_s, "--out", model_s])).expect("train default");

    // predict against a URL known to exist in the generated site
    commands::predict(&args(&[model_s, "--context", "/l0/p0.html", "--top", "5"]))
        .expect("predict");
    commands::predict(&args(&[model_s, "--context", "/l0/p0.html", "--json"]))
        .expect("predict --json");

    // simulate from the log and from a preset
    commands::simulate(&args(&[log_s, "--model", "pb", "--train-days", "2"]))
        .expect("simulate log");
    commands::simulate(&args(&[
        "--preset", "tiny", "--seed", "5", "--model", "lrs", "--json",
    ]))
    .expect("simulate preset");
}

#[test]
fn metrics_report_flow() {
    // A simulate run populates the global telemetry registry and spans.
    commands::simulate(&args(&["--preset", "tiny", "--seed", "7", "--model", "pb"]))
        .expect("simulate");
    let report = pbppm_obs::RunReport::collect("simulate");
    assert!(report.telemetry_enabled);
    assert!(
        report.find_span("experiment").is_some(),
        "simulate should record an experiment span"
    );
    assert!(
        report.find_span("train").is_some() && report.find_span("eval").is_some(),
        "experiment should carry its phase children"
    );

    // Write what `--metrics-out` writes, then render it with `stats`.
    let path = temp("metrics.json");
    std::fs::write(&path, report.to_json()).unwrap();
    commands::stats(&args(&[path.to_str().unwrap()])).expect("stats");
    commands::stats(&args(&[path.to_str().unwrap(), "--prom"])).expect("stats --prom");

    // Error paths: missing file, malformed file, no path at all.
    assert!(commands::stats(&args(&["/nonexistent/metrics.json"])).is_err());
    let bad = temp("bad-metrics.json");
    std::fs::write(&bad, "not json").unwrap();
    assert!(commands::stats(&args(&[bad.to_str().unwrap()])).is_err());
    assert!(commands::stats(&args(&[])).is_err());
}

#[test]
fn helpful_errors() {
    // missing required option
    assert!(commands::generate(&args(&["--preset", "tiny"])).is_err());
    // unknown preset
    let out = temp("x.log");
    assert!(commands::generate(&args(&[
        "--preset",
        "bogus",
        "--out",
        out.to_str().unwrap()
    ]))
    .is_err());
    // missing file
    assert!(commands::analyze(&args(&["/nonexistent/zzz.log"])).is_err());
    // unknown model kind
    let log = temp("err.log");
    commands::generate(&args(&[
        "--preset",
        "tiny",
        "--out",
        log.to_str().unwrap(),
        "--seed",
        "1",
    ]))
    .unwrap();
    assert!(commands::train(&args(&[
        log.to_str().unwrap(),
        "--out",
        temp("err-model.json").to_str().unwrap(),
        "--model",
        "bogus"
    ]))
    .is_err());
    // unknown option
    assert!(commands::analyze(&args(&[log.to_str().unwrap(), "--bogus", "1"])).is_err());
    // predict with a context never seen
    let model = temp("err2-model.json");
    commands::train(&args(&[
        log.to_str().unwrap(),
        "--out",
        model.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(commands::predict(&args(&[
        model.to_str().unwrap(),
        "--context",
        "/never/seen.html"
    ]))
    .is_err());
}
