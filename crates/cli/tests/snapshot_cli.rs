//! Binary snapshot CLI flow: save → load-predict must serve the same
//! bytes as the in-process model, and corrupt snapshots must fail cleanly.

use pbppm_cli::args::Args;
use pbppm_cli::bundle::TrainedBundle;
use pbppm_cli::commands;
use pbppm_core::snapshot::{ModelImage, SnapshotFile};
use std::path::PathBuf;

fn args(tokens: &[&str]) -> Args {
    Args::parse(tokens.iter().map(|s| s.to_string())).expect("parse")
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pbppm-snapcli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn render(
    file_model: &mut dyn pbppm_core::Predictor,
    interner: &pbppm_core::Interner,
    query: &Args,
) -> Vec<u8> {
    let mut buf = Vec::new();
    commands::run_predict(interner, file_model, query, &mut buf).expect("run_predict");
    buf
}

#[test]
fn save_then_load_predict_is_byte_identical_to_in_process_model() {
    let log = temp("identity.log");
    let log_s = log.to_str().unwrap();
    commands::generate(&args(&["--preset", "tiny", "--out", log_s, "--seed", "5"]))
        .expect("generate");

    // Same training pipeline twice: once into the JSON bundle (the
    // in-process reference), once through the binary codec.
    let bundle_path = temp("identity-model.json");
    let snap_path = temp("identity-model.pbss");
    commands::train(&args(&[log_s, "--out", bundle_path.to_str().unwrap()])).expect("train");
    commands::save(&args(&[log_s, "--out", snap_path.to_str().unwrap()])).expect("save");

    let bundle = TrainedBundle::load(&bundle_path).expect("load bundle");
    let snapshot = SnapshotFile::read(&snap_path).expect("read snapshot");
    assert_eq!(bundle.urls, snapshot.urls, "identical interner contents");

    let mut reference = bundle.instantiate().expect("bundle model");
    let mut restored = snapshot.instantiate().expect("snapshot model");

    // Single context, batched contexts, text and JSON renderings: every
    // output byte must match the in-process model's. Contexts come from
    // the trained URL list itself, so they are guaranteed to resolve.
    let (u0, u1) = (&snapshot.urls[0], &snapshot.urls[1]);
    let batch = format!("{u0},{u1};{u1}");
    for query in [
        args(&["--context", u0, "--top", "5"]),
        args(&["--context", &batch, "--top", "3"]),
        args(&["--context", u0, "--json"]),
    ] {
        let a = render(reference.as_mut(), &bundle.interner(), &query);
        let b = render(restored.as_mut(), &snapshot.interner(), &query);
        assert!(!a.is_empty());
        assert_eq!(a, b, "load-predict output diverged for {query:?}");
    }
}

#[test]
fn save_supports_every_model_kind() {
    let log = temp("kinds.log");
    let log_s = log.to_str().unwrap();
    commands::generate(&args(&["--preset", "tiny", "--out", log_s, "--seed", "6"]))
        .expect("generate");
    for kind in ["pb", "standard", "lrs", "o1"] {
        let path = temp(&format!("kind-{kind}.pbss"));
        let path_s = path.to_str().unwrap();
        commands::save(&args(&[log_s, "--out", path_s, "--model", kind]))
            .unwrap_or_else(|e| panic!("save {kind}: {e}"));
        let file = SnapshotFile::read(&path).expect("read back");
        let model = file.instantiate().expect("instantiate");
        assert!(model.node_count() > 0, "{kind} snapshot holds a model");
        commands::load_predict(&args(&[path_s, "--context", "/l0/p0.html", "--top", "3"]))
            .unwrap_or_else(|e| panic!("load-predict {kind}: {e}"));
    }
    assert!(commands::save(&args(&[log_s, "--out", "/tmp/x.pbss", "--model", "bogus"])).is_err());
}

#[test]
fn load_predict_rejects_corruption_cleanly() {
    let log = temp("corrupt.log");
    let log_s = log.to_str().unwrap();
    commands::generate(&args(&["--preset", "tiny", "--out", log_s, "--seed", "7"]))
        .expect("generate");
    let path = temp("corrupt.pbss");
    let path_s = path.to_str().unwrap();
    commands::save(&args(&[log_s, "--out", path_s])).expect("save");

    let good = std::fs::read(&path).unwrap();
    // A flipped payload byte and a truncation both yield clean errors.
    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x20;
    std::fs::write(&path, &flipped).unwrap();
    assert!(commands::load_predict(&args(&[path_s, "--context", "/l0/p0.html"])).is_err());
    std::fs::write(&path, &good[..good.len() - 9]).unwrap();
    assert!(commands::load_predict(&args(&[path_s, "--context", "/l0/p0.html"])).is_err());
    // And the JSON bundle loader rejects the binary format outright.
    assert!(commands::predict(&args(&[path_s, "--context", "/l0/p0.html"])).is_err());
}

#[test]
fn snapshot_carries_train_image_labels() {
    let log = temp("labels.log");
    let log_s = log.to_str().unwrap();
    commands::generate(&args(&["--preset", "tiny", "--out", log_s, "--seed", "8"]))
        .expect("generate");
    let path = temp("labels.pbss");
    commands::save(&args(&[
        log_s,
        "--out",
        path.to_str().unwrap(),
        "--model",
        "o1",
    ]))
    .expect("save o1");
    let file = SnapshotFile::read(&path).expect("read");
    assert!(matches!(file.model, ModelImage::Order1(_)));
    assert_eq!(file.model.kind_label(), "O1");
}
