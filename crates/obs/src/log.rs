//! Leveled stderr logging.
//!
//! Progress and diagnostics go through [`crate::obs_error!`] …
//! [`crate::obs_trace!`]; everything prints to **stderr** so commands that
//! emit JSON on stdout never interleave. The default level is [`Level::Warn`]
//! — quiet runs are quiet. `PBPPM_LOG=<level>` (via [`init_from_env`]) or
//! the CLI's `--verbose` raise it.

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the log level.
pub const LOG_ENV: &str = "PBPPM_LOG";

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or wrong-result conditions.
    Error = 0,
    /// Suspicious but non-fatal conditions (the default threshold).
    Warn = 1,
    /// One-line phase progress.
    Info = 2,
    /// Detailed progress (per-file, per-pass).
    Debug = 3,
    /// Per-shard / per-item firehose.
    Trace = 4,
}

impl Level {
    /// Parses a level name (case-insensitive). Errors name the accepted
    /// values — callers prepend the flag or env-var name.
    pub fn parse(raw: &str) -> Result<Level, String> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "invalid log level {other:?} (expected error, warn, info, debug, or trace)"
            )),
        }
    }

    /// Lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

static THRESHOLD: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the logging threshold.
pub fn set_level(level: Level) {
    THRESHOLD.store(level as u8, Ordering::Relaxed);
}

/// The current logging threshold.
pub fn max_level() -> Level {
    Level::from_u8(THRESHOLD.load(Ordering::Relaxed))
}

/// Whether messages at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// Applies `PBPPM_LOG` if set. Unset keeps the current threshold; an
/// invalid value is an error (no silent fallback).
pub fn init_from_env() -> Result<Level, String> {
    match std::env::var(LOG_ENV) {
        Ok(raw) => {
            let level = Level::parse(&raw).map_err(|e| format!("{LOG_ENV}: {e}"))?;
            set_level(level);
            Ok(level)
        }
        Err(_) => Ok(max_level()),
    }
}

/// Emits one line to stderr; call through the macros, which check
/// [`enabled`] first.
pub fn write(level: Level, args: std::fmt::Arguments<'_>) {
    eprintln!("[{}] {}", level.as_str(), args);
}

/// Logs at an explicit [`Level`].
#[macro_export]
macro_rules! obs_log {
    ($level:expr, $($arg:tt)*) => {
        if $crate::log::enabled($level) {
            $crate::log::write($level, ::core::format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Error`](crate::log::Level::Error).
#[macro_export]
macro_rules! obs_error {
    ($($arg:tt)*) => { $crate::obs_log!($crate::log::Level::Error, $($arg)*) };
}

/// Logs at [`Level::Warn`](crate::log::Level::Warn).
#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => { $crate::obs_log!($crate::log::Level::Warn, $($arg)*) };
}

/// Logs at [`Level::Info`](crate::log::Level::Info).
#[macro_export]
macro_rules! obs_info {
    ($($arg:tt)*) => { $crate::obs_log!($crate::log::Level::Info, $($arg)*) };
}

/// Logs at [`Level::Debug`](crate::log::Level::Debug).
#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => { $crate::obs_log!($crate::log::Level::Debug, $($arg)*) };
}

/// Logs at [`Level::Trace`](crate::log::Level::Trace).
#[macro_export]
macro_rules! obs_trace {
    ($($arg:tt)*) => { $crate::obs_log!($crate::log::Level::Trace, $($arg)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_levels_case_insensitively() {
        assert_eq!(Level::parse("info"), Ok(Level::Info));
        assert_eq!(Level::parse("WARN"), Ok(Level::Warn));
        assert_eq!(Level::parse("warning"), Ok(Level::Warn));
        assert_eq!(Level::parse(" Trace "), Ok(Level::Trace));
    }

    #[test]
    fn parse_rejects_garbage_with_a_clear_message() {
        let err = Level::parse("loud").unwrap_err();
        assert!(err.contains("loud"), "names the bad value: {err}");
        assert!(err.contains("expected"), "lists accepted values: {err}");
        assert!(Level::parse("").is_err());
        assert!(Level::parse("2").is_err());
    }

    #[test]
    fn levels_order_by_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }
}
