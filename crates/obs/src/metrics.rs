//! Thread-safe metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Shared handles are `Arc<AtomicU64>`-backed and cheap to clone; call sites
//! that sit on the sim's worker threads should instead accumulate into the
//! plain [`LocalHist`] / plain integers of their shard result and let the
//! engine [`Histogram::absorb`] the merged totals once after the join —
//! that keeps the predict path free of shared-memory traffic and makes the
//! merged values a deterministic function of the workload, not of thread
//! scheduling.
//!
//! Registry keys are `(name, label)`; labels are free-form `key=value`
//! strings (e.g. `model=PB-PPM`) or empty. Snapshots iterate a `BTreeMap`,
//! so export order is deterministic.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: bucket `i` counts values `v` with
/// `2^(i-1) <= v < 2^i` (bucket 0 holds zeros, the last bucket overflows).
pub const HIST_BUCKETS: usize = 48;

fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Exclusive upper bound of bucket `index` (`u64::MAX` for the overflow
/// bucket).
pub fn bucket_bound(index: usize) -> u64 {
    if index >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << index
    }
}

/// Upper bound of the bucket containing the `q`-quantile of a bucketed
/// distribution, given `count` total observations and `(upper bound,
/// bucket count)` pairs in ascending bound order.
///
/// This returns the containing bucket's **upper bound**, not an
/// interpolated quantile: with power-of-two buckets the answer is "the
/// p99 is below 4096 ns", never "the p99 is 3871 ns". That coarseness is
/// deliberate — bounds are stable across runs, interpolation inside a
/// bucket would be fiction. Returns 0 when `count` is 0, and the last
/// seen bound if the pairs sum to less than `count` (malformed input).
fn bucketed_quantile_bound(count: u64, q: f64, buckets: impl Iterator<Item = (u64, u64)>) -> u64 {
    if count == 0 {
        return 0;
    }
    // In [1, count] after the clamp/ceil, so the narrowing is lossless.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    let mut last_bound = 0u64;
    for (bound, n) in buckets {
        last_bound = bound;
        seen += n;
        if seen >= target {
            return bound;
        }
    }
    last_bound
}

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins gauge.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCore {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A shared fixed-bucket histogram.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Default for Histogram {
    fn default() -> Self {
        Self(Arc::new(HistCore::new()))
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        // Relaxed: independent statistic cells; a reader may see count,
        // sum, and buckets mid-update, which snapshots tolerate.
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Folds a shard-local accumulator in (one shared-memory touch per
    /// bucket instead of per observation).
    pub fn absorb(&self, local: &LocalHist) {
        for (i, &n) in local.buckets.iter().enumerate() {
            if n > 0 {
                // Relaxed: same tearing-tolerant statistics as observe().
                self.0.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        // Relaxed: same tearing-tolerant statistics as observe().
        self.0.count.fetch_add(local.count, Ordering::Relaxed);
        self.0.sum.fetch_add(local.sum, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self, name: &str, label: &str) -> HistogramSnapshot {
        let buckets = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                // Relaxed: statistic read, no ordering obligation.
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some(BucketCount {
                    le: bucket_bound(i),
                    count,
                })
            })
            .collect();
        HistogramSnapshot {
            name: name.to_owned(),
            label: label.to_owned(),
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Contention-free histogram accumulator for one worker shard: plain data,
/// mergeable in a deterministic order and absorbed into a shared
/// [`Histogram`] after the join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalHist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for LocalHist {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl LocalHist {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Folds another accumulator in.
    pub fn merge(&mut self, other: &LocalHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`); 0 for an empty accumulator. See [`bucketed_quantile_bound`]
    /// for the exact (bucket-bound, not interpolated) semantics.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        bucketed_quantile_bound(
            self.count,
            q,
            self.buckets
                .iter()
                .enumerate()
                .map(|(i, &n)| (bucket_bound(i), n)),
        )
    }
}

/// One exported counter or gauge value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricValue {
    /// Metric name (dotted, e.g. `sim.cache.demand_hits`).
    pub name: String,
    /// Free-form `key=value` label, or empty.
    pub label: String,
    /// The value.
    pub value: u64,
}

/// One non-empty histogram bucket: `count` observations below `le`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Exclusive upper bound of the bucket.
    pub le: u64,
    /// Observations in the bucket (non-cumulative).
    pub count: u64,
}

/// One exported histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Free-form `key=value` label, or empty.
    pub label: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by bound.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile. See
    /// [`bucketed_quantile_bound`] for the exact (bucket-bound, not
    /// interpolated) semantics.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        bucketed_quantile_bound(self.count, q, self.buckets.iter().map(|b| (b.le, b.count)))
    }
}

/// A deterministic point-in-time export of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by `(name, label)`.
    pub counters: Vec<MetricValue>,
    /// All gauges, sorted by `(name, label)`.
    pub gauges: Vec<MetricValue>,
    /// All histograms, sorted by `(name, label)`.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        find(&self.counters, name, label)
    }

    /// Looks up a gauge value.
    pub fn gauge(&self, name: &str, label: &str) -> Option<u64> {
        find(&self.gauges, name, label)
    }

    /// Looks up a histogram.
    pub fn histogram(&self, name: &str, label: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.name == name && h.label == label)
    }
}

fn find(values: &[MetricValue], name: &str, label: &str) -> Option<u64> {
    values
        .iter()
        .find(|v| v.name == name && v.label == label)
        .map(|v| v.value)
}

type Key = (String, String);

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, Counter>,
    gauges: BTreeMap<Key, Gauge>,
    histograms: BTreeMap<Key, Histogram>,
}

/// A registry of named metrics. Registration takes a lock; the returned
/// handles are lock-free, so register once per run (or cache the handle),
/// not per event.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `(name, label)`, creating it on
    /// first use.
    pub fn counter(&self, name: &str, label: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner
            .counters
            .entry((name.to_owned(), label.to_owned()))
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `(name, label)`.
    pub fn gauge(&self, name: &str, label: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner
            .gauges
            .entry((name.to_owned(), label.to_owned()))
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `(name, label)`.
    pub fn histogram(&self, name: &str, label: &str) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry((name.to_owned(), label.to_owned()))
            .or_default()
            .clone()
    }

    /// Exports every metric, sorted by `(name, label)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|((name, label), c)| MetricValue {
                    name: name.clone(),
                    label: label.clone(),
                    value: c.get(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|((name, label), g)| MetricValue {
                    name: name.clone(),
                    label: label.clone(),
                    value: g.get(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|((name, label), h)| h.snapshot(name, label))
                .collect(),
        }
    }

    /// Drops every registered metric (test isolation; outstanding handles
    /// keep working but detach from future snapshots).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner = Inner::default();
    }
}

/// The process-wide registry every instrumented layer publishes into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("x.hits", "");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("x.hits", "").get(), 5, "same handle");
        let g = r.gauge("x.size", "model=PB-PPM");
        g.set(42);
        g.set(7);
        assert_eq!(r.gauge("x.size", "model=PB-PPM").get(), 7);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(1), 2);
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn local_hist_merge_is_order_independent() {
        let mut a = LocalHist::default();
        let mut b = LocalHist::default();
        for v in [0, 1, 5, 1000, 123_456] {
            a.observe(v);
        }
        for v in [7, 7, 7, 1 << 40] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 9);
        assert_eq!(ab.sum(), a.sum() + b.sum());
    }

    #[test]
    fn absorb_equals_direct_observation() {
        let r = Registry::new();
        let h = r.histogram("lat", "");
        let mut local = LocalHist::default();
        for v in [3, 9, 4096] {
            local.observe(v);
        }
        h.absorb(&local);
        let direct = Registry::new();
        let d = direct.histogram("lat", "");
        for v in [3, 9, 4096] {
            d.observe(v);
        }
        assert_eq!(
            r.snapshot().histograms[0].buckets,
            direct.snapshot().histograms[0].buckets
        );
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 3 + 9 + 4096);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("z.last", "").inc();
        r.counter("a.first", "model=B").add(2);
        r.counter("a.first", "model=A").add(1);
        let snap = r.snapshot();
        let names: Vec<_> = snap
            .counters
            .iter()
            .map(|c| (c.name.as_str(), c.label.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a.first", "model=A"),
                ("a.first", "model=B"),
                ("z.last", "")
            ]
        );
        assert_eq!(snap.counter("a.first", "model=B"), Some(2));
        assert_eq!(snap.counter("missing", ""), None);
    }

    #[test]
    fn quantile_bounds() {
        let mut h = LocalHist::default();
        for _ in 0..99 {
            h.observe(3); // bucket le=4
        }
        h.observe(1 << 20); // one outlier
        assert_eq!(h.quantile_bound(0.5), 4);
        assert_eq!(h.quantile_bound(0.99), 4);
        assert_eq!(h.quantile_bound(1.0), 1 << 21);
        assert_eq!(LocalHist::default().quantile_bound(0.5), 0);
    }

    #[test]
    fn reset_clears_the_registry() {
        let r = Registry::new();
        r.counter("c", "").inc();
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }
}
