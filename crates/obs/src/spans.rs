//! Structured wall-clock spans.
//!
//! [`crate::span!`] opens a span that closes when its guard drops; spans
//! nest per thread (a guard opened while another is live becomes its
//! child), and completed top-level spans accumulate in a process-wide
//! collector that [`snapshot`] / [`drain`] expose for reports.
//!
//! When the binary installs [`crate::alloc::CountingAllocator`], each span
//! also records the process-wide bytes allocated while it was open — exact
//! for single-threaded phases, an upper bound under parallel ones.
//!
//! With the `enabled` feature off, [`enter`] is an inline no-op: the detail
//! closure is never called and no clock is read.

use serde::{Deserialize, Serialize};

/// One completed span.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (static at the call site, e.g. `train`).
    pub name: String,
    /// Space-separated `key=value` details from the macro arguments.
    pub detail: String,
    /// Start, in nanoseconds since the first span of the process.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Bytes allocated while open (0 unless the counting allocator is
    /// installed).
    pub alloc_bytes: u64,
    /// Spans that opened and closed on this thread while this one was open.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Duration in fractional milliseconds.
    pub fn millis(&self) -> f64 {
        self.dur_ns as f64 / 1e6
    }

    /// Depth-first search for the first span named `name` (self included).
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Opens a span; prefer the [`crate::span!`] macro. The guard must drop on
/// the thread that opened it (guards are neither `Send` nor stored).
#[cfg(feature = "enabled")]
pub fn enter(name: &'static str, detail: impl FnOnce() -> String) -> SpanGuard {
    imp::enter(name, detail())
}

/// Disabled-mode [`enter`]: never evaluates `detail`, never reads a clock.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn enter(_name: &'static str, _detail: impl FnOnce() -> String) -> SpanGuard {
    SpanGuard { _priv: () }
}

/// Closes its span on drop.
#[must_use = "a span closes when its guard drops; bind it with `let _span = ...`"]
pub struct SpanGuard {
    #[allow(dead_code)]
    _priv: (),
}

/// Copies the completed top-level spans collected so far.
pub fn snapshot() -> Vec<SpanRecord> {
    imp::snapshot()
}

/// Takes (and clears) the completed top-level spans.
pub fn drain() -> Vec<SpanRecord> {
    imp::drain()
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{SpanGuard, SpanRecord};
    use std::cell::RefCell;
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Root-span cap: a runaway caller cannot grow the collector without
    /// bound (children are unbounded — nesting depth is code-shaped).
    const MAX_ROOTS: usize = 4096;

    struct Frame {
        name: &'static str,
        detail: String,
        start: Instant,
        start_ns: u64,
        alloc0: u64,
        children: Vec<SpanRecord>,
    }

    thread_local! {
        static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    }

    static ROOTS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    pub(super) fn enter(name: &'static str, detail: String) -> SpanGuard {
        let start_ns = u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX);
        let frame = Frame {
            name,
            detail,
            start: Instant::now(),
            start_ns,
            alloc0: crate::alloc::allocated_bytes(),
            children: Vec::new(),
        };
        STACK.with(|s| s.borrow_mut().push(frame));
        SpanGuard { _priv: () }
    }

    impl Drop for SpanGuard {
        // Drops run during unwinding, so this body must not panic: an
        // empty stack (impossible while enter() pairs every guard) drops
        // the record instead of asserting, and a poisoned ROOTS lock is
        // recovered — span telemetry is not worth an abort.
        fn drop(&mut self) {
            let root = STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let frame = stack.pop()?;
                let record = SpanRecord {
                    name: frame.name.to_owned(),
                    detail: frame.detail,
                    start_ns: frame.start_ns,
                    dur_ns: u64::try_from(frame.start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    alloc_bytes: crate::alloc::allocated_bytes().saturating_sub(frame.alloc0),
                    children: frame.children,
                };
                match stack.last_mut() {
                    Some(parent) => {
                        parent.children.push(record);
                        None
                    }
                    None => Some(record),
                }
            });
            if let Some(record) = root {
                let mut roots = ROOTS
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if roots.len() < MAX_ROOTS {
                    roots.push(record);
                }
            }
        }
    }

    pub(super) fn snapshot() -> Vec<SpanRecord> {
        ROOTS.lock().unwrap().clone()
    }

    pub(super) fn drain() -> Vec<SpanRecord> {
        std::mem::take(&mut *ROOTS.lock().unwrap())
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::SpanRecord;

    pub(super) fn snapshot() -> Vec<SpanRecord> {
        Vec::new()
    }

    pub(super) fn drain() -> Vec<SpanRecord> {
        Vec::new()
    }
}

/// Opens a structured span closing at end of scope.
///
/// ```
/// use pbppm_obs::span;
/// {
///     let _span = span!("train", model = "PB-PPM", sessions = 42);
///     // ... work ...
/// }
/// let spans = pbppm_obs::spans::drain();
/// # if pbppm_obs::ENABLED { assert_eq!(spans[0].detail, "model=PB-PPM sessions=42"); }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::spans::enter($name, ::std::string::String::new)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::spans::enter($name, || {
            use ::std::fmt::Write as _;
            let mut detail = ::std::string::String::new();
            $(
                let _ = ::core::write!(
                    detail,
                    "{}{}={}",
                    if detail.is_empty() { "" } else { " " },
                    ::core::stringify!($key),
                    $value
                );
            )+
            detail
        })
    };
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // The collector is process-global and tests run concurrently, so each
    // test filters on its own unique span names instead of draining.
    fn named(records: &[SpanRecord], name: &str) -> Vec<SpanRecord> {
        records.iter().filter(|r| r.name == name).cloned().collect()
    }

    #[test]
    fn spans_nest_and_time_monotonically() {
        {
            let _outer = crate::span!("spans_test_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span!("spans_test_inner", step = 1);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let roots = named(&snapshot(), "spans_test_outer");
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.name, "spans_test_inner");
        assert_eq!(inner.detail, "step=1");
        assert!(inner.dur_ns > 0);
        assert!(
            inner.dur_ns <= outer.dur_ns,
            "child ({}) cannot outlast parent ({})",
            inner.dur_ns,
            outer.dur_ns
        );
        assert!(
            inner.start_ns >= outer.start_ns,
            "child starts after parent"
        );
        assert!(outer.find("spans_test_inner").is_some());
    }

    #[test]
    fn sibling_spans_attach_in_order() {
        {
            let _outer = crate::span!("spans_test_siblings");
            drop(crate::span!("spans_test_first"));
            drop(crate::span!("spans_test_second"));
        }
        let roots = named(&snapshot(), "spans_test_siblings");
        let names: Vec<_> = roots[0].children.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names, vec!["spans_test_first", "spans_test_second"]);
        let [a, b] = &roots[0].children[..] else {
            panic!("expected two children");
        };
        assert!(a.start_ns <= b.start_ns, "siblings start in program order");
    }

    #[test]
    fn detail_formats_multiple_fields() {
        {
            let _s = crate::span!("spans_test_detail", model = "PPM", days = 7);
        }
        let roots = named(&snapshot(), "spans_test_detail");
        assert_eq!(roots[0].detail, "model=PPM days=7");
    }
}
