//! The exportable run report: what `--metrics-out` writes, `pbppm stats`
//! renders, and the perf gate compares span-by-span.
//!
//! The JSON schema is versioned ([`SCHEMA_VERSION`]) and deterministic:
//! metrics are sorted by `(name, label)` and spans appear in completion
//! order, so two runs of the same workload differ only in timing fields.

use crate::metrics::MetricsSnapshot;
use crate::spans::SpanRecord;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Version of the report JSON schema.
pub const SCHEMA_VERSION: u32 = 1;

/// A complete telemetry export of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The command or tool that produced the report (e.g. `simulate`).
    pub command: String,
    /// Whether telemetry was compiled in (`false` means spans/metrics are
    /// legitimately empty).
    pub telemetry_enabled: bool,
    /// Completed top-level spans, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Registry snapshot, sorted by `(name, label)`.
    pub metrics: MetricsSnapshot,
}

impl RunReport {
    /// Captures the current global telemetry state.
    pub fn collect(command: &str) -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            command: command.to_owned(),
            telemetry_enabled: crate::ENABLED,
            spans: crate::spans::snapshot(),
            metrics: crate::metrics::global().snapshot(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }

    /// Parses a report, rejecting unknown schema versions.
    pub fn from_json(raw: &str) -> Result<RunReport, String> {
        let report: RunReport =
            serde_json::from_str(raw).map_err(|e| format!("malformed run report: {e:?}"))?;
        if report.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported run-report schema version {} (this build reads version {})",
                report.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(report)
    }

    /// Depth-first search across all top-level spans.
    pub fn find_span(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Human-readable rendering (the `pbppm stats` default view).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report (schema v{}) — command: {}{}",
            self.schema_version,
            self.command,
            if self.telemetry_enabled {
                ""
            } else {
                " [telemetry disabled]"
            }
        );
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nspans:");
            for span in &self.spans {
                render_span(&mut out, span, 1);
            }
        }
        if !self.metrics.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for c in &self.metrics.counters {
                let _ = writeln!(out, "  {:<52} {}", keyed(&c.name, &c.label), c.value);
            }
        }
        if !self.metrics.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges:");
            for g in &self.metrics.gauges {
                let _ = writeln!(out, "  {:<52} {}", keyed(&g.name, &g.label), g.value);
            }
        }
        if !self.metrics.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for h in &self.metrics.histograms {
                let _ = writeln!(
                    out,
                    "  {:<52} count={} mean={:.1} p50<{} p99<{}",
                    keyed(&h.name, &h.label),
                    h.count,
                    h.mean(),
                    h.quantile_bound(0.5),
                    h.quantile_bound(0.99),
                );
            }
        }
        out
    }

    /// Prometheus-exposition-style text rendering (`pbppm stats --prom`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.metrics.counters {
            let name = prom_name(&c.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}{} {}", prom_label(&c.label), c.value);
        }
        for g in &self.metrics.gauges {
            let name = prom_name(&g.name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name}{} {}", prom_label(&g.label), g.value);
        }
        for h in &self.metrics.histograms {
            let name = prom_name(&h.name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    prom_label_extra(&h.label, &format!("le=\"{}\"", b.le))
                );
            }
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                prom_label_extra(&h.label, "le=\"+Inf\"")
            );
            let _ = writeln!(out, "{name}_sum{} {}", prom_label(&h.label), h.sum);
            let _ = writeln!(out, "{name}_count{} {}", prom_label(&h.label), h.count);
        }
        out
    }
}

fn render_span(out: &mut String, span: &SpanRecord, depth: usize) {
    let indent = "  ".repeat(depth);
    let mut head = format!("{indent}{}", span.name);
    if !span.detail.is_empty() {
        let _ = write!(head, " [{}]", span.detail);
    }
    let _ = write!(out, "{head:<52} {:>10.1} ms", span.millis());
    if span.alloc_bytes > 0 {
        let _ = write!(out, "  (+{} KiB alloc)", span.alloc_bytes / 1024);
    }
    out.push('\n');
    for child in &span.children {
        render_span(out, child, depth + 1);
    }
}

fn keyed(name: &str, label: &str) -> String {
    if label.is_empty() {
        name.to_owned()
    } else {
        format!("{name}{{{label}}}")
    }
}

/// `sim.cache.demand_hits` → `pbppm_sim_cache_demand_hits`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("pbppm_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// `model=PB-PPM` → `{model="PB-PPM"}`; an unkeyed label gets the key
/// `label`; empty stays empty.
fn prom_label(label: &str) -> String {
    if label.is_empty() {
        return String::new();
    }
    format!("{{{}}}", prom_pair(label))
}

fn prom_label_extra(label: &str, extra: &str) -> String {
    if label.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{{{},{extra}}}", prom_pair(label))
    }
}

fn prom_pair(label: &str) -> String {
    // Labels are space-separated `key=value` pairs ("model=PB-PPM
    // cache=browser"); bare words become a generic `label`.
    label
        .split_whitespace()
        .map(|part| match part.split_once('=') {
            Some((key, value)) => format!("{key}=\"{value}\""),
            None => format!("label=\"{part}\""),
        })
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{BucketCount, HistogramSnapshot, MetricValue};

    fn sample() -> RunReport {
        RunReport {
            schema_version: SCHEMA_VERSION,
            command: "simulate".to_owned(),
            telemetry_enabled: true,
            spans: vec![SpanRecord {
                name: "experiment".to_owned(),
                detail: "model=PB-PPM".to_owned(),
                start_ns: 10,
                dur_ns: 5_000_000,
                alloc_bytes: 2048,
                children: vec![SpanRecord {
                    name: "train".to_owned(),
                    detail: String::new(),
                    start_ns: 20,
                    dur_ns: 1_000_000,
                    alloc_bytes: 0,
                    children: Vec::new(),
                }],
            }],
            metrics: MetricsSnapshot {
                counters: vec![MetricValue {
                    name: "sim.cache.demand_hits".to_owned(),
                    label: "cache=browser".to_owned(),
                    value: 42,
                }],
                gauges: vec![MetricValue {
                    name: "model.nodes".to_owned(),
                    label: "model=PB-PPM".to_owned(),
                    value: 1234,
                }],
                histograms: vec![HistogramSnapshot {
                    name: "sim.predict.latency_ns".to_owned(),
                    label: String::new(),
                    count: 3,
                    sum: 12,
                    buckets: vec![
                        BucketCount { le: 4, count: 2 },
                        BucketCount { le: 8, count: 1 },
                    ],
                }],
            },
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_report() {
        let report = sample();
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_future_schema_versions() {
        let mut report = sample();
        report.schema_version = 999;
        let err = RunReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("999"), "{err}");
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(RunReport::from_json("not json").is_err());
        assert!(RunReport::from_json("{}").is_err(), "missing fields fail");
    }

    #[test]
    fn text_rendering_shows_spans_and_metrics() {
        let text = sample().render_text();
        assert!(text.contains("experiment [model=PB-PPM]"), "{text}");
        assert!(text.contains("train"), "{text}");
        assert!(
            text.contains("sim.cache.demand_hits{cache=browser}"),
            "{text}"
        );
        assert!(text.contains("model.nodes{model=PB-PPM}"), "{text}");
        assert!(text.contains("p50<4"), "{text}");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let prom = sample().render_prometheus();
        assert!(
            prom.contains("pbppm_sim_cache_demand_hits{cache=\"browser\"} 42"),
            "{prom}"
        );
        assert!(prom.contains("# TYPE pbppm_model_nodes gauge"), "{prom}");
        // Histogram buckets are cumulative and end with +Inf.
        assert!(
            prom.contains("pbppm_sim_predict_latency_ns_bucket{le=\"4\"} 2"),
            "{prom}"
        );
        assert!(
            prom.contains("pbppm_sim_predict_latency_ns_bucket{le=\"8\"} 3"),
            "{prom}"
        );
        assert!(
            prom.contains("pbppm_sim_predict_latency_ns_bucket{le=\"+Inf\"} 3"),
            "{prom}"
        );
        assert!(
            prom.contains("pbppm_sim_predict_latency_ns_count 3"),
            "{prom}"
        );
    }

    #[test]
    fn find_span_descends_into_children() {
        let report = sample();
        assert_eq!(report.find_span("train").unwrap().dur_ns, 1_000_000);
        assert!(report.find_span("missing").is_none());
    }
}
