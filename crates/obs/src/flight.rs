//! Serving flight recorder: a fixed-capacity ring of per-request records.
//!
//! A long-running `pbppm serve` process needs to answer "what have you
//! been doing?" without logging every request to disk. The
//! [`FlightRecorder`] keeps the last `capacity` protocol requests — one
//! compact [`FlightRecord`] each — plus a power-of-two latency histogram
//! ([`LocalHist`]) per command kind, so `trace N` can replay the recent
//! past and `metrics` can report p50/p99 latencies at any moment.
//!
//! Memory is bounded **by construction**, not by policy:
//!
//! * the ring buffer is allocated once at its fixed capacity and never
//!   grows — pushing into a full recorder evicts the oldest record first;
//! * each record stores at most [`TOP_PREDICTIONS_CAP`] predictions;
//! * every stored URL is truncated to [`URL_BYTES_CAP`] bytes.
//!
//! A property test pins all three: a recorder fed an unbounded request
//! stream with adversarially long prediction lists and URLs never
//! reallocates its ring and never holds more than the per-record caps.
//!
//! This crate cannot see `pbppm-core`'s types (core depends on obs), so
//! records carry resolved URL strings and a pre-rendered match-strategy
//! label rather than `UrlId`s / `MatchStrategy` values.

use crate::metrics::LocalHist;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Most predictions one [`FlightRecord`] retains (the head of the ranked
/// top-k list).
pub const TOP_PREDICTIONS_CAP: usize = 8;

/// Most bytes of one stored URL; longer URLs are truncated at a char
/// boundary.
pub const URL_BYTES_CAP: usize = 96;

/// The protocol command (or internal event) a record or histogram belongs
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// `train` — feed one session.
    Train,
    /// `predict` — rank prefetch candidates.
    Predict,
    /// `checkpoint` — force a snapshot write.
    Checkpoint,
    /// `stats` — one-line model summary.
    Stats,
    /// `metrics` — full metrics exposition.
    Metrics,
    /// `trace` — dump recent flight records.
    Trace,
    /// `health` — ok/degraded one-liner.
    Health,
    /// `quit` — final checkpoint and exit.
    Quit,
    /// An internal model rebuild (not a protocol command; histogram only).
    Rebuild,
    /// Anything unrecognized (empty lines, protocol errors).
    Other,
}

/// Every kind, in the order their histograms are exported.
pub const COMMAND_KINDS: [CommandKind; 10] = [
    CommandKind::Train,
    CommandKind::Predict,
    CommandKind::Checkpoint,
    CommandKind::Stats,
    CommandKind::Metrics,
    CommandKind::Trace,
    CommandKind::Health,
    CommandKind::Quit,
    CommandKind::Rebuild,
    CommandKind::Other,
];

impl CommandKind {
    /// Stable lower-case label (used in record lines and metric labels).
    pub fn label(self) -> &'static str {
        match self {
            CommandKind::Train => "train",
            CommandKind::Predict => "predict",
            CommandKind::Checkpoint => "checkpoint",
            CommandKind::Stats => "stats",
            CommandKind::Metrics => "metrics",
            CommandKind::Trace => "trace",
            CommandKind::Health => "health",
            CommandKind::Quit => "quit",
            CommandKind::Rebuild => "rebuild",
            CommandKind::Other => "other",
        }
    }

    /// Classifies a protocol command word.
    pub fn parse(cmd: &str) -> Self {
        match cmd {
            "train" => CommandKind::Train,
            "predict" => CommandKind::Predict,
            "checkpoint" => CommandKind::Checkpoint,
            "stats" => CommandKind::Stats,
            "metrics" => CommandKind::Metrics,
            "trace" => CommandKind::Trace,
            "health" => CommandKind::Health,
            "quit" => CommandKind::Quit,
            _ => CommandKind::Other,
        }
    }

    fn index(self) -> usize {
        COMMAND_KINDS
            .iter()
            .position(|&k| k == self)
            .unwrap_or(COMMAND_KINDS.len() - 1)
    }
}

/// One handled request: what came in, how long it took, what went out.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Monotonic request sequence number (1-based; never reused).
    pub seq: u64,
    /// The command kind.
    pub kind: CommandKind,
    /// Wall-clock handling latency in nanoseconds.
    pub latency_ns: u64,
    /// Whether the response line started with `ok`.
    pub ok: bool,
    /// Match-strategy label the model answered with (predict requests on a
    /// built model; `None` otherwise).
    pub strategy: Option<&'static str>,
    /// Head of the ranked predictions (predict requests), capped at
    /// [`TOP_PREDICTIONS_CAP`] entries of [`URL_BYTES_CAP`]-truncated URLs.
    pub top: Vec<(String, f64)>,
}

impl FlightRecord {
    /// One-line rendering for the `trace` command:
    /// `#42 predict ok 12544ns strategy=fingerprint-index top=[0.62 /a.html, …]`.
    pub fn render(&self) -> String {
        let mut line = format!(
            "#{} {} {} {}ns",
            self.seq,
            self.kind.label(),
            if self.ok { "ok" } else { "err" },
            self.latency_ns
        );
        if let Some(strategy) = self.strategy {
            let _ = write!(line, " strategy={strategy}");
        }
        if !self.top.is_empty() {
            line.push_str(" top=[");
            for (i, (url, prob)) in self.top.iter().enumerate() {
                if i > 0 {
                    line.push_str(", ");
                }
                let _ = write!(line, "{prob:.3} {url}");
            }
            line.push(']');
        }
        line
    }
}

/// Truncates a URL to [`URL_BYTES_CAP`] bytes without splitting a UTF-8
/// character.
fn capped_url(url: &str) -> String {
    if url.len() <= URL_BYTES_CAP {
        return url.to_owned();
    }
    let mut end = URL_BYTES_CAP;
    while end > 0 && !url.is_char_boundary(end) {
        end -= 1;
    }
    url[..end].to_owned()
}

/// The fixed-capacity ring of recent [`FlightRecord`]s plus per-kind
/// latency histograms.
pub struct FlightRecorder {
    capacity: usize,
    next_seq: u64,
    records: VecDeque<FlightRecord>,
    hists: [LocalHist; COMMAND_KINDS.len()],
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` requests (at least 1). The
    /// ring is allocated here, once; it never grows afterwards.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            next_seq: 0,
            records: VecDeque::with_capacity(capacity),
            hists: std::array::from_fn(|_| LocalHist::default()),
        }
    }

    /// The fixed record capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently held (`<= capacity`).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total requests ever recorded (eviction does not decrement).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Allocated ring slots (test hook for the capacity-pinning property:
    /// must never exceed its value at construction time).
    pub fn ring_capacity(&self) -> usize {
        self.records.capacity()
    }

    /// Records one handled request, assigning it the next sequence number
    /// and folding its latency into the per-kind histogram. `top` is
    /// truncated to [`TOP_PREDICTIONS_CAP`] entries and each URL to
    /// [`URL_BYTES_CAP`] bytes; a full ring evicts its oldest record.
    pub fn push(
        &mut self,
        kind: CommandKind,
        latency_ns: u64,
        ok: bool,
        strategy: Option<&'static str>,
        top: &[(&str, f64)],
    ) {
        self.next_seq += 1;
        self.hists[kind.index()].observe(latency_ns);
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(FlightRecord {
            seq: self.next_seq,
            kind,
            latency_ns,
            ok,
            strategy,
            top: top
                .iter()
                .take(TOP_PREDICTIONS_CAP)
                .map(|&(url, prob)| (capped_url(url), prob))
                .collect(),
        });
    }

    /// Folds a latency into a kind's histogram without a ring record —
    /// for internal events ([`CommandKind::Rebuild`]) that are not
    /// protocol requests.
    pub fn observe(&mut self, kind: CommandKind, latency_ns: u64) {
        self.hists[kind.index()].observe(latency_ns);
    }

    /// The last `n` records, oldest first.
    pub fn last(&self, n: usize) -> impl Iterator<Item = &FlightRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.records.iter().skip(skip)
    }

    /// The latency histogram for one command kind.
    pub fn hist(&self, kind: CommandKind) -> &LocalHist {
        &self.hists[kind.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.push(CommandKind::Predict, i * 100, true, None, &[]);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        let seqs: Vec<u64> = r.last(10).map(|rec| rec.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "oldest evicted, order preserved");
        let last: Vec<u64> = r.last(2).map(|rec| rec.seq).collect();
        assert_eq!(last, vec![4, 5]);
    }

    #[test]
    fn histograms_split_by_kind() {
        let mut r = FlightRecorder::new(4);
        r.push(CommandKind::Train, 100, true, None, &[]);
        r.push(CommandKind::Train, 200, true, None, &[]);
        r.push(CommandKind::Predict, 50, true, None, &[]);
        r.observe(CommandKind::Rebuild, 1_000_000);
        assert_eq!(r.hist(CommandKind::Train).count(), 2);
        assert_eq!(r.hist(CommandKind::Predict).count(), 1);
        assert_eq!(r.hist(CommandKind::Rebuild).count(), 1);
        assert_eq!(r.hist(CommandKind::Checkpoint).count(), 0);
        assert_eq!(r.len(), 3, "observe() leaves the ring alone");
    }

    #[test]
    fn predictions_and_urls_are_capped() {
        let mut r = FlightRecorder::new(2);
        let long_url = "/".repeat(3 * URL_BYTES_CAP);
        let many: Vec<(&str, f64)> = (0..50).map(|_| (long_url.as_str(), 0.5)).collect();
        r.push(CommandKind::Predict, 1, true, Some("frozen-scan"), &many);
        let rec = r.last(1).next().unwrap();
        assert_eq!(rec.top.len(), TOP_PREDICTIONS_CAP);
        assert!(rec.top.iter().all(|(u, _)| u.len() <= URL_BYTES_CAP));
    }

    #[test]
    fn multibyte_urls_truncate_on_char_boundaries() {
        let url = "é".repeat(URL_BYTES_CAP); // 2 bytes per char
        let capped = capped_url(&url);
        assert!(capped.len() <= URL_BYTES_CAP);
        assert!(capped.is_char_boundary(capped.len()));
    }

    #[test]
    fn render_is_one_line_and_labelled() {
        let mut r = FlightRecorder::new(1);
        r.push(
            CommandKind::Predict,
            12_544,
            true,
            Some("fingerprint-index"),
            &[("/a.html", 0.625), ("/b.html", 0.25)],
        );
        let line = r.last(1).next().unwrap().render();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("#1 predict ok 12544ns"), "{line}");
        assert!(line.contains("strategy=fingerprint-index"), "{line}");
        assert!(line.contains("0.625 /a.html"), "{line}");
    }

    #[test]
    fn kind_parse_roundtrips_labels() {
        for kind in COMMAND_KINDS {
            if matches!(kind, CommandKind::Rebuild | CommandKind::Other) {
                continue; // not protocol commands
            }
            assert_eq!(CommandKind::parse(kind.label()), kind);
        }
        assert_eq!(CommandKind::parse("bogus"), CommandKind::Other);
    }
}
