//! Optional allocation accounting behind span byte deltas.
//!
//! A binary opts in by installing the counting allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pbppm_obs::alloc::CountingAllocator =
//!     pbppm_obs::alloc::CountingAllocator;
//! ```
//!
//! The counter is a single process-wide relaxed atomic of *allocated* bytes
//! (frees are not subtracted): span deltas then measure allocation churn,
//! which is the quantity that correlates with allocator time. Binaries that
//! do not install it — the perf-gate `throughput` binary, deliberately —
//! simply report 0. With the `enabled` feature off the allocator forwards
//! straight to [`System`] with no counting at all.

#![allow(unsafe_code)] // the workspace's sole unsafe: the GlobalAlloc impl below

use std::alloc::{GlobalAlloc, Layout, System};

#[cfg(feature = "enabled")]
static ALLOCATED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
#[cfg(feature = "enabled")]
static LIVE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
#[cfg(feature = "enabled")]
static PEAK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total bytes allocated so far (0 when no [`CountingAllocator`] is
/// installed or telemetry is compiled out).
pub fn allocated_bytes() -> u64 {
    #[cfg(feature = "enabled")]
    {
        // Relaxed: monotone statistic read, no ordering obligation.
        ALLOCATED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Currently live (allocated minus freed) bytes. Unlike
/// [`allocated_bytes`] this *does* subtract frees, so it tracks resident
/// heap rather than churn.
pub fn live_bytes() -> u64 {
    #[cfg(feature = "enabled")]
    {
        // Relaxed: approximate statistic read, no ordering obligation.
        LIVE.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// High-water mark of [`live_bytes`] since process start or the last
/// [`reset_peak_bytes`]. This is what bounded-memory claims are measured
/// against (e.g. the `ingest` bench's chunked-vs-buffered comparison).
pub fn peak_bytes() -> u64 {
    #[cfg(feature = "enabled")]
    {
        // Relaxed: watermark read, no ordering obligation.
        PEAK.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// Restarts the peak watermark from the current live level, so a caller
/// can measure the peak of one phase in isolation.
pub fn reset_peak_bytes() {
    #[cfg(feature = "enabled")]
    // Relaxed: the reset races benignly with concurrent allocation; the
    // counters never order anything.
    PEAK.store(
        LIVE.load(std::sync::atomic::Ordering::Relaxed),
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// A [`System`]-backed allocator that counts allocated bytes.
pub struct CountingAllocator;

#[cfg(feature = "enabled")]
fn count(bytes: usize) {
    use std::sync::atomic::Ordering::Relaxed;
    // Relaxed throughout: these are statistics on the allocation hot
    // path — independent counters with no ordering obligation, where any
    // fence would tax every allocation in the process.
    ALLOCATED.fetch_add(bytes as u64, Relaxed);
    let live = LIVE.fetch_add(bytes as u64, Relaxed) + bytes as u64;
    PEAK.fetch_max(live, Relaxed);
}

#[cfg(not(feature = "enabled"))]
fn count(_bytes: usize) {}

#[cfg(feature = "enabled")]
fn uncount(bytes: usize) {
    // Saturating at zero: allocations made before the counter existed (or
    // through a different allocator) may be freed through this one.
    let _ = LIVE.fetch_update(
        std::sync::atomic::Ordering::Relaxed,
        std::sync::atomic::Ordering::Relaxed,
        |live| Some(live.saturating_sub(bytes as u64)),
    );
}

#[cfg(not(feature = "enabled"))]
fn uncount(_bytes: usize) {}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        uncount(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= layout.size() {
            count(new_size - layout.size());
        } else {
            uncount(layout.size() - new_size);
        }
        System.realloc(ptr, layout, new_size)
    }
}
