//! Optional allocation accounting behind span byte deltas.
//!
//! A binary opts in by installing the counting allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: pbppm_obs::alloc::CountingAllocator =
//!     pbppm_obs::alloc::CountingAllocator;
//! ```
//!
//! The counter is a single process-wide relaxed atomic of *allocated* bytes
//! (frees are not subtracted): span deltas then measure allocation churn,
//! which is the quantity that correlates with allocator time. Binaries that
//! do not install it — the perf-gate `throughput` binary, deliberately —
//! simply report 0. With the `enabled` feature off the allocator forwards
//! straight to [`System`] with no counting at all.

#![allow(unsafe_code)] // the workspace's sole unsafe: the GlobalAlloc impl below

use std::alloc::{GlobalAlloc, Layout, System};

#[cfg(feature = "enabled")]
static ALLOCATED: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total bytes allocated so far (0 when no [`CountingAllocator`] is
/// installed or telemetry is compiled out).
pub fn allocated_bytes() -> u64 {
    #[cfg(feature = "enabled")]
    {
        ALLOCATED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(not(feature = "enabled"))]
    {
        0
    }
}

/// A [`System`]-backed allocator that counts allocated bytes.
pub struct CountingAllocator;

#[cfg(feature = "enabled")]
fn count(bytes: usize) {
    ALLOCATED.fetch_add(bytes as u64, std::sync::atomic::Ordering::Relaxed);
}

#[cfg(not(feature = "enabled"))]
fn count(_bytes: usize) {}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size.saturating_sub(layout.size()));
        System.realloc(ptr, layout, new_size)
    }
}
