//! Self-contained observability for the pbppm workspace.
//!
//! The build environment is offline, so instead of `tracing` + `prometheus`
//! this crate provides the minimal surface the simulator actually needs:
//!
//! - [`spans`] — nested wall-clock spans via the [`span!`] macro, collected
//!   into a per-run tree with an optional allocation-byte delta when the
//!   binary installs [`alloc::CountingAllocator`];
//! - [`metrics`] — a thread-safe registry of counters, gauges and
//!   power-of-two-bucket histograms, plus [`metrics::LocalHist`], the
//!   contention-free shard accumulator the eval engine merges
//!   deterministically (ascending client order, like PR 1's counters);
//! - [`flight`] — the serving flight recorder: a fixed-capacity ring of
//!   per-request records plus per-command latency histograms, behind the
//!   `trace` / `metrics` serve commands;
//! - [`log`] — leveled stderr logging gated by `PBPPM_LOG` / `--verbose`,
//!   so quiet runs stay quiet and JSON stdout never interleaves;
//! - [`report`] — the exportable run report: schema-stable JSON
//!   (`--metrics-out`), a Prometheus-style text rendering, and the
//!   human-readable view behind `pbppm stats`.
//!
//! Telemetry compiles out with `--no-default-features` (see the `enabled`
//! feature); instrumented hot paths branch on [`ENABLED`] so the disabled
//! mode costs nothing on the predict path.

// `deny`, not `forbid`: `alloc` re-allows it for the one GlobalAlloc impl.
#![deny(unsafe_code)]

pub mod alloc;
pub mod flight;
pub mod log;
pub mod metrics;
pub mod report;
pub mod spans;

/// True when the `enabled` feature compiled telemetry in. `if ENABLED`
/// blocks around timing code const-fold away in the disabled build.
pub const ENABLED: bool = cfg!(feature = "enabled");

pub use flight::{CommandKind, FlightRecord, FlightRecorder};
pub use metrics::{
    global, BucketCount, Counter, Gauge, Histogram, HistogramSnapshot, LocalHist, MetricValue,
    MetricsSnapshot, Registry,
};
pub use report::RunReport;
pub use spans::SpanRecord;
