//! Golden-file test pinning `RunReport::render_prometheus` (the
//! exposition `pbppm stats --prom` and `metrics --prom` serve).
//!
//! The fixture is the v1 JSON golden (`run_report_v1.json`) — so the two
//! goldens can never drift apart — and this file pins its exact
//! Prometheus rendering: metric-name mangling, label quoting, cumulative
//! `le` buckets ending in `+Inf`, and the `_sum`/`_count` lines scrapers
//! rely on. If the rendering changes intentionally, regenerate with:
//!
//! ```sh
//! cargo test -p pbppm-obs --test golden_prometheus -- --ignored regenerate
//! ```

use pbppm_obs::RunReport;

const JSON_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/run_report_v1.json"
);
const PROM_GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/run_report_v1.prom"
);

fn rendered() -> String {
    let json = std::fs::read_to_string(JSON_GOLDEN)
        .unwrap_or_else(|e| panic!("cannot read golden file {JSON_GOLDEN}: {e}"));
    RunReport::from_json(&json)
        .expect("JSON golden must parse")
        .render_prometheus()
}

#[test]
fn prometheus_rendering_matches_golden() {
    let golden = std::fs::read_to_string(PROM_GOLDEN)
        .unwrap_or_else(|e| panic!("cannot read golden file {PROM_GOLDEN}: {e}"));
    assert_eq!(
        rendered().trim(),
        golden.trim(),
        "render_prometheus output no longer matches the checked-in golden — \
         exposition drift; see the module docs for how to proceed"
    );
}

/// The structural properties scrapers depend on, asserted directly so a
/// regenerated golden cannot silently lose them.
#[test]
fn prometheus_rendering_is_structurally_sound() {
    let prom = rendered();

    // Name mangling: dots (and any non-alphanumerics) become underscores
    // under a `pbppm_` prefix; label values are double-quoted.
    assert!(
        prom.contains("pbppm_sim_cache_demand_hits{model=\"PB-PPM\",cache=\"browser\"} 4321"),
        "{prom}"
    );
    // An empty label renders with no braces at all.
    assert!(
        prom.contains("\npbppm_trace_parse_accepted 10000\n"),
        "{prom}"
    );
    // Every series is preceded by a TYPE header of the right kind.
    assert!(prom.contains("# TYPE pbppm_sim_cache_demand_hits counter"));
    assert!(prom.contains("# TYPE pbppm_model_nodes gauge"));
    assert!(prom.contains("# TYPE pbppm_sim_predict_latency_ns histogram"));

    // Histogram buckets are cumulative: raw counts (2, 1) expose as 2
    // then 3, and the +Inf bucket equals the total count.
    let bucket =
        |le: &str| format!("pbppm_sim_predict_latency_ns_bucket{{model=\"PB-PPM\",le=\"{le}\"}}");
    assert!(prom.contains(&format!("{} 2", bucket("512"))), "{prom}");
    assert!(prom.contains(&format!("{} 3", bucket("1024"))), "{prom}");
    assert!(prom.contains(&format!("{} 3", bucket("+Inf"))), "{prom}");
    assert!(prom.contains("pbppm_sim_predict_latency_ns_sum{model=\"PB-PPM\"} 1536"));
    assert!(prom.contains("pbppm_sim_predict_latency_ns_count{model=\"PB-PPM\"} 3"));
}

/// Rewrites the Prometheus golden from the JSON golden's rendering. Run
/// explicitly (`-- --ignored regenerate`) after an intentional change to
/// `render_prometheus`.
#[test]
#[ignore = "regenerates the golden file; run after intentional rendering changes"]
fn regenerate() {
    std::fs::write(PROM_GOLDEN, rendered()).unwrap();
}
