//! Property test pinning the flight recorder's memory to its fixed
//! capacity regardless of request count (ISSUE 7 acceptance criterion).
//!
//! The recorder's whole point is that a serve loop can run for months
//! without its tracing state growing: the ring is allocated once, pushes
//! evict before inserting, and per-record payloads (prediction lists,
//! URLs) are clamped. These properties drive arbitrary request streams —
//! far more requests than capacity, adversarially long URLs and
//! prediction lists — and assert the bounds hold at every step.

use pbppm_obs::flight::{TOP_PREDICTIONS_CAP, URL_BYTES_CAP};
use pbppm_obs::{CommandKind, FlightRecorder};
use proptest::prelude::*;

fn any_kind() -> impl Strategy<Value = CommandKind> {
    prop_oneof![
        Just(CommandKind::Train),
        Just(CommandKind::Predict),
        Just(CommandKind::Checkpoint),
        Just(CommandKind::Stats),
        Just(CommandKind::Metrics),
        Just(CommandKind::Trace),
        Just(CommandKind::Health),
        Just(CommandKind::Quit),
        Just(CommandKind::Other),
    ]
}

/// One arbitrary request: kind, latency, outcome, and an oversized
/// prediction list (up to 3x the retained cap, URLs up to ~4x the byte
/// cap, including multi-byte characters that straddle the boundary).
fn any_request() -> impl Strategy<Value = (CommandKind, u64, bool, Vec<(String, f64)>)> {
    (
        any_kind(),
        // Nanosecond latencies up to ~17 minutes per request — generous,
        // and small enough that the histogram's running sum cannot
        // overflow over a whole stream.
        0u64..1_000_000_000_000,
        (0u8..2).prop_map(|b| b == 1),
        prop::collection::vec(
            ("[a-z/é€]{0,130}", 0.0f64..1.0f64),
            0..(3 * TOP_PREDICTIONS_CAP),
        ),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn memory_is_capacity_bounded_for_any_request_stream(
        capacity in 1usize..32,
        requests in prop::collection::vec(any_request(), 0..200),
    ) {
        let mut rec = FlightRecorder::new(capacity);
        let allocated = rec.ring_capacity();
        prop_assert!(allocated >= capacity);

        for (i, (kind, latency, ok, top)) in requests.iter().enumerate() {
            let borrowed: Vec<(&str, f64)> =
                top.iter().map(|(u, p)| (u.as_str(), *p)).collect();
            rec.push(*kind, *latency, *ok, None, &borrowed);

            // The ring never holds more than `capacity` records and its
            // backing allocation never grows past construction time.
            prop_assert!(rec.len() <= capacity);
            prop_assert_eq!(rec.ring_capacity(), allocated,
                "ring reallocated after {} pushes", i + 1);

            // Per-record payload caps hold for every retained record.
            for r in rec.last(capacity) {
                prop_assert!(r.top.len() <= TOP_PREDICTIONS_CAP);
                for (url, _) in &r.top {
                    prop_assert!(url.len() <= URL_BYTES_CAP);
                }
            }
        }

        // Nothing was silently dropped from the books: the recorder saw
        // every request even though it retains only the tail.
        prop_assert_eq!(rec.total(), requests.len() as u64);
        prop_assert_eq!(rec.len(), requests.len().min(capacity));

        // Sequence numbers of the retained tail are the last `len` ones,
        // in order — eviction is strictly oldest-first.
        let seqs: Vec<u64> = rec.last(capacity).map(|r| r.seq).collect();
        let expect_start = requests.len() as u64 - seqs.len() as u64 + 1;
        let expected: Vec<u64> = (expect_start..=requests.len() as u64).collect();
        prop_assert_eq!(seqs, expected);
    }

    #[test]
    fn histogram_counts_partition_the_stream(
        requests in prop::collection::vec((any_kind(), 0u64..1_000_000_000_000), 0..100),
    ) {
        let mut rec = FlightRecorder::new(4);
        for (kind, latency) in &requests {
            rec.push(*kind, *latency, true, None, &[]);
        }
        let hist_total: u64 = pbppm_obs::flight::COMMAND_KINDS
            .iter()
            .map(|&k| rec.hist(k).count())
            .sum();
        prop_assert_eq!(hist_total, requests.len() as u64);
    }
}
