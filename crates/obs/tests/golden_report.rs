//! Golden-file test pinning the `--metrics-out` JSON schema (version 1).
//!
//! The golden file is the exact serialization of a representative report.
//! If `RunReport`'s shape, field names, or serialization order change, the
//! round-trip below diverges from the checked-in file — which means every
//! external consumer of `run_metrics.json` breaks. Either revert the
//! schema change or bump [`pbppm_obs::report::SCHEMA_VERSION`] and
//! regenerate the golden:
//!
//! ```sh
//! cargo test -p pbppm-obs --test golden_report -- --ignored regenerate
//! ```

use pbppm_obs::{
    BucketCount, HistogramSnapshot, MetricValue, MetricsSnapshot, RunReport, SpanRecord,
};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/run_report_v1.json"
);

/// A fixed report exercising every schema field: nested spans with detail
/// and allocation deltas, counters/gauges with labels, and a histogram.
fn sample() -> RunReport {
    RunReport {
        schema_version: pbppm_obs::report::SCHEMA_VERSION,
        command: "simulate --preset tiny --model pb".to_owned(),
        telemetry_enabled: true,
        spans: vec![SpanRecord {
            name: "experiment".to_owned(),
            detail: "model=PB-PPM trace=tiny days=3".to_owned(),
            start_ns: 1_000,
            dur_ns: 7_500_000,
            alloc_bytes: 65_536,
            children: vec![
                SpanRecord {
                    name: "train".to_owned(),
                    detail: "model=PB-PPM sessions=120".to_owned(),
                    start_ns: 2_000,
                    dur_ns: 3_000_000,
                    alloc_bytes: 32_768,
                    children: Vec::new(),
                },
                SpanRecord {
                    name: "eval".to_owned(),
                    detail: "model=PB-PPM".to_owned(),
                    start_ns: 3_000,
                    dur_ns: 4_000_000,
                    alloc_bytes: 0,
                    children: Vec::new(),
                },
            ],
        }],
        metrics: MetricsSnapshot {
            counters: vec![
                MetricValue {
                    name: "sim.cache.demand_hits".to_owned(),
                    label: "model=PB-PPM cache=browser".to_owned(),
                    value: 4_321,
                },
                MetricValue {
                    name: "trace.parse.accepted".to_owned(),
                    label: String::new(),
                    value: 10_000,
                },
            ],
            gauges: vec![MetricValue {
                name: "model.nodes".to_owned(),
                label: "model=PB-PPM".to_owned(),
                value: 5_774,
            }],
            histograms: vec![HistogramSnapshot {
                name: "sim.predict.latency_ns".to_owned(),
                label: "model=PB-PPM".to_owned(),
                count: 3,
                sum: 1_536,
                buckets: vec![
                    BucketCount { le: 512, count: 2 },
                    BucketCount { le: 1024, count: 1 },
                ],
            }],
        },
    }
}

fn read_golden() -> String {
    std::fs::read_to_string(GOLDEN_PATH)
        .unwrap_or_else(|e| panic!("cannot read golden file {GOLDEN_PATH}: {e}"))
}

#[test]
fn golden_file_parses_and_serializes_back_identically() {
    let golden = read_golden();
    let report = RunReport::from_json(&golden).expect("golden file must parse");
    assert_eq!(
        report.to_json().trim(),
        golden.trim(),
        "RunReport serialization no longer matches the v1 golden file — \
         schema drift; see the module docs for how to proceed"
    );
}

#[test]
fn golden_file_matches_the_in_memory_sample() {
    let report = RunReport::from_json(&read_golden()).expect("golden file must parse");
    assert_eq!(report, sample(), "golden content drifted from sample()");
}

#[test]
fn golden_file_renders_in_both_output_formats() {
    let report = RunReport::from_json(&read_golden()).expect("golden file must parse");
    let text = report.render_text();
    assert!(text.contains("experiment [model=PB-PPM trace=tiny days=3]"));
    assert!(text.contains("model.nodes{model=PB-PPM}"));
    let prom = report.render_prometheus();
    assert!(prom.contains("pbppm_sim_cache_demand_hits{model=\"PB-PPM\",cache=\"browser\"} 4321"));
    assert!(prom.contains("pbppm_sim_predict_latency_ns_bucket{model=\"PB-PPM\",le=\"+Inf\"} 3"));
}

/// Rewrites the golden file from [`sample`]. Run explicitly (`-- --ignored
/// regenerate`) after an intentional schema change, and bump
/// `SCHEMA_VERSION` alongside.
#[test]
#[ignore = "regenerates the golden file; run after intentional schema changes"]
fn regenerate() {
    let json = sample().to_json();
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
    std::fs::write(GOLDEN_PATH, json + "\n").unwrap();
}
