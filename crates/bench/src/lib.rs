//! # pbppm-bench — the table/figure regeneration harness
//!
//! One binary per table and figure of the paper's evaluation:
//!
//! | binary   | regenerates |
//! |----------|-------------|
//! | `fig1`   | Figure 1 — the didactic standard-vs-PB tree shapes |
//! | `fig2`   | Figure 2 — popular fraction of prefetch hits, path utilization |
//! | `fig3`   | Figure 3 — hit ratios and latency reductions, both traces |
//! | `fig4`   | Figure 4 — node growth and traffic increments, both traces |
//! | `fig5`   | Figure 5 — server↔proxy hit ratios and traffic, 1–32 clients |
//! | `table1` | Table 1 — space in nodes per model, NASA-like, days 1–7 |
//! | `table2` | Table 2 — space in nodes per model, UCB-like, days 1–5 |
//! | `ablation` | PB-PPM design-choice ablations (links, pruning, heights) |
//! | `threshold` | every model at matched prefetch size caps |
//! | `related` | order-1 Markov, Top-N, and online PB-PPM comparisons |
//! | `quality` | offline prediction accuracy (coverage, precision@k, MRR) |
//! | `network` | Crovella–Barford network effects under offered load |
//! | `throughput` | predict/simulate throughput + the perf-regression gate |
//! | `loadgen` | open-loop latency of the sharded serve core + its gate |
//! | `ingest` | parallel log→model build-pipeline throughput + its gate |
//! | `all`    | everything above, in sequence |
//!
//! Every binary prints an aligned text table *and* writes machine-readable
//! JSON under `results/`. All runs are deterministic: the workload seed
//! defaults to 1 (override with `PBPPM_SEED`), and experiment cells are
//! executed in parallel over the machine's cores.

#![forbid(unsafe_code)]

use pbppm_sim::{parallel_map, ExperimentConfig, ModelSpec, RunResult};
use pbppm_trace::{Trace, WorkloadConfig};
use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// The workload seed, from `PBPPM_SEED` (default 1).
pub fn seed() -> u64 {
    std::env::var("PBPPM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Generates the NASA-like trace used by every NASA experiment.
pub fn nasa_trace() -> Trace {
    WorkloadConfig::nasa_like(seed()).generate()
}

/// Generates the UCB-like trace used by every UCB experiment.
pub fn ucb_trace() -> Trace {
    WorkloadConfig::ucb_like(seed()).generate()
}

/// The paper's three contenders, in the order the tables print them.
///
/// * the standard model, unbounded height (§4.1: "we did not limit the
///   height … an upper bound of prediction accuracy");
/// * the LRS model;
/// * popularity-based PPM with both space optimizations (see DESIGN.md §4).
pub fn paper_models() -> Vec<(&'static str, ModelSpec)> {
    vec![
        ("PPM", ModelSpec::Standard { max_height: None }),
        ("LRS", ModelSpec::Lrs),
        ("PB-PPM", ModelSpec::pb_paper(true)),
    ]
}

/// One experiment cell: a model trained on `days` days of `trace`.
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Model label.
    pub model: String,
    /// Training-window length in days.
    pub days: usize,
    /// The full run result.
    pub result: RunResult,
}

/// Runs the full (model × training-days) grid in parallel.
pub fn sweep(trace: &Trace, models: &[(&str, ModelSpec)], days: &[usize]) -> Vec<Cell> {
    let jobs: Vec<(String, ModelSpec, usize)> = days
        .iter()
        .flat_map(|&d| {
            models
                .iter()
                .map(move |(label, spec)| (label.to_string(), spec.clone(), d))
        })
        .collect();
    parallel_map(&jobs, |(label, spec, d)| {
        let cfg = ExperimentConfig::paper_default(spec.clone(), *d);
        Cell {
            model: label.clone(),
            days: *d,
            result: pbppm_sim::run_experiment(trace, &cfg),
        }
    })
}

/// A printable result table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table caption (printed as a header).
    pub title: String,
    /// Column headers; the first column is the row label.
    pub headers: Vec<String>,
    /// Rows: label + one string per remaining header.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(s, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(s, "  {:>width$}", cell, width = widths[i]);
                }
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Directory JSON results are written to (`results/` beside the workspace
/// root, created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("PBPPM_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            // crates/bench -> workspace root
            let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            p.pop();
            p.pop();
            p.push("results");
            p
        });
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Writes a serializable value as pretty JSON under `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["model", "nodes", "hit"]);
        t.row(vec!["PPM".into(), "123456".into(), "43.1%".into()]);
        t.row(vec!["PB-PPM".into(), "99".into(), "48.0%".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("PPM"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.431), "43.1%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn paper_models_are_three() {
        let m = paper_models();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].0, "PPM");
        assert_eq!(m[2].0, "PB-PPM");
    }

    #[test]
    fn sweep_produces_model_by_day_grid() {
        let trace = WorkloadConfig::tiny(3).generate();
        let models = paper_models();
        let cells = sweep(&trace, &models, &[1, 2]);
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0].days, 1);
        assert_eq!(cells[0].model, "PPM");
        assert_eq!(cells[5].days, 2);
        assert_eq!(cells[5].model, "PB-PPM");
        assert!(cells.iter().all(|c| c.result.eval_requests > 0));
    }
}
pub mod experiments;
