//! Parse/train/end-to-end throughput of the parallel ingestion
//! pipeline; see `pbppm_bench::experiments::ingest`.

#![forbid(unsafe_code)]

// Peak-heap tracking is the point of this bench: the chunked parallel
// parse must not out-allocate the buffer-everything sequential one.
#[global_allocator]
static ALLOC: pbppm_obs::alloc::CountingAllocator = pbppm_obs::alloc::CountingAllocator;

fn main() {
    pbppm_bench::experiments::ingest::run();
}
