//! Regenerates every table and figure of the paper in sequence (the same
//! code paths as the individual binaries; results land under `results/`).

#![forbid(unsafe_code)]

fn main() {
    use pbppm_bench::experiments as e;
    let steps: [(&str, fn()); 15] = [
        ("fig1", e::fig1::run),
        ("table1", e::table1::run),
        ("table2", e::table2::run),
        ("fig2", e::fig2::run),
        ("fig3", e::fig3::run),
        ("fig4", e::fig4::run),
        ("fig5", e::fig5::run),
        ("ablation", e::ablation::run),
        ("threshold", e::threshold::run),
        ("related", e::related::run),
        ("quality", e::quality::run),
        ("network", e::network::run),
        ("throughput", e::throughput::run),
        ("loadgen", e::loadgen::run),
        // Run from here the peak-heap columns read 0 (no counting
        // allocator in this binary); the dedicated `ingest` bin measures
        // them for the perf gate.
        ("ingest", e::ingest::run),
    ];
    for (name, run) in steps {
        println!("\n################ {name} ################");
        run();
    }
    println!("\nall experiments regenerated; JSON results in results/");
}
