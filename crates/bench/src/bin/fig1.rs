//! See [`pbppm_bench::experiments::fig1`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::fig1::run();
}
