//! See [`pbppm_bench::experiments::fig1`].

fn main() {
    pbppm_bench::experiments::fig1::run();
}
