//! See [`pbppm_bench::experiments::network`].

fn main() {
    pbppm_bench::experiments::network::run();
}
