//! See [`pbppm_bench::experiments::network`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::network::run();
}
