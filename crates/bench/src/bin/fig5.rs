//! See [`pbppm_bench::experiments::fig5`].

fn main() {
    pbppm_bench::experiments::fig5::run();
}
