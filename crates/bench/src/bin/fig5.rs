//! See [`pbppm_bench::experiments::fig5`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::fig5::run();
}
