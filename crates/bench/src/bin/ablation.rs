//! See [`pbppm_bench::experiments::ablation`].

fn main() {
    pbppm_bench::experiments::ablation::run();
}
