//! See [`pbppm_bench::experiments::ablation`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::ablation::run();
}
