//! Measures prediction and simulation throughput and writes the perf
//! baseline (`BENCH_throughput.json`). With `PBPPM_PERF_BASELINE` set it
//! doubles as the perf-regression gate — see `scripts/perf-gate.sh`.

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::throughput::run();
}
