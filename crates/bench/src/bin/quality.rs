//! See [`pbppm_bench::experiments::quality`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::quality::run();
}
