//! See [`pbppm_bench::experiments::quality`].

fn main() {
    pbppm_bench::experiments::quality::run();
}
