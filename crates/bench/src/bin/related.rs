//! See [`pbppm_bench::experiments::related`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::related::run();
}
