//! See [`pbppm_bench::experiments::related`].

fn main() {
    pbppm_bench::experiments::related::run();
}
