//! See [`pbppm_bench::experiments::fig4`].

fn main() {
    pbppm_bench::experiments::fig4::run();
}
