//! See [`pbppm_bench::experiments::fig4`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::fig4::run();
}
