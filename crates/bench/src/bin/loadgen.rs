//! Open-loop load generation against the sharded serving core; see
//! `pbppm_bench::experiments::loadgen`.

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::loadgen::run();
}
