//! See [`pbppm_bench::experiments::fig3`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::fig3::run();
}
