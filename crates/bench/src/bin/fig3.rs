//! See [`pbppm_bench::experiments::fig3`].

fn main() {
    pbppm_bench::experiments::fig3::run();
}
