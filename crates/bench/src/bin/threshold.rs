//! See [`pbppm_bench::experiments::threshold`].

fn main() {
    pbppm_bench::experiments::threshold::run();
}
