//! See [`pbppm_bench::experiments::threshold`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::threshold::run();
}
