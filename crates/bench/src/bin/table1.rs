//! See [`pbppm_bench::experiments::table1`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::table1::run();
}
