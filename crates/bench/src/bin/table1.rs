//! See [`pbppm_bench::experiments::table1`].

fn main() {
    pbppm_bench::experiments::table1::run();
}
