//! See [`pbppm_bench::experiments::fig2`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::fig2::run();
}
