//! See [`pbppm_bench::experiments::fig2`].

fn main() {
    pbppm_bench::experiments::fig2::run();
}
