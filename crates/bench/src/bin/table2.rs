//! See [`pbppm_bench::experiments::table2`].

fn main() {
    pbppm_bench::experiments::table2::run();
}
