//! See [`pbppm_bench::experiments::table2`].

#![forbid(unsafe_code)]

fn main() {
    pbppm_bench::experiments::table2::run();
}
