//! Figure 2 — (left) percentage of prefetch hits that are popular
//! documents, and (right) path utilization rates, versus training days on
//! the NASA-like trace.
//!
//! The paper uses the height-3 standard model ("3-PPM") here, alongside LRS
//! and PB-PPM. Shapes to reproduce:
//!
//! * popular documents account for ≥ 60% of prefetch hits in every model,
//!   with PB-PPM the highest (70–75% in the paper) and the standard model
//!   the lowest;
//! * path utilization of 3-PPM and LRS *decays* as days accumulate (3-PPM
//!   below 20%, LRS toward 40% in the paper), while PB-PPM stays far above
//!   both (92–100% in the paper).

use crate::{nasa_trace, pct, sweep, write_json, Table};
use pbppm_sim::ModelSpec;

pub fn run() {
    let trace = nasa_trace();
    let days: Vec<usize> = (1..=7).collect();
    let models = vec![
        (
            "3-PPM",
            ModelSpec::Standard {
                max_height: Some(3),
            },
        ),
        ("LRS", ModelSpec::Lrs),
        ("PB-PPM", ModelSpec::pb_paper(true)),
    ];
    let cells = sweep(&trace, &models, &days);

    let mut headers = vec!["days".to_string()];
    headers.extend(days.iter().map(|d| d.to_string()));
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut left = Table::new(
        "Figure 2 (left) — popular share of prefetch hits, nasa-like",
        &headers,
    );
    let mut right = Table::new(
        "Figure 2 (right) — path utilization rate, nasa-like",
        &headers,
    );
    for (label, _) in &models {
        let mut lrow = vec![label.to_string()];
        let mut rrow = vec![label.to_string()];
        for &d in &days {
            let cell = cells
                .iter()
                .find(|c| c.model == *label && c.days == d)
                .expect("cell");
            lrow.push(pct(cell.result.popular_prefetch_fraction()));
            rrow.push(pct(cell.result.path_utilization()));
        }
        left.row(lrow);
        right.row(rrow);
    }
    left.print();
    right.print();
    write_json("fig2", &cells);
}
