//! `throughput` — the performance experiment behind `scripts/perf-gate.sh`.
//!
//! Three measurements per paper model (PPM, LRS, PB-PPM) at day-7 NASA
//! tree sizes:
//!
//! 1. **single-click predict latency** — the frozen-arena serving path
//!    ([`Predictor::predict_ro`]) against both the retained pointer-tree
//!    fast path (`predict_pointer`) and the reference scan
//!    (`predict_reference`), nanoseconds per context, plus heap bytes per
//!    node for the pointer arena and the frozen SoA/CSR arena;
//! 2. **batched predict throughput** — [`Predictor::predict_many`] over the
//!    whole context set, clicks per second;
//! 3. **end-to-end experiment throughput** — [`pbppm_sim::run_experiment`]
//!    serial (`threads = 1`) versus parallel (`threads = 0`, auto),
//!    evaluated requests per second;
//! 4. **serve-loop predict latency** — the real `pbppm serve` line
//!    protocol driven in-process ([`ServeSession::handle_line`]): parse,
//!    predict, format, flight-record per request, reported as p50/p99
//!    nanoseconds and gated on the p99 tail.
//!
//! Results are printed as tables and written both to
//! `results/throughput.json` and to `BENCH_throughput.json` at the
//! workspace root (the committed perf baseline). When
//! `PBPPM_PERF_BASELINE` names a baseline JSON, the run compares itself
//! against it and **exits non-zero** if any gated metric regressed by more
//! than 15% — see `scripts/perf-gate.sh`.

use crate::{nasa_trace, write_json, Table};
use pbppm_core::{
    LrsPpm, PbConfig, PbPpm, PopularityTable, PredictUsage, Prediction, Predictor, PruneConfig,
    StandardPpm, UrlId,
};
use pbppm_serve::{ServeOptions, ServeSession};
use pbppm_sim::{resolve_threads, run_experiment, ExperimentConfig, ModelSpec};
use pbppm_trace::{sessionize, Session, SessionizerConfig, Trace};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Training window: the deepest trees of the Table-1 sweep.
const TRAIN_DAYS: usize = 7;
/// Allowed slowdown before the gate fails (15%).
const GATE_TOLERANCE: f64 = 0.15;
/// Timing rounds for the serve-loop latency percentiles (min across
/// rounds, the same noise-robust statistic as `secs_per_pass`).
const SERVE_ROUNDS: usize = 5;
/// Sessions replayed into the serve loop before timing — enough to cover
/// the prediction working set (drawn from the first 400 sessions) while
/// keeping the one-time setup cheap.
const SERVE_TRAIN_SESSIONS: usize = 1500;

/// One model's prediction-throughput measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelThroughput {
    /// Model label ("PPM", "LRS", "PB-PPM").
    pub model: String,
    /// Tree size the model answered from.
    pub nodes: usize,
    /// Serving fast path ([`Predictor::predict_ro`]), which answers from
    /// the frozen SoA/CSR arena — nanoseconds per single-click predict.
    pub frozen_ns_per_click: f64,
    /// The pre-arena fast path (`predict_pointer`): the same match
    /// strategy served from the pointer tree, nanoseconds per click.
    pub pointer_ns_per_click: f64,
    /// Retained reference scan, nanoseconds per single-click predict.
    pub reference_ns_per_click: f64,
    /// `reference / frozen` — the serving path's speedup over the scan.
    /// Hard-gated `>= 1.0` for every model: the fast path must never lose
    /// to the reference it replaces.
    pub fast_path_speedup: f64,
    /// `pointer / frozen` — what the frozen arena buys over the pointer
    /// tree at identical match strategy.
    pub frozen_vs_pointer_speedup: f64,
    /// Pointer-tree arena heap, bytes per alive node.
    pub heap_bytes_per_node_pointer: f64,
    /// Frozen SoA/CSR arena heap, bytes per node.
    pub heap_bytes_per_node_frozen: f64,
    /// `predict_many` batched throughput, clicks per second.
    pub batched_clicks_per_sec: f64,
}

/// Best observed wall time of one experiment phase (a telemetry span).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSecs {
    /// Span name ("sessionize", "baseline", "train", "eval", …).
    pub phase: String,
    /// Fastest observed duration across the timing repeats, seconds.
    pub secs: f64,
}

/// One model's end-to-end experiment timings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalThroughput {
    /// Model label.
    pub model: String,
    /// Worker count the parallel run resolved to.
    pub threads: usize,
    /// Wall-clock seconds of the serial (`threads = 1`) experiment.
    pub serial_secs: f64,
    /// Wall-clock seconds of the parallel (auto-threaded) experiment.
    pub parallel_secs: f64,
    /// Evaluated requests per second, serial.
    pub serial_requests_per_sec: f64,
    /// Evaluated requests per second, parallel.
    pub parallel_requests_per_sec: f64,
    /// Per-phase breakdown from the experiment's telemetry spans; lets a
    /// gate failure name the phase that regressed, not just the model.
    pub phases: Vec<PhaseSecs>,
}

/// Serve-loop predict latency through the real `pbppm serve` line
/// protocol: context parsing, interner lookup, prediction, response
/// formatting and flight-recording — everything a client waits on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeLatency {
    /// Predict requests timed per round (= the working-set size).
    pub requests: usize,
    /// Median per-request latency of the best round, nanoseconds.
    pub predict_p50_ns: f64,
    /// 99th-percentile per-request latency of the best round,
    /// nanoseconds. This is the gated tail: single slow requests are what
    /// a prefetching client actually notices.
    pub predict_p99_ns: f64,
}

/// Everything one `throughput` run measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Trace the measurements ran on.
    pub trace: String,
    /// Training-window length in days.
    pub train_days: usize,
    /// Contexts in the prediction working set.
    pub contexts: usize,
    /// Per-model prediction throughput.
    pub models: Vec<ModelThroughput>,
    /// Per-model end-to-end experiment throughput.
    pub eval: Vec<EvalThroughput>,
    /// Serve-loop predict latency; `None` when the measurement could not
    /// run (unwritable scratch dir). Baselines written before this
    /// section existed read back as `None` — see [`gate`].
    pub serve: Option<ServeLatency>,
}

/// Times one pass, then enough repetitions for ~0.5 s of samples split
/// into chunks, and returns the fastest chunk's mean seconds per pass.
/// The minimum is robust to transient scheduler/frequency noise, which a
/// single grand mean is not — the gate's 15% threshold needs run-to-run
/// jitter well below that. The checksum keeps the work alive.
fn secs_per_pass(mut pass: impl FnMut() -> u64) -> f64 {
    let t0 = Instant::now();
    let mut checksum = pass();
    let once = t0.elapsed().as_secs_f64();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // positive, then clamped
    let reps = ((0.5 / once.max(1e-9)) as usize).clamp(5, 60);
    let per_chunk = reps.div_ceil(5);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..per_chunk {
            checksum = checksum.wrapping_add(pass());
        }
        best = best.min(t.elapsed().as_secs_f64() / per_chunk as f64);
    }
    std::hint::black_box(checksum);
    best
}

/// Seconds for one pass over all contexts through a per-click predictor.
fn time_clicks(
    contexts: &[Vec<UrlId>],
    mut predict: impl FnMut(&[UrlId], &mut Vec<Prediction>),
) -> f64 {
    let mut out: Vec<Prediction> = Vec::new();
    secs_per_pass(|| {
        let mut emitted = 0u64;
        for c in contexts {
            predict(c, &mut out);
            emitted += out.len() as u64;
        }
        emitted
    })
}

/// Seconds for one batched pass over all contexts.
fn time_batched(
    contexts: &[Vec<UrlId>],
    mut predict: impl FnMut(&[&[UrlId]], &mut Vec<Vec<Prediction>>),
) -> f64 {
    let slices: Vec<&[UrlId]> = contexts.iter().map(Vec::as_slice).collect();
    let mut outs: Vec<Vec<Prediction>> = Vec::new();
    secs_per_pass(|| {
        predict(&slices, &mut outs);
        outs.iter().map(Vec::len).sum::<usize>() as u64
    })
}

/// Raw per-model timings and sizes, before normalization.
struct RowInputs {
    /// Seconds per pass: frozen serving path, pointer path, reference scan,
    /// batched pass.
    frozen: f64,
    pointer: f64,
    slow: f64,
    batch: f64,
    /// Heap bytes: pointer-tree arena, frozen arena.
    tree_bytes: usize,
    frozen_bytes: usize,
}

fn model_row(label: &str, nodes: usize, n: usize, raw: &RowInputs) -> ModelThroughput {
    let per_node = |bytes: usize| bytes as f64 / nodes.max(1) as f64;
    ModelThroughput {
        model: label.to_string(),
        nodes,
        frozen_ns_per_click: raw.frozen * 1e9 / n as f64,
        pointer_ns_per_click: raw.pointer * 1e9 / n as f64,
        reference_ns_per_click: raw.slow * 1e9 / n as f64,
        fast_path_speedup: raw.slow / raw.frozen.max(1e-12),
        frozen_vs_pointer_speedup: raw.pointer / raw.frozen.max(1e-12),
        heap_bytes_per_node_pointer: per_node(raw.tree_bytes),
        heap_bytes_per_node_frozen: per_node(raw.frozen_bytes),
        batched_clicks_per_sec: n as f64 / raw.batch.max(1e-12),
    }
}

/// Realistic single-click working set: every prefix (up to 8 clicks) of the
/// first 400 training sessions.
fn working_set(sessions: &[Session]) -> Vec<Vec<UrlId>> {
    sessions
        .iter()
        .take(400)
        .flat_map(|s| {
            let urls = s.urls();
            (1..=urls.len().min(8))
                .map(move |k| urls[..k].to_vec())
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Best-of-N wall clock of `run`, with N sized for ~0.5 s of samples —
/// the same noise-robustness reason as `secs_per_pass`: the gate compares
/// these timings across processes.
fn best_secs<T>(mut run: impl FnMut() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let mut out = run();
    let mut best = t0.elapsed().as_secs_f64().max(1e-9);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // positive, then clamped
    let reps = ((0.5 / best) as usize).clamp(2, 15);
    for _ in 0..reps {
        let t = Instant::now();
        out = run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (out, best)
}

/// Minimum duration of every phase child across this model's `experiment`
/// spans (serial and parallel repeats alike — the minimum is the same
/// noise-robust statistic as `secs_per_pass`).
fn min_phase_secs(roots: &[pbppm_obs::SpanRecord], span_label: &str) -> Vec<PhaseSecs> {
    let prefix = format!("model={span_label} ");
    let mut phases: Vec<PhaseSecs> = Vec::new();
    for root in roots
        .iter()
        .filter(|r| r.name == "experiment" && r.detail.starts_with(&prefix))
    {
        for child in &root.children {
            let secs = child.dur_ns as f64 / 1e9;
            match phases.iter_mut().find(|p| p.phase == child.name) {
                Some(p) => p.secs = p.secs.min(secs),
                None => phases.push(PhaseSecs {
                    phase: child.name.clone(),
                    secs,
                }),
            }
        }
    }
    phases
}

/// Nearest-rank percentile of an ascending-sorted latency list.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // in-range by construction
fn percentile_ns(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

/// Measures per-request predict latency through the real serve loop.
///
/// The session trains with `rebuild_every` sized so the model rebuilds
/// exactly once, after all training — every timed request then answers
/// from the same frozen arena, the steady state between rebuilds of a
/// real deployment. Checkpointing and metrics flushing are disabled so no
/// disk traffic lands inside the timed region. Each request is timed
/// individually (`handle_line` end to end, into a reused buffer); p50 and
/// p99 take the minimum across rounds.
fn serve_latency(
    trace: &Trace,
    sessions: &[Session],
    contexts: &[Vec<UrlId>],
) -> Option<ServeLatency> {
    let dir = std::env::temp_dir().join(format!("pbppm-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let n = sessions.len().clamp(1, SERVE_TRAIN_SESSIONS);
    let opts = ServeOptions {
        window: n,
        rebuild_every: n,           // exactly one rebuild, after training
        checkpoint_every: u64::MAX, // no disk traffic while timing
        flush_every: 0,
        ..ServeOptions::default()
    };
    let resolve = |id: UrlId| trace.urls.resolve(id).unwrap_or("?");
    let measured = (|| -> Result<ServeLatency, String> {
        let (mut serve, _) =
            ServeSession::open(&dir.display().to_string(), PbConfig::default(), opts)
                .map_err(|e| e.to_string())?;
        let mut out: Vec<u8> = Vec::new();
        for s in &sessions[..n] {
            let urls: Vec<&str> = s.views.iter().map(|v| resolve(v.url)).collect();
            out.clear();
            serve
                .handle_line(&format!("train {}", urls.join(",")), &mut out)
                .map_err(|e| e.to_string())?;
        }
        let commands: Vec<String> = contexts
            .iter()
            .map(|c| {
                let urls: Vec<&str> = c.iter().map(|&u| resolve(u)).collect();
                format!("predict {}", urls.join(","))
            })
            .collect();
        let mut p50 = f64::INFINITY;
        let mut p99 = f64::INFINITY;
        let mut lat: Vec<u64> = Vec::with_capacity(commands.len());
        for _ in 0..SERVE_ROUNDS {
            lat.clear();
            for cmd in &commands {
                out.clear();
                let t = Instant::now();
                serve
                    .handle_line(cmd, &mut out)
                    .map_err(|e| e.to_string())?;
                lat.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
            }
            lat.sort_unstable();
            p50 = p50.min(percentile_ns(&lat, 0.50));
            p99 = p99.min(percentile_ns(&lat, 0.99));
        }
        Ok(ServeLatency {
            requests: commands.len(),
            predict_p50_ns: p50,
            predict_p99_ns: p99,
        })
    })();
    let _ = std::fs::remove_dir_all(&dir);
    match measured {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("warning: serve-loop latency measurement skipped: {e}");
            None
        }
    }
}

fn eval_row(trace: &Trace, label: &str, spec: ModelSpec) -> EvalThroughput {
    let mut cfg = ExperimentConfig::paper_default(spec, TRAIN_DAYS);
    let span_label = cfg.model.label();
    cfg.threads = 1;
    let (serial, serial_secs) = best_secs(|| run_experiment(trace, &cfg));
    cfg.threads = 0;
    let (parallel, parallel_secs) = best_secs(|| run_experiment(trace, &cfg));
    assert_eq!(
        serial.counters, parallel.counters,
        "{label}: thread count changed the results"
    );
    let phases = min_phase_secs(&pbppm_obs::spans::snapshot(), &span_label);
    EvalThroughput {
        model: label.to_string(),
        threads: resolve_threads(0),
        serial_secs,
        parallel_secs,
        serial_requests_per_sec: serial.eval_requests as f64 / serial_secs.max(1e-12),
        parallel_requests_per_sec: parallel.eval_requests as f64 / parallel_secs.max(1e-12),
        phases,
    }
}

/// The phase with the largest `new/old` duration ratio, if both sides
/// carry phase timings for it.
fn worst_phase(new: &[PhaseSecs], old: &[PhaseSecs]) -> Option<(String, f64)> {
    let mut worst: Option<(String, f64)> = None;
    for n in new {
        let Some(o) = old.iter().find(|p| p.phase == n.phase) else {
            continue;
        };
        if o.secs <= 0.0 {
            continue;
        }
        let ratio = n.secs / o.secs;
        if worst.as_ref().is_none_or(|(_, r)| ratio > *r) {
            worst = Some((n.phase.clone(), ratio));
        }
    }
    worst
}

/// Compares `report` against the `PBPPM_PERF_BASELINE` file, if set, and
/// exits non-zero on any >15% regression.
fn gate(report: &ThroughputReport) {
    let Ok(path) = std::env::var("PBPPM_PERF_BASELINE") else {
        return;
    };
    let baseline: ThroughputReport = match std::fs::read_to_string(&path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
        .and_then(|mut v| {
            // Baselines written before the serve section carry no "serve"
            // key; the vendored serde has no `#[serde(default)]`, so an
            // explicit null (which reads back as `None`) is spliced in.
            if let serde_json::Value::Object(entries) = &mut v {
                if !entries.iter().any(|(k, _)| k == "serve") {
                    entries.push(("serve".to_owned(), serde_json::Value::Null));
                }
            }
            <ThroughputReport as serde::Deserialize>::from_value(&v).map_err(|e| e.to_string())
        }) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf-gate: cannot read baseline {path}: {e}");
            std::process::exit(2);
        }
    };
    let slack = 1.0 + GATE_TOLERANCE;
    let mut failures: Vec<String> = Vec::new();
    let slower = |what: String, new_secs: f64, old_secs: f64| -> Option<String> {
        (new_secs > old_secs * slack).then(|| {
            format!(
                "{what}: {:.0}% slower than baseline ({new_secs:.3e} vs {old_secs:.3e})",
                100.0 * (new_secs / old_secs - 1.0)
            )
        })
    };
    for new in &report.models {
        // Baseline-independent floor: the serving fast path must beat the
        // reference scan it replaced, on every model. Before the frozen
        // arena, PPM and LRS sat at 0.92x/0.99x — that is the regression
        // this PR exists to close, so the gate pins it permanently.
        if new.fast_path_speedup < 1.0 {
            failures.push(format!(
                "{} fast path loses to the reference scan ({:.2}x, floor 1.0x)",
                new.model, new.fast_path_speedup
            ));
        }
        let Some(old) = baseline.models.iter().find(|m| m.model == new.model) else {
            continue;
        };
        failures.extend(slower(
            format!("{} single-click predict (frozen arena)", new.model),
            new.frozen_ns_per_click,
            old.frozen_ns_per_click,
        ));
        // Throughputs gate on their reciprocal: lower is slower.
        failures.extend(slower(
            format!("{} batched predict", new.model),
            1.0 / new.batched_clicks_per_sec.max(1e-12),
            1.0 / old.batched_clicks_per_sec.max(1e-12),
        ));
        // The arena's whole point is a smaller, denser layout: per-node
        // bytes growing past tolerance is a regression even if speed holds.
        if old.heap_bytes_per_node_frozen > 0.0
            && new.heap_bytes_per_node_frozen > old.heap_bytes_per_node_frozen * slack
        {
            failures.push(format!(
                "{} frozen arena grew: {:.1} bytes/node vs baseline {:.1}",
                new.model, new.heap_bytes_per_node_frozen, old.heap_bytes_per_node_frozen
            ));
        }
    }
    for new in &report.eval {
        let Some(old) = baseline.eval.iter().find(|m| m.model == new.model) else {
            continue;
        };
        let new_secs = 1.0 / new.parallel_requests_per_sec.max(1e-12);
        let old_secs = 1.0 / old.parallel_requests_per_sec.max(1e-12);
        if new_secs > old_secs * slack {
            let mut msg = format!(
                "{} end-to-end eval: {:.0}% slower than baseline ({new_secs:.3e} vs {old_secs:.3e})",
                new.model,
                100.0 * (new_secs / old_secs - 1.0)
            );
            // Name the phase that moved the most — that is where to look.
            if let Some((phase, ratio)) = worst_phase(&new.phases, &old.phases) {
                use std::fmt::Write as _;
                let _ = write!(
                    msg,
                    "; worst phase: {phase} ({:+.0}%)",
                    100.0 * (ratio - 1.0)
                );
            }
            failures.push(msg);
        }
    }
    // Serve-loop latency gates on the p99 tail — the latency a prefetching
    // client actually experiences. Skipped when either side lacks the
    // section (old baseline, or the measurement could not run).
    if let (Some(new), Some(old)) = (&report.serve, &baseline.serve) {
        failures.extend(slower(
            "serve-loop predict p99".to_owned(),
            new.predict_p99_ns,
            old.predict_p99_ns,
        ));
    }
    if failures.is_empty() {
        eprintln!(
            "perf-gate: all gated metrics within {:.0}% of {path}",
            100.0 * GATE_TOLERANCE
        );
    } else {
        for f in &failures {
            eprintln!("perf-gate: REGRESSION — {f}");
        }
        std::process::exit(1);
    }
}

/// Writes the committed perf baseline at the workspace root.
fn write_root_json(report: &ThroughputReport) {
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_throughput.json");
    match serde_json::to_string_pretty(report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize throughput report: {e}"),
    }
}

pub fn run() {
    let trace = nasa_trace();
    let train_sessions = sessionize(trace.first_days(TRAIN_DAYS), &SessionizerConfig::default());
    let contexts = working_set(&train_sessions);
    let mut counts = PopularityTable::builder();
    for s in &train_sessions {
        for v in &s.views {
            counts.record(v.url);
        }
    }
    let pop = counts.build();

    let mut standard = StandardPpm::unbounded();
    let mut lrs = LrsPpm::new();
    let mut pb = PbPpm::new(
        pop,
        PbConfig {
            prune: PruneConfig::aggressive(),
            ..PbConfig::default()
        },
    );
    let mut urls = Vec::new();
    for s in &train_sessions {
        urls.clear();
        urls.extend(s.views.iter().map(|v| v.url));
        standard.train_session(&urls);
        lrs.train_session(&urls);
        pb.train_session(&urls);
    }
    standard.finalize();
    lrs.finalize();
    pb.finalize();

    let mut usage = PredictUsage::default();
    let frozen_bytes =
        |f: Option<&pbppm_core::FrozenTree>| f.map_or(0, pbppm_core::FrozenTree::heap_bytes);
    let models = vec![
        {
            let raw = RowInputs {
                frozen: time_clicks(&contexts, |c, out| {
                    usage.clear();
                    standard.predict_ro(c, out, &mut usage);
                }),
                pointer: time_clicks(&contexts, |c, out| {
                    usage.clear();
                    standard.predict_pointer(c, out, &mut usage);
                }),
                slow: time_clicks(&contexts, |c, out| standard.predict_reference(c, out)),
                batch: time_batched(&contexts, |cs, outs| standard.predict_many(cs, outs)),
                tree_bytes: standard.stats().memory_bytes,
                frozen_bytes: frozen_bytes(standard.frozen()),
            };
            model_row("PPM", standard.node_count(), contexts.len(), &raw)
        },
        {
            let raw = RowInputs {
                frozen: time_clicks(&contexts, |c, out| {
                    usage.clear();
                    lrs.predict_ro(c, out, &mut usage);
                }),
                pointer: time_clicks(&contexts, |c, out| {
                    usage.clear();
                    lrs.predict_pointer(c, out, &mut usage);
                }),
                slow: time_clicks(&contexts, |c, out| lrs.predict_reference(c, out)),
                batch: time_batched(&contexts, |cs, outs| lrs.predict_many(cs, outs)),
                tree_bytes: lrs.stats().memory_bytes,
                frozen_bytes: frozen_bytes(lrs.frozen()),
            };
            model_row("LRS", lrs.node_count(), contexts.len(), &raw)
        },
        {
            let raw = RowInputs {
                frozen: time_clicks(&contexts, |c, out| {
                    usage.clear();
                    pb.predict_ro(c, out, &mut usage);
                }),
                pointer: time_clicks(&contexts, |c, out| {
                    usage.clear();
                    pb.predict_pointer(c, out, &mut usage);
                }),
                slow: time_clicks(&contexts, |c, out| pb.predict_reference(c, out)),
                batch: time_batched(&contexts, |cs, outs| pb.predict_many(cs, outs)),
                tree_bytes: pb.stats().memory_bytes,
                frozen_bytes: frozen_bytes(pb.frozen()),
            };
            model_row("PB-PPM", pb.node_count(), contexts.len(), &raw)
        },
    ];

    let eval = vec![
        eval_row(&trace, "PPM", ModelSpec::Standard { max_height: None }),
        eval_row(&trace, "LRS", ModelSpec::Lrs),
        eval_row(&trace, "PB-PPM", ModelSpec::pb_paper(true)),
    ];

    let serve = serve_latency(&trace, &train_sessions, &contexts);

    let report = ThroughputReport {
        trace: trace.name.clone(),
        train_days: TRAIN_DAYS,
        contexts: contexts.len(),
        models,
        eval,
        serve,
    };

    let mut predict_table = Table::new(
        format!(
            "Throughput — single-click predict, day-{TRAIN_DAYS} {} trees",
            report.trace
        ),
        &[
            "model",
            "nodes",
            "frozen ns/click",
            "pointer ns/click",
            "scan ns/click",
            "vs scan",
            "vs pointer",
            "B/node frozen",
            "B/node pointer",
            "batched clicks/s",
        ],
    );
    for m in &report.models {
        predict_table.row(vec![
            m.model.clone(),
            m.nodes.to_string(),
            format!("{:.0}", m.frozen_ns_per_click),
            format!("{:.0}", m.pointer_ns_per_click),
            format!("{:.0}", m.reference_ns_per_click),
            format!("{:.1}x", m.fast_path_speedup),
            format!("{:.1}x", m.frozen_vs_pointer_speedup),
            format!("{:.0}", m.heap_bytes_per_node_frozen),
            format!("{:.0}", m.heap_bytes_per_node_pointer),
            format!("{:.2e}", m.batched_clicks_per_sec),
        ]);
    }
    predict_table.print();

    let mut eval_table = Table::new(
        format!(
            "Throughput — end-to-end experiment, {} workers",
            report.eval[0].threads
        ),
        &[
            "model",
            "serial s",
            "parallel s",
            "speedup",
            "parallel req/s",
        ],
    );
    for m in &report.eval {
        eval_table.row(vec![
            m.model.clone(),
            format!("{:.2}", m.serial_secs),
            format!("{:.2}", m.parallel_secs),
            format!("{:.1}x", m.serial_secs / m.parallel_secs.max(1e-12)),
            format!("{:.0}", m.parallel_requests_per_sec),
        ]);
    }
    eval_table.print();

    if let Some(s) = &report.serve {
        let mut serve_table = Table::new(
            "Throughput — serve loop, line-protocol predict".to_owned(),
            &["requests/round", "p50 ns", "p99 ns"],
        );
        serve_table.row(vec![
            s.requests.to_string(),
            format!("{:.0}", s.predict_p50_ns),
            format!("{:.0}", s.predict_p99_ns),
        ]);
        serve_table.print();
    }

    write_json("throughput", &report);
    write_root_json(&report);

    // Full telemetry report (spans + metrics registry) for this run,
    // written before the gate so it survives a gating failure —
    // `scripts/perf-gate.sh` renders it via `pbppm stats` on failure.
    let metrics_path = crate::results_dir().join("run_metrics_throughput.json");
    let metrics = pbppm_obs::RunReport::collect("bench throughput").to_json();
    match std::fs::write(&metrics_path, metrics + "\n") {
        Ok(()) => eprintln!("wrote {}", metrics_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", metrics_path.display()),
    }

    gate(&report);
}
