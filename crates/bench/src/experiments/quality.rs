//! Offline prediction quality — model accuracy isolated from cache
//! dynamics (an extension experiment; not a figure in the paper).
//!
//! For every model: coverage (how often it has anything to say),
//! precision@1 / @5 against the actual next click, mean reciprocal rank,
//! and useful@5 (a top-5 prediction is visited before the session ends —
//! the quantity prefetching actually monetizes). Evaluated on the held-out
//! day after 5 training days, with the deployment probability threshold.

use crate::{nasa_trace, pct, ucb_trace, write_json, Table};
use pbppm_core::{evaluate, EvalConfig, PopularityTable, PredictionQuality, UrlId};
use pbppm_sim::{parallel_map, ExperimentConfig, ModelSpec};
use pbppm_trace::{sessionize, Trace};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
struct QualityRow {
    model: String,
    trace: String,
    quality: PredictionQuality,
}

fn report(trace: &Trace, train_days: usize) -> Vec<QualityRow> {
    let base = ExperimentConfig::paper_default(ModelSpec::Lrs, train_days);
    let train = sessionize(trace.first_days(train_days), &base.sessionizer);
    let eval_sessions = sessionize(
        trace.day_span(train_days, train_days + 1),
        &base.sessionizer,
    );
    let eval_urls: Vec<Vec<UrlId>> = eval_sessions.iter().map(|s| s.urls()).collect();
    let mut popb = PopularityTable::builder();
    for s in &train {
        for v in &s.views {
            popb.record(v.url);
        }
    }
    let pop = popb.build();

    let specs: Vec<(String, ModelSpec)> = vec![
        ("PPM".into(), ModelSpec::Standard { max_height: None }),
        (
            "3-PPM".into(),
            ModelSpec::Standard {
                max_height: Some(3),
            },
        ),
        ("LRS".into(), ModelSpec::Lrs),
        ("O1-Markov".into(), ModelSpec::Order1),
        ("PB-PPM".into(), ModelSpec::pb_paper(true)),
    ];
    let rows: Vec<QualityRow> = parallel_map(&specs, |(label, spec)| {
        let mut model = spec.build(&train, &pop).expect("model");
        let cfg = EvalConfig {
            prob_threshold: 0.25,
            k: 5,
            horizon: usize::MAX,
        };
        let quality = evaluate(model.as_mut(), &eval_urls, base.context_cap, &cfg);
        QualityRow {
            model: label.clone(),
            trace: trace.name.clone(),
            quality,
        }
    });

    let mut table = Table::new(
        format!(
            "Offline prediction quality — {}, {} training days (threshold 0.25, k = 5)",
            trace.name, train_days
        ),
        &[
            "model",
            "coverage",
            "prec@1",
            "prec@5",
            "MRR",
            "useful@5",
            "preds/ctx",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.model.clone(),
            pct(r.quality.coverage()),
            pct(r.quality.precision_at_1()),
            pct(r.quality.precision_at_k()),
            format!("{:.3}", r.quality.mrr()),
            pct(r.quality.useful_rate()),
            format!("{:.2}", r.quality.emitted_per_context()),
        ]);
    }
    table.print();
    rows
}

/// Regenerates the offline-quality tables for both workloads.
pub fn run() {
    let nasa = nasa_trace();
    let mut rows = report(&nasa, 5);
    let ucb = ucb_trace();
    rows.extend(report(&ucb, 4));
    write_json("quality", &rows);
}
