//! `ingest` — parse/train/end-to-end throughput of the parallel
//! bounded-memory ingestion pipeline, the third leg of
//! `scripts/perf-gate.sh`.
//!
//! The other perf legs measure *serving*; this one measures the build
//! pipeline: raw CLF log → parsed [`Trace`] → sessions → frozen PB-PPM
//! model. Each phase runs twice per round — the sequential reference
//! (`trace_from_clf` + `train_session` loops) and the parallel path
//! (`trace_from_clf_reader` chunked ingestion + `train_sessions`
//! partition-and-merge) — which is meaningful *because* the parallel path
//! is property-tested bit-identical to the sequential one: the comparison
//! is pure speed, never a quality trade.
//!
//! Measured, each as the minimum across [`ROUNDS`] rounds:
//!
//! * **parse** — CLF lines/second, file → `Trace`;
//! * **train** — sessions/second, sessions → finalized PB-PPM model
//!   (popularity count + tree build + finalize);
//! * **end_to_end** — wall seconds, log file → frozen model;
//! * **peak heap** — the live-byte high-water mark of each parse path
//!   (via the counting allocator this binary installs), pinning the
//!   bounded-memory claim: the chunked path must not out-allocate the
//!   buffer-everything path it replaces.
//!
//! Results go to `results/ingest.json` and the committed
//! `BENCH_ingest.json` at the workspace root. When
//! `PBPPM_PERF_BASELINE_INGEST` names a baseline, the run gates against
//! it (exit 1 on regression, exit 2 on an unreadable/shape-mismatched
//! baseline). Two gates are baseline-independent: on hosts with at least
//! [`SPEEDUP_MIN_CORES`] cores the end-to-end speedup must reach
//! [`SPEEDUP_FLOOR`], and the parallel parse peak must stay within
//! [`PEAK_SLACK`] of sequential everywhere. (On narrower hosts the
//! speedup gate is vacuous — there is no parallelism to win — so only
//! the no-regression and peak gates bite.)
//!
//! Flags: `--days D --threads T` (defaults 7 / 0 = auto).

use crate::{nasa_trace, write_json, Table};
use pbppm_core::{PbConfig, PbPpm, PopularityBuilder, PopularityTable, Predictor, UrlId};
use pbppm_trace::clf::{format_clf_line, trace_from_clf, ClfRecord};
use pbppm_trace::ingest::{trace_from_clf_path, IngestConfig};
use pbppm_trace::{sessionize, SessionizerConfig, Trace};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::time::Instant;

/// Full repetitions; every reported number is the minimum across rounds.
const ROUNDS: usize = 3;
/// Allowed wall-time slowdown against the baseline before the gate
/// fails. Sub-second single-shot wall times on a loaded 1-core CI box
/// jitter far more than the serving benches' medians (observed ~1.7x
/// run-to-run with the machine otherwise busy), so this matches
/// loadgen's 100%; genuine pipeline regressions compound across phases
/// and still trip it.
const GATE_TOLERANCE: f64 = 1.00;
/// Required end-to-end speedup (sequential / parallel) on capable hosts.
const SPEEDUP_FLOOR: f64 = 2.0;
/// Minimum core count before the speedup floor is enforced.
const SPEEDUP_MIN_CORES: usize = 4;
/// The parallel parse peak may exceed the sequential peak by at most
/// this factor (chunks in flight are bounded; the merge holds compact
/// records only).
const PEAK_SLACK: f64 = 1.25;
/// Seconds of 1995-07-01 04:00 UTC, the epoch synthetic logs start at.
const NASA_EPOCH: i64 = 804_571_200;

/// Sequential-vs-parallel wall time for one pipeline phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// "parse", "train", or "end_to_end".
    pub phase: String,
    /// Sequential wall seconds, minimum across rounds.
    pub sequential_secs: f64,
    /// Parallel wall seconds, minimum across rounds.
    pub parallel_secs: f64,
    /// `sequential_secs / parallel_secs`.
    pub speedup: f64,
}

/// Everything one `ingest` run measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestReport {
    /// Trace the log was synthesized from.
    pub trace: String,
    /// CLF lines in the log file.
    pub lines: usize,
    /// Log file size in bytes.
    pub bytes: u64,
    /// Sessions the trace sessionizes into.
    pub sessions: usize,
    /// Configured worker count (0 = auto).
    pub threads: usize,
    /// What 0 resolved to on this host.
    pub effective_threads: usize,
    /// Available parallelism of the measuring host.
    pub cores: usize,
    /// Rounds behind the minima.
    pub rounds: usize,
    /// Parallel-path parse throughput, lines/second.
    pub parse_lines_per_sec: f64,
    /// Parallel-path training throughput, sessions/second.
    pub train_sessions_per_sec: f64,
    /// Live-heap high-water mark of the sequential parse, bytes.
    pub sequential_peak_bytes: u64,
    /// Live-heap high-water mark of the chunked parallel parse, bytes.
    pub parallel_peak_bytes: u64,
    /// `parallel_peak_bytes / sequential_peak_bytes`.
    pub peak_ratio: f64,
    /// Per-phase timings: parse, train, end_to_end.
    pub phases: Vec<PhaseTiming>,
}

struct Config {
    days: usize,
    threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            // The full 7-day NASA-like window: longer phases amortize
            // scheduler jitter that would swamp a 2-day run's ~50 ms
            // timings.
            days: 7,
            threads: 0,
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = || argv.next().ok_or_else(|| format!("{flag}: missing value"));
        match flag.as_str() {
            "--days" => cfg.days = val()?.parse().map_err(|e| format!("--days: {e}"))?,
            "--threads" => cfg.threads = val()?.parse().map_err(|e| format!("--threads: {e}"))?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if cfg.days == 0 {
        return Err("--days must be positive".to_owned());
    }
    Ok(cfg)
}

/// Writes the first `days` days of `trace` as a CLF log file; returns
/// (lines, bytes).
fn write_log(trace: &Trace, days: usize, path: &std::path::Path) -> std::io::Result<(usize, u64)> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    let requests = trace.first_days(days);
    for r in requests {
        let rec = ClfRecord {
            host: trace
                .clients
                .resolve(UrlId(r.client.0))
                .unwrap_or("unknown")
                .to_owned(),
            time: i64::try_from(r.time).unwrap_or(0) + NASA_EPOCH,
            method: "GET".to_owned(),
            path: trace.urls.resolve(r.url).unwrap_or("/").to_owned(),
            status: r.status,
            size: r.size,
        };
        writeln!(w, "{}", format_clf_line(&rec))?;
    }
    w.flush()?;
    Ok((requests.len(), std::fs::metadata(path)?.len()))
}

fn secs(t: Instant) -> f64 {
    t.elapsed().as_secs_f64()
}

fn parse_sequential(path: &std::path::Path) -> Trace {
    let file = std::fs::File::open(path).expect("open log");
    let lines = std::io::BufReader::new(file).lines().map_while(Result::ok);
    trace_from_clf("bench", lines).0
}

fn parse_parallel(path: &std::path::Path, threads: usize) -> Trace {
    let cfg = IngestConfig {
        threads,
        ..IngestConfig::default()
    };
    trace_from_clf_path("bench", path, &cfg)
        .expect("ingest log")
        .0
}

fn session_urls(trace: &Trace) -> Vec<Vec<UrlId>> {
    sessionize(&trace.requests, &SessionizerConfig::default())
        .iter()
        .map(|s| s.views.iter().map(|v| v.url).collect())
        .collect()
}

fn train_sequential(urls: &[Vec<UrlId>]) -> PbPpm {
    let mut counts = PopularityTable::builder();
    for s in urls {
        for &u in s {
            counts.record(u);
        }
    }
    let mut m = PbPpm::new(counts.build(), PbConfig::default());
    for s in urls {
        m.train_session(s);
    }
    m.finalize();
    m
}

fn train_parallel(urls: &[Vec<UrlId>], threads: usize) -> PbPpm {
    let counts = PopularityBuilder::count_sessions(urls, threads);
    let mut m = PbPpm::new(counts.build(), PbConfig::default());
    m.train_sessions(urls, threads);
    m.finalize();
    m
}

/// Runs `f`, returning its wall seconds and the live-heap peak (bytes
/// above the level at entry) it reached.
fn timed_peak<R>(f: impl FnOnce() -> R) -> (f64, u64, R) {
    let live_before = pbppm_obs::alloc::live_bytes();
    pbppm_obs::alloc::reset_peak_bytes();
    let t = Instant::now();
    let r = f();
    let elapsed = secs(t);
    let peak = pbppm_obs::alloc::peak_bytes().saturating_sub(live_before);
    (elapsed, peak, r)
}

/// Compares `report` against the `PBPPM_PERF_BASELINE_INGEST` file, if
/// set, and exits non-zero on any gated regression.
fn gate(report: &IngestReport) {
    let Ok(path) = std::env::var("PBPPM_PERF_BASELINE_INGEST") else {
        return;
    };
    let baseline: IngestReport = match std::fs::read_to_string(&path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
        .and_then(|v| {
            <IngestReport as serde::Deserialize>::from_value(&v).map_err(|e| e.to_string())
        }) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf-gate: cannot read ingest baseline {path}: {e}");
            std::process::exit(2);
        }
    };
    if baseline.lines != report.lines || baseline.threads != report.threads {
        eprintln!(
            "perf-gate: ingest baseline shape mismatch (baseline {} lines / threads={}, \
             run {} lines / threads={}) — regenerate the baseline",
            baseline.lines, baseline.threads, report.lines, report.threads
        );
        std::process::exit(2);
    }
    let mut failures: Vec<String> = Vec::new();
    let slack = 1.0 + GATE_TOLERANCE;
    for new in &report.phases {
        let Some(old) = baseline.phases.iter().find(|p| p.phase == new.phase) else {
            continue;
        };
        for (label, new_secs, old_secs) in [
            ("sequential", new.sequential_secs, old.sequential_secs),
            ("parallel", new.parallel_secs, old.parallel_secs),
        ] {
            if old_secs > 0.0 && new_secs > old_secs * slack {
                failures.push(format!(
                    "{} {} wall time: {:.0}% slower than baseline ({:.3}s vs {:.3}s)",
                    new.phase,
                    label,
                    100.0 * (new_secs / old_secs - 1.0),
                    new_secs,
                    old_secs
                ));
            }
        }
    }
    // Baseline-independent gates: the parallel path must actually win on
    // hosts wide enough to show it, and must never balloon memory.
    if report.cores >= SPEEDUP_MIN_CORES {
        if let Some(e2e) = report.phases.iter().find(|p| p.phase == "end_to_end") {
            if e2e.speedup < SPEEDUP_FLOOR {
                failures.push(format!(
                    "end-to-end speedup {:.2}x below the {SPEEDUP_FLOOR}x floor on a \
                     {}-core host",
                    e2e.speedup, report.cores
                ));
            }
        }
    } else {
        eprintln!(
            "perf-gate: ingest speedup floor skipped ({} cores < {SPEEDUP_MIN_CORES})",
            report.cores
        );
    }
    if report.sequential_peak_bytes > 0 && report.peak_ratio > PEAK_SLACK {
        failures.push(format!(
            "parallel parse peak heap {:.2}x the sequential peak (cap {PEAK_SLACK}x): \
             {} vs {} bytes",
            report.peak_ratio, report.parallel_peak_bytes, report.sequential_peak_bytes
        ));
    }
    if failures.is_empty() {
        eprintln!(
            "perf-gate: ingest wall times within {:.0}% of {path}",
            100.0 * GATE_TOLERANCE
        );
    } else {
        for f in &failures {
            eprintln!("perf-gate: REGRESSION — {f}");
        }
        std::process::exit(1);
    }
}

/// Writes the committed ingest baseline at the workspace root.
fn write_root_json(report: &IngestReport) {
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_ingest.json");
    match serde_json::to_string_pretty(report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize ingest report: {e}"),
    }
}

pub fn run() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\nusage: ingest [--days D] [--threads T]");
            std::process::exit(2);
        }
    };
    let effective_threads = pbppm_core::resolve_threads(cfg.threads);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let trace = nasa_trace();
    let dir = std::env::temp_dir().join(format!("pbppm-bench-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let log = dir.join("access.log");
    let (lines, bytes) = write_log(&trace, cfg.days, &log).expect("write log");
    drop(trace); // only the on-disk log participates in the measurement

    // One untimed parse pin-checks the equivalence the whole comparison
    // rests on, and provides the session list for the train phase.
    let reference = parse_parallel(&log, effective_threads);
    {
        let seq = parse_sequential(&log);
        assert_eq!(
            seq.requests, reference.requests,
            "chunked ingest diverged from the sequential parse"
        );
    }
    let urls = session_urls(&reference);
    let sessions = urls.len();
    drop(reference);

    let mut parse_seq = f64::MAX;
    let mut parse_par = f64::MAX;
    let mut train_seq = f64::MAX;
    let mut train_par = f64::MAX;
    let mut e2e_seq = f64::MAX;
    let mut e2e_par = f64::MAX;
    let mut peak_seq = u64::MAX;
    let mut peak_par = u64::MAX;
    for _ in 0..ROUNDS {
        let (t, peak, trace) = timed_peak(|| parse_sequential(&log));
        parse_seq = parse_seq.min(t);
        peak_seq = peak_seq.min(peak);
        drop(trace);
        let (t, peak, trace) = timed_peak(|| parse_parallel(&log, effective_threads));
        parse_par = parse_par.min(t);
        peak_par = peak_par.min(peak);
        drop(trace);

        let t = Instant::now();
        let m = train_sequential(&urls);
        train_seq = train_seq.min(secs(t));
        drop(m);
        let t = Instant::now();
        let m = train_parallel(&urls, effective_threads);
        train_par = train_par.min(secs(t));
        drop(m);

        let t = Instant::now();
        let m = train_sequential(&session_urls(&parse_sequential(&log)));
        e2e_seq = e2e_seq.min(secs(t));
        drop(m);
        let t = Instant::now();
        let m = train_parallel(
            &session_urls(&parse_parallel(&log, effective_threads)),
            effective_threads,
        );
        e2e_par = e2e_par.min(secs(t));
        drop(m);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let phase = |name: &str, seq: f64, par: f64| PhaseTiming {
        phase: name.to_owned(),
        sequential_secs: seq,
        parallel_secs: par,
        speedup: if par > 0.0 { seq / par } else { 0.0 },
    };
    let report = IngestReport {
        trace: "nasa-like".to_owned(),
        lines,
        bytes,
        sessions,
        threads: cfg.threads,
        effective_threads,
        cores,
        rounds: ROUNDS,
        parse_lines_per_sec: lines as f64 / parse_par.max(1e-12),
        train_sessions_per_sec: sessions as f64 / train_par.max(1e-12),
        sequential_peak_bytes: peak_seq,
        parallel_peak_bytes: peak_par,
        peak_ratio: if peak_seq > 0 {
            peak_par as f64 / peak_seq as f64
        } else {
            0.0
        },
        phases: vec![
            phase("parse", parse_seq, parse_par),
            phase("train", train_seq, train_par),
            phase("end_to_end", e2e_seq, e2e_par),
        ],
    };

    let mut table = Table::new(
        format!(
            "Ingest — {} lines ({:.1} MB), {} sessions, {} worker(s) on {} core(s)",
            report.lines,
            report.bytes as f64 / 1e6,
            report.sessions,
            report.effective_threads,
            report.cores
        ),
        &["phase", "sequential s", "parallel s", "speedup"],
    );
    for p in &report.phases {
        table.row(vec![
            p.phase.clone(),
            format!("{:.3}", p.sequential_secs),
            format!("{:.3}", p.parallel_secs),
            format!("{:.2}x", p.speedup),
        ]);
    }
    table.print();
    println!(
        "parse {:.0} lines/s, train {:.0} sessions/s; parse peak heap {:.1} MB parallel vs {:.1} MB sequential ({:.2}x)",
        report.parse_lines_per_sec,
        report.train_sessions_per_sec,
        report.parallel_peak_bytes as f64 / 1e6,
        report.sequential_peak_bytes as f64 / 1e6,
        report.peak_ratio
    );

    write_json("ingest", &report);
    write_root_json(&report);
    gate(&report);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_roundtrips_through_both_parsers() {
        let trace = crate::nasa_trace();
        let dir =
            std::env::temp_dir().join(format!("pbppm-ingest-exp-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("tiny.log");
        let (lines, bytes) = write_log(&trace, 1, &log).unwrap();
        assert!(lines > 0 && bytes > 0);
        let seq = parse_sequential(&log);
        let par = parse_parallel(&log, 2);
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(seq.requests.len(), lines, "every written line parses");
        assert_eq!(seq.requests, par.requests);
    }

    #[test]
    fn parallel_training_matches_sequential_here_too() {
        let urls: Vec<Vec<UrlId>> = (0..40u32)
            .map(|i| (0..5).map(|k| UrlId((i + k) % 9)).collect())
            .collect();
        let seq = train_sequential(&urls);
        let par = train_parallel(&urls, 4);
        assert_eq!(seq.tree().to_snapshot(), par.tree().to_snapshot());
    }
}
