//! Network effects of prefetching — an extension experiment after
//! Crovella & Barford (INFOCOM '98), cited in the paper's related work.
//!
//! Demand and prefetch traffic share one finite server link; sweeping the
//! link capacity moves the system from underload to saturation. The
//! expected shape: with ample bandwidth every prefetcher reduces latency;
//! as the link saturates, the *extra bytes* poison the queue and the
//! aggressive pushers flip to hurting users before the conservative ones
//! do. PB-PPM's accuracy buys it a gentler collapse per byte pushed.

use crate::{nasa_trace, pct, write_json, Table};
use pbppm_sim::{
    parallel_map, run_network_experiment, ExperimentConfig, ModelSpec, NetworkRunResult,
};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
struct NetworkCell {
    model: String,
    bytes_per_sec: f64,
    result: NetworkRunResult,
}

/// Regenerates the latency-vs-load sweep.
pub fn run() {
    let trace = nasa_trace();
    let train_days = 5;
    // Calibrate: the evaluation day's average demand rate (bytes/s) with
    // caching but no prefetching, measured on an effectively infinite link.
    let probe = run_network_experiment(
        &trace,
        &ExperimentConfig::paper_default(ModelSpec::NoPrefetch, train_days),
        1e12,
    );
    let demand_rate = probe.baseline.sent_bytes as f64 / 86_400.0;
    println!(
        "evaluation-day demand: {} MB over the day (avg {:.1} KB/s)",
        probe.baseline.sent_bytes / 1_000_000,
        demand_rate / 1000.0
    );
    // Sweep the offered-load factor rho = demand_rate / capacity.
    let rhos: Vec<f64> = vec![0.05, 0.2, 0.5, 0.8, 0.95];
    let capacities: Vec<f64> = rhos.iter().map(|r| demand_rate / r).collect();
    let models = vec![
        ("PPM".to_string(), ModelSpec::Standard { max_height: None }),
        ("LRS".to_string(), ModelSpec::Lrs),
        ("PB-PPM".to_string(), ModelSpec::pb_paper(true)),
    ];

    let jobs: Vec<(String, ModelSpec, f64)> = capacities
        .iter()
        .flat_map(|&c| models.iter().map(move |(l, s)| (l.clone(), s.clone(), c)))
        .collect();
    let cells: Vec<NetworkCell> = parallel_map(&jobs, |(label, spec, cap)| {
        let cfg = ExperimentConfig::paper_default(spec.clone(), train_days);
        NetworkCell {
            model: label.clone(),
            bytes_per_sec: *cap,
            result: run_network_experiment(&trace, &cfg, *cap),
        }
    });

    let mut headers = vec!["load".to_string()];
    headers.extend(rhos.iter().map(|r| format!("rho={r}")));
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut lat = Table::new(
        "Network effects — latency change from prefetching (negative = prefetching hurts)",
        &headers,
    );
    let mut util = Table::new(
        "Network effects — link utilization with prefetching",
        &headers,
    );
    for (label, _) in &models {
        let mut lrow = vec![label.clone()];
        let mut urow = vec![label.clone()];
        for &c in &capacities {
            let cell = cells
                .iter()
                .find(|x| &x.model == label && x.bytes_per_sec == c)
                .expect("cell");
            lrow.push(pct(cell.result.latency_reduction()));
            urow.push(pct(cell.result.with_prefetch.utilization));
        }
        lat.row(lrow);
        util.row(urow);
    }
    lat.print();
    util.print();
    write_json("network", &cells);
}
