//! Extended comparison against the related-work baselines the paper cites:
//! first-order Markov prediction (Bestavros; Padmanabhan & Mogul; Sarukkai)
//! and the popularity-only Top-10 push (Markatos & Chronaki), plus the
//! sliding-window online PB-PPM variant this crate adds.
//!
//! Not a table in the paper — an extension experiment that locates PB-PPM
//! between the two families it hybridizes: context-only prediction (order-1
//! Markov, PPM, LRS) and popularity-only push (Top-N).

use crate::{nasa_trace, pct, ucb_trace, write_json, Table};
use pbppm_core::PbConfig;
use pbppm_sim::{parallel_map, run_experiment, ExperimentConfig, ModelSpec};
use pbppm_trace::Trace;
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
struct Row {
    model: String,
    trace: String,
    result: pbppm_sim::RunResult,
}

fn specs() -> Vec<(String, ModelSpec)> {
    vec![
        ("PPM".into(), ModelSpec::Standard { max_height: None }),
        (
            "3-PPM".into(),
            ModelSpec::Standard {
                max_height: Some(3),
            },
        ),
        ("LRS".into(), ModelSpec::Lrs),
        ("O1-Markov".into(), ModelSpec::Order1),
        ("Top-10".into(), ModelSpec::TopN { n: 10 }),
        ("Top-50".into(), ModelSpec::TopN { n: 50 }),
        ("PB-PPM".into(), ModelSpec::pb_paper(true)),
        (
            "PB-online".into(),
            ModelSpec::PbOnline {
                cfg: PbConfig {
                    prune: pbppm_core::PruneConfig::aggressive(),
                    ..PbConfig::default()
                },
                window: 20_000,
                rebuild_every: 2_000,
            },
        ),
    ]
}

fn report(trace: &Trace, train_days: usize) -> Vec<Row> {
    let specs = specs();
    let rows: Vec<Row> = parallel_map(&specs, |(label, spec)| {
        let mut cfg = ExperimentConfig::paper_default(spec.clone(), train_days);
        if let ModelSpec::TopN { .. } = spec {
            // Markatos's scheme pushes the top documents unconditionally
            // ("servers regularly push their most popular documents") —
            // under the paper's 0.25 possibility threshold a single
            // document's traffic share never qualifies, so Top-N gets its
            // natural thresholdless policy here.
            cfg.policy.prob_threshold = 0.0;
            cfg.policy.max_per_request = 10;
        }
        Row {
            model: label.clone(),
            trace: trace.name.clone(),
            result: run_experiment(trace, &cfg),
        }
    });
    let mut table = Table::new(
        format!(
            "Related-work comparison — {}, {} training days",
            trace.name, train_days
        ),
        &["model", "nodes", "hit", "latency-", "traffic+", "accuracy"],
    );
    for r in &rows {
        table.row(vec![
            r.model.clone(),
            r.result.node_count.to_string(),
            pct(r.result.hit_ratio()),
            pct(r.result.latency_reduction()),
            pct(r.result.traffic_increment()),
            pct(r.result.counters.prefetch_accuracy()),
        ]);
    }
    table.print();
    rows
}

pub fn run() {
    let nasa = nasa_trace();
    let rows_nasa = report(&nasa, 5);
    let ucb = ucb_trace();
    let rows_ucb = report(&ucb, 4);
    let mut all = rows_nasa;
    all.extend(rows_ucb);
    write_json("related", &all);
}
