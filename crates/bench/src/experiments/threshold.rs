//! Threshold-matched comparison — the analysis behind EXPERIMENTS.md's
//! discussion of *where PB-PPM's advantage comes from*.
//!
//! The paper assigns PB-PPM a larger prefetch size threshold (30 KB) than
//! the baselines (10 KB), arguing PB "gives more prefetching considerations
//! to popular nodes" and can afford it. This binary levels the field: every
//! model at 10 KB and at 30 KB. The finding (recorded in EXPERIMENTS.md):
//! at matched thresholds the hit-ratio gap closes, and PB's intrinsic
//! advantages are *accuracy* (fraction of pushes that get used), *traffic*
//! (roughly half of the standard model's at equal hit ratio), and *space*
//! (~40x fewer nodes) — which is exactly the paper's §4.1 justification for
//! the asymmetric thresholds.

use crate::{nasa_trace, write_json};
use pbppm_sim::{run_experiment, ExperimentConfig, ModelSpec};

pub fn run() {
    let trace = nasa_trace();
    let mut rows: Vec<(String, pbppm_sim::RunResult)> = Vec::new();
    for (label, spec, thr) in [
        (
            "PPM-10KB",
            ModelSpec::Standard { max_height: None },
            10_000u64,
        ),
        ("PPM-30KB", ModelSpec::Standard { max_height: None }, 30_000),
        ("LRS-30KB", ModelSpec::Lrs, 30_000),
        ("PB-10KB", ModelSpec::pb_paper(true), 10_000),
        ("PB-30KB", ModelSpec::pb_paper(true), 30_000),
    ] {
        let mut cfg = ExperimentConfig::paper_default(spec, 5);
        cfg.policy.size_threshold = thr;
        let r = run_experiment(&trace, &cfg);
        println!(
            "{label:9} hit {:5.1}%  latency- {:5.1}%  traffic+ {:5.1}%  pushed {:5}  accuracy {:5.1}%",
            100.0 * r.hit_ratio(),
            100.0 * r.latency_reduction(),
            100.0 * r.traffic_increment(),
            r.counters.prefetched_docs,
            100.0 * r.counters.prefetch_accuracy()
        );
        rows.push((label.to_owned(), r));
    }
    write_json("threshold", &rows);
}
