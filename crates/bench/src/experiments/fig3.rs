//! Figure 3 — hit ratios and latency reductions of the three prediction
//! models versus training days, on the NASA-like (days 1–7) and UCB-like
//! (days 1–5) traces.
//!
//! Shapes to reproduce:
//!
//! * **NASA**: PB-PPM's hit ratio is consistently the highest (the paper's
//!   intro claims 5–10% over the others in most cases), and PB-PPM saves
//!   4–15% more average latency than either baseline.
//! * **UCB**: the margins shrink on the irregular trace; the paper reports
//!   the standard model's hit ratio a couple of points above PB-PPM there,
//!   with PB-PPM still well above LRS and by far the most cost-effective.

use crate::{nasa_trace, paper_models, pct, sweep, ucb_trace, write_json, Table};
use pbppm_trace::Trace;

fn report(trace: &Trace, days: &[usize]) -> Vec<crate::Cell> {
    let models = paper_models();
    let cells = sweep(trace, &models, days);

    let mut headers = vec!["days".to_string()];
    headers.extend(days.iter().map(|d| d.to_string()));
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut hit = Table::new(format!("Figure 3 — hit ratio, {}", trace.name), &headers);
    let mut lat = Table::new(
        format!(
            "Figure 3 — latency reduction vs no-prefetch, {}",
            trace.name
        ),
        &headers,
    );
    let mut base = vec!["baseline".to_string()];
    for &d in days {
        let cell = cells.iter().find(|c| c.days == d).expect("cell");
        base.push(pct(cell.result.baseline_hit_ratio()));
    }
    hit.row(base);
    for (label, _) in &models {
        let mut hrow = vec![label.to_string()];
        let mut lrow = vec![label.to_string()];
        for &d in days {
            let cell = cells
                .iter()
                .find(|c| c.model == *label && c.days == d)
                .expect("cell");
            hrow.push(pct(cell.result.hit_ratio()));
            lrow.push(pct(cell.result.latency_reduction()));
        }
        hit.row(hrow);
        lat.row(lrow);
    }
    hit.print();
    lat.print();
    cells
}

pub fn run() {
    let nasa = nasa_trace();
    let nasa_cells = report(&nasa, &(1..=7).collect::<Vec<_>>());
    write_json("fig3_nasa", &nasa_cells);

    let ucb = ucb_trace();
    let ucb_cells = report(&ucb, &(1..=5).collect::<Vec<_>>());
    write_json("fig3_ucb", &ucb_cells);
}
