//! Figure 4 — (1st/3rd) space growth of the LRS and PB-PPM models and
//! (2nd/4th) traffic increments of all three models, versus training days,
//! on the NASA-like and UCB-like traces.
//!
//! Shapes to reproduce:
//!
//! * LRS's node count grows quickly with the training window while PB-PPM
//!   grows much more slowly (the paper: LRS stores 1.73–6.9× more nodes on
//!   NASA, 10–several-dozen× more on UCB);
//! * traffic increments are modest for every model; the paper reports the
//!   standard model highest on both traces (≈14% NASA, ≈21% UCB). In this
//!   reproduction PB-PPM pays the most traffic for its extra hits (its
//!   push channel is the only one that stays active under the 0.25
//!   threshold); the deviation is analyzed in EXPERIMENTS.md.

use crate::{nasa_trace, paper_models, pct, sweep, ucb_trace, write_json, Table};
use pbppm_trace::Trace;

fn report(trace: &Trace, days: &[usize]) -> Vec<crate::Cell> {
    let models = paper_models();
    let cells = sweep(trace, &models, days);

    let mut headers = vec!["days".to_string()];
    headers.extend(days.iter().map(|d| d.to_string()));
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut nodes = Table::new(
        format!("Figure 4 — space (nodes), LRS vs PB-PPM, {}", trace.name),
        &headers,
    );
    for (label, _) in &models {
        if *label == "PPM" {
            continue; // the figure plots only the two compact models
        }
        let mut row = vec![label.to_string()];
        for &d in days {
            let cell = cells
                .iter()
                .find(|c| c.model == *label && c.days == d)
                .expect("cell");
            row.push(cell.result.node_count.to_string());
        }
        nodes.row(row);
    }
    nodes.print();

    let mut traffic = Table::new(
        format!("Figure 4 — traffic increment, {}", trace.name),
        &headers,
    );
    for (label, _) in &models {
        let mut row = vec![label.to_string()];
        for &d in days {
            let cell = cells
                .iter()
                .find(|c| c.model == *label && c.days == d)
                .expect("cell");
            row.push(pct(cell.result.traffic_increment()));
        }
        traffic.row(row);
    }
    traffic.print();
    cells
}

pub fn run() {
    let nasa = nasa_trace();
    let nasa_cells = report(&nasa, &(1..=7).collect::<Vec<_>>());
    write_json("fig4_nasa", &nasa_cells);

    let ucb = ucb_trace();
    let ucb_cells = report(&ucb, &(1..=5).collect::<Vec<_>>());
    write_json("fig4_ucb", &ucb_cells);
}
