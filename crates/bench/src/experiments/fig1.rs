//! Figure 1 — tree structures of the standard (left) and popularity-based
//! (right) models for the access sequence `A B C A' B' C'`.
//!
//! The paper's example: URLs `A`/`A'` have popularity grade 3, `B`/`B'`
//! grade 2, `C`/`C'` grade 1; the maximum height is 4. The standard model
//! roots a branch at every position (18 nodes); PB-PPM keeps two branches
//! and one special link (8 nodes).

use pbppm_core::render::render_tree;
use pbppm_core::{Interner, PbConfig, PbPpm, PopularityTable, Predictor, PruneConfig, StandardPpm};

pub fn run() {
    let mut names = Interner::new();
    let seq: Vec<_> = ["A", "B", "C", "A'", "B'", "C'"]
        .iter()
        .map(|s| names.intern(s))
        .collect();

    // Grades 3/2/1 for A/B/C and their primed twins: counts on a 1000-max
    // scale put them in the right log10 buckets.
    let mut pop = PopularityTable::builder();
    for (i, &u) in seq.iter().enumerate() {
        let count = match i % 3 {
            0 => 1000, // grade 3
            1 => 50,   // grade 2
            _ => 5,    // grade 1
        };
        pop.record_n(u, count);
    }
    let pop = pop.build();

    let mut standard = StandardPpm::new(Some(4));
    standard.train_session(&seq);
    standard.finalize();

    let mut pb = PbPpm::new(
        pop,
        PbConfig {
            heights: [1, 2, 3, 4], // grade-proportional, max height 4 as in the figure
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        },
    );
    pb.train_session(&seq);
    pb.finalize();

    println!("Figure 1 — access sequence A B C A' B' C' (grades 3/2/1, max height 4)\n");
    println!("Standard PPM ({} nodes):", standard.node_count());
    println!("{}", render_tree(standard.tree(), Some(&names)));
    println!(
        "Popularity-based PPM ({} nodes, `~>` marks a special link):",
        pb.node_count()
    );
    println!("{}", render_tree(pb.tree(), Some(&names)));
    println!(
        "space: standard {} nodes vs PB-PPM {} nodes ({}x reduction on this example)",
        standard.node_count(),
        pb.node_count(),
        standard.node_count() / pb.node_count().max(1)
    );
}
