//! Table 1 — space size in number of nodes used by each model on the
//! NASA-like trace, as the number of training days grows from 1 to 7.
//!
//! Paper reference (NASA-KSC, July 1995):
//!
//! | days | 1 | 2 | 3 | 4 | 5 | 6 | 7 |
//! |------|---|---|---|---|---|---|---|
//! | PPM  | 424,387 | 1,080,950 | 1,674,680 | 2,588,131 | 3,115,732 | 3,575,437 | 4,133,146 |
//! | LRS  | 9,715 | 19,567 | 33,233 | 44,325 | 56,635 | 70,247 | 82,525 |
//! | PB   | 5,527 | 7,164 | 8,476 | 9,156 | 9,276 | 9,976 | 10,411 |
//!
//! The shape to reproduce: the standard model dwarfs both compact models
//! and grows fastest; LRS grows steadily; PB-PPM stays smallest and grows
//! slowest.

use crate::{nasa_trace, paper_models, sweep, write_json, Table};

pub fn run() {
    let trace = nasa_trace();
    let days: Vec<usize> = (1..=7).collect();
    let models = paper_models();
    let cells = sweep(&trace, &models, &days);

    let mut headers = vec!["days".to_string()];
    headers.extend(days.iter().map(|d| d.to_string()));
    let mut table = Table::new(
        format!("Table 1 — space (nodes), {} trace", trace.name),
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (label, _) in &models {
        let mut row = vec![label.to_string()];
        for &d in &days {
            let cell = cells
                .iter()
                .find(|c| c.model == *label && c.days == d)
                .expect("cell");
            row.push(cell.result.node_count.to_string());
        }
        table.row(row);
    }
    // The paper's headline ratio: LRS nodes over PB nodes per day.
    let mut ratio = vec!["LRS/PB".to_string()];
    for &d in &days {
        let lrs = cells
            .iter()
            .find(|c| c.model == "LRS" && c.days == d)
            .unwrap()
            .result
            .node_count;
        let pb = cells
            .iter()
            .find(|c| c.model == "PB-PPM" && c.days == d)
            .unwrap()
            .result
            .node_count;
        ratio.push(format!("{:.1}x", lrs as f64 / pb.max(1) as f64));
    }
    table.row(ratio);
    table.print();

    // Storage detail at the deepest training window: the same structural
    // gauges the telemetry registry publishes (`model.nodes`, `model.edges`,
    // `model.special_links`, `model.bytes`), tabulated side by side.
    let last = *days.last().expect("non-empty day sweep");
    let mut detail = Table::new(
        format!(
            "Table 1b — storage detail, day {last}, {} trace",
            trace.name
        ),
        &["model", "nodes", "edges", "special links", "approx bytes"],
    );
    for (label, _) in &models {
        let cell = cells
            .iter()
            .find(|c| c.model == *label && c.days == last)
            .expect("cell");
        let stats = cell.result.model_stats.expect("prefetch runs carry stats");
        detail.row(vec![
            label.to_string(),
            stats.nodes.to_string(),
            stats.edges.to_string(),
            stats.special_links.to_string(),
            stats.total_bytes().to_string(),
        ]);
    }
    detail.print();

    write_json("table1", &cells);
}
