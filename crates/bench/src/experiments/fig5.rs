//! Figure 5 — prefetching between servers and proxies (§5): total hit
//! ratios (left) and network traffic increments (right) as the number of
//! clients behind one proxy grows from 1 to 32, on the NASA-like trace.
//!
//! Four configurations, as in the paper: standard PPM, LRS, and PB-PPM with
//! 4 KB and 10 KB prefetch size thresholds ("PB-4KB", "PB-10KB").
//!
//! Shapes to reproduce: every curve rises with client count (the shared
//! proxy cache aggregates more locality); LRS is the lowest hit-ratio
//! curve; PB-10KB the highest; the standard model sits between, approaching
//! PB-4KB at high client counts; traffic increments *decrease* as clients
//! are added.

use crate::{pct, seed, write_json, Table};
use pbppm_sim::{
    parallel_map, run_proxy_experiment, ExperimentConfig, ModelSpec, ProxyExperimentConfig,
    ProxyRunResult,
};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
struct ProxyCell {
    model: String,
    clients: usize,
    result: ProxyRunResult,
}

pub fn run() {
    // A denser client pool than the §4 experiments: each client funnels
    // roughly ten times more traffic, which is what makes per-proxy cells
    // with 1-8 clients statistically meaningful.
    let mut wl = pbppm_trace::WorkloadConfig::nasa_like(seed());
    wl.n_clients = 120;
    wl.client_alpha = 0.2;
    let trace = wl.generate();
    let train_days = 5;
    let client_counts = [1usize, 2, 4, 8, 16, 24, 32];

    // Three evaluation days give the low-client-count cells enough volume
    // for stable statistics.
    let eval_days = 3;
    let mk = |spec: ModelSpec, threshold: Option<u64>| {
        let mut cfg = ExperimentConfig::paper_default(spec, train_days);
        cfg.eval_days = eval_days;
        if let Some(t) = threshold {
            cfg.policy.size_threshold = t;
        }
        cfg
    };
    let configs: Vec<(String, ExperimentConfig)> = vec![
        (
            "PPM".into(),
            mk(ModelSpec::Standard { max_height: None }, None),
        ),
        ("LRS".into(), mk(ModelSpec::Lrs, None)),
        ("PB-4KB".into(), mk(ModelSpec::pb_paper(true), Some(4_000))),
        (
            "PB-10KB".into(),
            mk(ModelSpec::pb_paper(true), Some(10_000)),
        ),
    ];

    let jobs: Vec<(String, ExperimentConfig, usize)> = client_counts
        .iter()
        .flat_map(|&k| {
            configs
                .iter()
                .map(move |(label, cfg)| (label.clone(), cfg.clone(), k))
        })
        .collect();
    let cells: Vec<ProxyCell> = parallel_map(&jobs, |(label, cfg, k)| {
        let pcfg = ProxyExperimentConfig {
            base: cfg.clone(),
            clients_per_proxy: *k,
            selection_seed: 7,
            min_client_views: 40,
            proxy_groups: 3,
        };
        ProxyCell {
            model: label.clone(),
            clients: *k,
            result: run_proxy_experiment(&trace, &pcfg),
        }
    });

    let mut headers = vec!["clients".to_string()];
    headers.extend(client_counts.iter().map(|k| k.to_string()));
    let headers: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut hit = Table::new(
        "Figure 5 (left) — total proxy hit ratio, nasa-like, 5 training days",
        &headers,
    );
    let mut traffic = Table::new(
        "Figure 5 (right) — server-proxy traffic increment",
        &headers,
    );
    for (label, _) in &configs {
        let mut hrow = vec![label.clone()];
        let mut trow = vec![label.clone()];
        for &k in &client_counts {
            let cell = cells
                .iter()
                .find(|c| &c.model == label && c.clients == k)
                .expect("cell");
            hrow.push(pct(cell.result.hit_ratio()));
            trow.push(pct(cell.result.traffic_increment()));
        }
        hit.row(hrow);
        traffic.row(trow);
    }
    hit.print();
    traffic.print();
    write_json("fig5", &cells);
}
