//! `loadgen` — open-loop load generation against the sharded serving
//! core ([`ShardedServer`]), the second leg of `scripts/perf-gate.sh`.
//!
//! `throughput`'s serve measurement times requests back-to-back
//! (closed-loop), which can only say how fast the server goes when the
//! client politely waits. Real prefetching clients do not wait: requests
//! arrive on their own clock, and a slow request delays everything queued
//! behind it. This experiment measures that regime:
//!
//! * **open-loop arrivals** — request times are drawn from a Poisson
//!   process at `--rate` requests/second (exponential inter-arrivals from
//!   a seeded RNG), fixed *before* the run starts; the server being slow
//!   does not slow the offered load down;
//! * **coordinated-omission-free latency** — each request's latency is
//!   measured from its *scheduled arrival* to the completion of the batch
//!   that served it, so queueing delay behind a rebuild or a slow
//!   neighbour is charged to the requests that actually waited;
//! * **the real dispatch path** — arrivals are drained into batches of at
//!   most [`MAX_BATCH`] lines and pushed through
//!   [`ShardedServer::handle_batch`], exactly like the `pbppm serve`
//!   front-end drains stdin.
//!
//! The workload replays NASA-like sessions as `train`/`predict` traffic
//! tagged with `@client` routing tokens spread over [`CLIENTS`] clients,
//! so every shard sees traffic. Results are printed as a table and
//! written to `results/loadgen.json` and `BENCH_loadgen.json` at the
//! workspace root (the committed baseline). When
//! `PBPPM_PERF_BASELINE_LOADGEN` names a baseline JSON, the run gates its
//! per-command p99 against it and exits non-zero on regression.
//!
//! The whole open loop runs [`ROUNDS`] times against a fresh server with
//! the identical arrival schedule, and every percentile reports the
//! minimum across rounds — the same noise-robust statistic as
//! `throughput`'s `secs_per_pass`: open-loop tails amplify scheduler
//! noise, and the gate needs run-to-run jitter well below its tolerance.
//!
//! Flags: `--rate R --seconds S --shards N --threads T --seed K`
//! (defaults 2000 / 2 / 4 / 0 / 1 — the committed-baseline shape; the
//! default rate sits below single-writer saturation so the measured tail
//! is rebuild-stall queueing, not unbounded overload backlog).

use crate::{nasa_trace, write_json, Table};
use pbppm_core::PbConfig;
use pbppm_serve::{ServeOptions, ShardedOptions, ShardedServer};
use pbppm_trace::{sessionize, SessionizerConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Arrivals drained per dispatch, mirroring the serve front-end's batch
/// cap — the loadgen must not batch more aggressively than production.
const MAX_BATCH: usize = 256;
/// Distinct `@client` routing tokens in the workload; enough that every
/// shard of any plausible `--shards` owns many clients.
const CLIENTS: usize = 64;
/// Allowed p99 slowdown before the gate fails. 100%: even as a
/// min-across-rounds, an open-loop tail jitters ~1.5x run to run on a
/// busy host — far noisier than `throughput`'s closed-loop medians —
/// while the regressions this gate exists for (a lock on the read path,
/// sync I/O inside dispatch, an accidental per-request rebuild) are
/// order-of-magnitude, not fractional.
const GATE_TOLERANCE: f64 = 1.00;
/// Below this gap to the next arrival the driver spins instead of
/// sleeping: scheduler wake-up jitter would otherwise be billed to the
/// request as queueing delay it never suffered.
const SPIN_UNDER: Duration = Duration::from_micros(500);
/// Full open-loop repetitions; percentiles take the minimum across
/// rounds (see the module docs).
const ROUNDS: usize = 3;

/// Latency percentiles for one command kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CommandLatency {
    /// Command ("train" or "predict").
    pub cmd: String,
    /// Requests of this kind per round (the schedule repeats exactly).
    pub requests: usize,
    /// Median latency, nanoseconds (scheduled arrival → batch
    /// completion), minimum across rounds.
    pub p50_ns: f64,
    /// 99th percentile, nanoseconds, minimum across rounds. This is the
    /// gated tail.
    pub p99_ns: f64,
    /// 99.9th percentile, nanoseconds, minimum across rounds.
    pub p999_ns: f64,
    /// Worst latency within a round, nanoseconds, minimum across rounds.
    pub max_ns: f64,
}

/// Everything one `loadgen` run measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Trace the workload was drawn from.
    pub trace: String,
    /// Offered load, requests per second.
    pub rate_per_sec: f64,
    /// Nominal run length, seconds.
    pub seconds: f64,
    /// Model shards the server ran with.
    pub shards: usize,
    /// Dispatch worker threads (0 = auto).
    pub threads: usize,
    /// Arrival-process RNG seed.
    pub seed: u64,
    /// Full open-loop repetitions behind the minima below.
    pub rounds: usize,
    /// Requests completed, summed across rounds.
    pub requests: usize,
    /// `err`-prefixed responses across rounds (must be 0 on a healthy run).
    pub errors: usize,
    /// Dispatched batches across rounds; `requests / batches` is the mean
    /// drain depth.
    pub batches: usize,
    /// Best round's completed requests / wall time — sags below
    /// `rate_per_sec` only when the server cannot keep up.
    pub achieved_per_sec: f64,
    /// Rebuilds the audit gate refused to publish, across rounds (must
    /// stay 0).
    pub publish_rejected: u64,
    /// Per-command latency percentiles, each the minimum across rounds.
    pub commands: Vec<CommandLatency>,
}

/// Run parameters, from the command line.
struct Config {
    rate: f64,
    seconds: f64,
    shards: usize,
    threads: usize,
    seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            rate: 2000.0,
            seconds: 2.0,
            shards: 4,
            threads: 0,
            seed: 1,
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut val = || argv.next().ok_or_else(|| format!("{flag}: missing value"));
        match flag.as_str() {
            "--rate" => cfg.rate = val()?.parse().map_err(|e| format!("--rate: {e}"))?,
            "--seconds" => cfg.seconds = val()?.parse().map_err(|e| format!("--seconds: {e}"))?,
            "--shards" => cfg.shards = val()?.parse().map_err(|e| format!("--shards: {e}"))?,
            "--threads" => cfg.threads = val()?.parse().map_err(|e| format!("--threads: {e}"))?,
            "--seed" => cfg.seed = val()?.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let positive = |x: f64| x.is_finite() && x > 0.0;
    if !positive(cfg.rate) || !positive(cfg.seconds) {
        return Err("--rate and --seconds must be positive".to_owned());
    }
    Ok(cfg)
}

/// One workload command: the protocol line plus its kind index
/// (0 = train, 1 = predict) for latency attribution.
struct Command {
    line: String,
    kind: usize,
}

/// Builds the replayable command list from the NASA-like trace: every
/// session becomes one `train` plus predicts over its growing prefixes,
/// all tagged with a deterministic `@client` token. The list is cycled if
/// the offered load outlasts it.
fn build_workload() -> (String, Vec<Command>) {
    let trace = nasa_trace();
    let sessions = sessionize(trace.first_days(2), &SessionizerConfig::default());
    let resolve = |id: pbppm_core::UrlId| trace.urls.resolve(id).unwrap_or("?");
    let mut commands = Vec::new();
    for (i, s) in sessions.iter().enumerate() {
        let client = format!("c{}", i % CLIENTS);
        let urls: Vec<&str> = s.views.iter().map(|v| resolve(v.url)).collect();
        commands.push(Command {
            line: format!("train @{client} {}", urls.join(",")),
            kind: 0,
        });
        for k in 1..urls.len().min(5) {
            commands.push(Command {
                line: format!("predict @{client} {}", urls[..k].join(",")),
                kind: 1,
            });
        }
    }
    (trace.name.clone(), commands)
}

/// Poisson arrival offsets from t=0: exponential inter-arrival gaps,
/// `-ln(1 - u) / rate` seconds each, fixed before the run starts.
fn arrival_schedule(rate: f64, seconds: f64, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    while t < seconds {
        let u: f64 = rng.gen();
        t += -(1.0 - u).ln() / rate;
        arrivals.push(Duration::from_secs_f64(t));
    }
    arrivals
}

/// Nearest-rank percentile of an ascending-sorted latency list.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // in-range by construction
fn percentile_ns(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

fn latency_row(cmd: &str, lat: &mut [u64]) -> CommandLatency {
    lat.sort_unstable();
    CommandLatency {
        cmd: cmd.to_owned(),
        requests: lat.len(),
        p50_ns: percentile_ns(lat, 0.50),
        p99_ns: percentile_ns(lat, 0.99),
        p999_ns: percentile_ns(lat, 0.999),
        max_ns: lat.last().copied().unwrap_or(0) as f64,
    }
}

/// Drives the open loop: waits for the next scheduled arrival, drains
/// everything due into one batch, dispatches it, and charges each request
/// the time from its scheduled arrival to the batch's completion.
fn drive(
    server: &mut ShardedServer,
    commands: &[Command],
    arrivals: &[Duration],
) -> Result<([Vec<u64>; 2], usize, usize), String> {
    let mut latencies: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut batch: Vec<String> = Vec::with_capacity(MAX_BATCH);
    let mut kinds: Vec<usize> = Vec::with_capacity(MAX_BATCH);
    let mut responses: Vec<String> = Vec::new();
    let mut errors = 0usize;
    let mut batches = 0usize;
    let mut next = 0usize;
    let start = Instant::now();
    while next < arrivals.len() {
        let now = start.elapsed();
        if arrivals[next] > now {
            let gap = arrivals[next] - now;
            if gap > SPIN_UNDER {
                std::thread::sleep(gap - SPIN_UNDER);
            } else {
                std::hint::spin_loop();
            }
            continue;
        }
        batch.clear();
        kinds.clear();
        let first = next;
        while next < arrivals.len() && batch.len() < MAX_BATCH && arrivals[next] <= start.elapsed()
        {
            let cmd = &commands[next % commands.len()];
            batch.push(cmd.line.clone());
            kinds.push(cmd.kind);
            next += 1;
        }
        server
            .handle_batch(&batch, &mut responses)
            .map_err(|e| e.to_string())?;
        batches += 1;
        let done = start.elapsed();
        for (i, kind) in kinds.iter().enumerate() {
            let lat = done.saturating_sub(arrivals[first + i]);
            latencies[*kind].push(u64::try_from(lat.as_nanos()).unwrap_or(u64::MAX));
            if responses[i].starts_with("err") {
                errors += 1;
            }
        }
    }
    Ok((latencies, errors, batches))
}

/// Compares `report` against the `PBPPM_PERF_BASELINE_LOADGEN` file, if
/// set, and exits non-zero on any gated regression.
fn gate(report: &LoadgenReport) {
    let Ok(path) = std::env::var("PBPPM_PERF_BASELINE_LOADGEN") else {
        return;
    };
    let baseline: LoadgenReport = match std::fs::read_to_string(&path)
        .map_err(|e| e.to_string())
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).map_err(|e| e.to_string()))
        .and_then(|v| {
            <LoadgenReport as serde::Deserialize>::from_value(&v).map_err(|e| e.to_string())
        }) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf-gate: cannot read loadgen baseline {path}: {e}");
            std::process::exit(2);
        }
    };
    if baseline.shards != report.shards
        || (baseline.rate_per_sec - report.rate_per_sec).abs() > 1e-9
    {
        eprintln!(
            "perf-gate: loadgen baseline shape mismatch (baseline {} shards @ {}/s, run {} shards @ {}/s) — regenerate the baseline",
            baseline.shards, baseline.rate_per_sec, report.shards, report.rate_per_sec
        );
        std::process::exit(2);
    }
    let mut failures: Vec<String> = Vec::new();
    if report.errors > 0 {
        failures.push(format!("{} err responses under load", report.errors));
    }
    if report.publish_rejected > 0 {
        failures.push(format!(
            "{} rebuilds failed the publish audit",
            report.publish_rejected
        ));
    }
    let slack = 1.0 + GATE_TOLERANCE;
    for new in &report.commands {
        let Some(old) = baseline.commands.iter().find(|c| c.cmd == new.cmd) else {
            continue;
        };
        if old.p99_ns > 0.0 && new.p99_ns > old.p99_ns * slack {
            failures.push(format!(
                "{} p99 under open-loop load: {:.0}% slower than baseline ({:.3e} vs {:.3e} ns)",
                new.cmd,
                100.0 * (new.p99_ns / old.p99_ns - 1.0),
                new.p99_ns,
                old.p99_ns
            ));
        }
    }
    if failures.is_empty() {
        eprintln!(
            "perf-gate: loadgen p99s within {:.0}% of {path}",
            100.0 * GATE_TOLERANCE
        );
    } else {
        for f in &failures {
            eprintln!("perf-gate: REGRESSION — {f}");
        }
        std::process::exit(1);
    }
}

/// Writes the committed loadgen baseline at the workspace root.
fn write_root_json(report: &LoadgenReport) {
    let mut path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_loadgen.json");
    match serde_json::to_string_pretty(report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize loadgen report: {e}"),
    }
}

pub fn run() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: loadgen [--rate R] [--seconds S] [--shards N] [--threads T] [--seed K]"
            );
            std::process::exit(2);
        }
    };
    let (trace_name, commands) = build_workload();
    let arrivals = arrival_schedule(cfg.rate, cfg.seconds, cfg.seed);
    let dir = std::env::temp_dir().join(format!("pbppm-bench-loadgen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = ShardedOptions {
        shards: cfg.shards,
        threads: cfg.threads,
        serve: ServeOptions {
            checkpoint_every: u64::MAX, // no disk traffic inside the timed region
            flush_every: 0,
            ..ServeOptions::default()
        },
    };
    let measured = (|| -> Result<LoadgenReport, String> {
        let mut best: Option<[CommandLatency; 2]> = None;
        let mut requests = 0usize;
        let mut errors = 0usize;
        let mut batches = 0usize;
        let mut achieved = 0.0f64;
        let mut publish_rejected = 0u64;
        for round in 0..ROUNDS {
            let round_dir = dir.join(format!("round-{round}"));
            let mut server =
                ShardedServer::open(&round_dir.display().to_string(), PbConfig::default(), opts)
                    .map_err(|e| e.to_string())?;
            let t0 = Instant::now();
            let ([mut train, mut predict], round_errors, round_batches) =
                drive(&mut server, &commands, &arrivals)?;
            let wall = t0.elapsed().as_secs_f64();
            let completed = train.len() + predict.len();
            requests += completed;
            errors += round_errors;
            batches += round_batches;
            achieved = achieved.max(completed as f64 / wall.max(1e-12));
            publish_rejected += server.publish_rejected();
            let rows = [
                latency_row("train", &mut train),
                latency_row("predict", &mut predict),
            ];
            best = Some(match best.take() {
                None => rows,
                Some(prev) => {
                    let fold = |a: &CommandLatency, b: &CommandLatency| CommandLatency {
                        cmd: a.cmd.clone(),
                        requests: a.requests,
                        p50_ns: a.p50_ns.min(b.p50_ns),
                        p99_ns: a.p99_ns.min(b.p99_ns),
                        p999_ns: a.p999_ns.min(b.p999_ns),
                        max_ns: a.max_ns.min(b.max_ns),
                    };
                    [fold(&prev[0], &rows[0]), fold(&prev[1], &rows[1])]
                }
            });
        }
        let [train, predict] = best.ok_or("no rounds ran")?;
        Ok(LoadgenReport {
            trace: trace_name.clone(),
            rate_per_sec: cfg.rate,
            seconds: cfg.seconds,
            shards: cfg.shards,
            threads: cfg.threads,
            seed: cfg.seed,
            rounds: ROUNDS,
            requests,
            errors,
            batches,
            achieved_per_sec: achieved,
            publish_rejected,
            commands: vec![train, predict],
        })
    })();
    let _ = std::fs::remove_dir_all(&dir);
    let report = match measured {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: loadgen run failed: {e}");
            std::process::exit(1);
        }
    };

    let mut table = Table::new(
        format!(
            "Loadgen — open-loop {} req/s, {} shards, {} trace",
            report.rate_per_sec, report.shards, report.trace
        ),
        &["cmd", "requests", "p50 µs", "p99 µs", "p999 µs", "max µs"],
    );
    for c in &report.commands {
        table.row(vec![
            c.cmd.clone(),
            c.requests.to_string(),
            format!("{:.1}", c.p50_ns / 1e3),
            format!("{:.1}", c.p99_ns / 1e3),
            format!("{:.1}", c.p999_ns / 1e3),
            format!("{:.1}", c.max_ns / 1e3),
        ]);
    }
    table.print();
    println!(
        "achieved {:.0} req/s over {} batches ({} errors, {} publish rejections)",
        report.achieved_per_sec, report.batches, report.errors, report.publish_rejected
    );

    write_json("loadgen", &report);
    write_root_json(&report);
    gate(&report);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_schedule_is_deterministic_and_open_loop() {
        let a = arrival_schedule(1000.0, 0.5, 7);
        let b = arrival_schedule(1000.0, 0.5, 7);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals ascend");
        // ~1000/s for 0.5s ⇒ ~500 arrivals; Poisson noise stays well
        // inside ±40% at this count.
        assert!((300..700).contains(&a.len()), "got {}", a.len());
        let c = arrival_schedule(1000.0, 0.5, 8);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let lat: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile_ns(&lat, 0.50), 501.0);
        assert_eq!(percentile_ns(&lat, 0.99), 990.0);
        assert_eq!(percentile_ns(&lat, 0.999), 999.0);
        assert_eq!(percentile_ns(&[], 0.5), 0.0);
    }

    #[test]
    fn workload_mixes_commands_and_clients() {
        let (_, commands) = build_workload();
        let trains = commands.iter().filter(|c| c.kind == 0).count();
        let predicts = commands.iter().filter(|c| c.kind == 1).count();
        assert!(trains > 100, "got {trains} trains");
        assert!(predicts > trains, "predict-heavy: {predicts} vs {trains}");
        for c in &commands {
            let tag = c.line.split_whitespace().nth(1).unwrap();
            assert!(tag.starts_with("@c"), "routing token present: {}", c.line);
        }
    }
}
