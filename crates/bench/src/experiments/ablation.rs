//! Ablation study over PB-PPM's design choices (DESIGN.md §5, "ablation
//! benches for the design choices").
//!
//! Variants, all trained on 5 days of the NASA-like trace:
//!
//! * `PB (paper)`    — both space optimizations, special links on;
//! * `PB rel-only`   — only the 1% relative-probability cut (the paper's
//!   NASA setting);
//! * `PB no-prune`   — no space optimization at all;
//! * `PB no-links`   — rule 3 special links disabled;
//! * `PB flat-5`     — grade-independent heights `[5,5,5,5]` (tests rule 1);
//! * `PB tall`       — heights `[3,5,7,9]`;
//! * `PB short`      — heights `[1,2,3,4]`.

use crate::{nasa_trace, pct, write_json, Table};
use pbppm_core::{PbConfig, PruneConfig};
use pbppm_sim::{parallel_map, run_experiment, ExperimentConfig, ModelSpec};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
struct AblationCell {
    variant: String,
    result: pbppm_sim::RunResult,
}

pub fn run() {
    let trace = nasa_trace();
    let train_days = 5;

    let paper = PbConfig {
        prune: PruneConfig::aggressive(),
        ..PbConfig::default()
    };
    let variants: Vec<(String, PbConfig)> = vec![
        ("PB (paper)".into(), paper),
        (
            "PB rel-only".into(),
            PbConfig {
                prune: PruneConfig::default(),
                ..paper
            },
        ),
        (
            "PB no-prune".into(),
            PbConfig {
                prune: PruneConfig::disabled(),
                ..paper
            },
        ),
        (
            "PB no-links".into(),
            PbConfig {
                special_links: false,
                ..paper
            },
        ),
        (
            "PB flat-5".into(),
            PbConfig {
                heights: [5, 5, 5, 5],
                ..paper
            },
        ),
        (
            "PB tall".into(),
            PbConfig {
                heights: [3, 5, 7, 9],
                max_order: 10,
                ..paper
            },
        ),
        (
            "PB short".into(),
            PbConfig {
                heights: [1, 2, 3, 4],
                ..paper
            },
        ),
    ];

    let cells: Vec<AblationCell> = parallel_map(&variants, |(label, cfg)| {
        let ecfg = ExperimentConfig::paper_default(ModelSpec::Pb(*cfg), train_days);
        AblationCell {
            variant: label.clone(),
            result: run_experiment(&trace, &ecfg),
        }
    });

    let mut table = Table::new(
        "PB-PPM ablations — nasa-like, 5 training days",
        &[
            "variant",
            "nodes",
            "hit",
            "latency-",
            "traffic+",
            "pop-frac",
            "path-util",
        ],
    );
    for c in &cells {
        table.row(vec![
            c.variant.clone(),
            c.result.node_count.to_string(),
            pct(c.result.hit_ratio()),
            pct(c.result.latency_reduction()),
            pct(c.result.traffic_increment()),
            pct(c.result.popular_prefetch_fraction()),
            pct(c.result.path_utilization()),
        ]);
    }
    table.print();
    write_json("ablation", &cells);
}
