//! The experiment implementations behind the regeneration binaries.
//!
//! Each submodule's `run()` regenerates one table or figure of the paper
//! (printing the text table and writing `results/<name>.json`); the
//! binaries in `src/bin/` and the `all` binary are thin wrappers.

pub mod ablation;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod ingest;
pub mod loadgen;
pub mod network;
pub mod quality;
pub mod related;
pub mod table1;
pub mod table2;
pub mod threshold;
pub mod throughput;
