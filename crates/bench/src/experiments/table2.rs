//! Table 2 — space size in number of nodes used by each model on the
//! UCB-CS-like trace, as the number of training days grows from 1 to 5.
//!
//! Paper reference (UCB-CS, July 2000; PB with both space optimizations):
//!
//! | days | 1 | 2 | 3 | 4 | 5 |
//! |------|---|---|---|---|---|
//! | PPM  | 3,339,315 | 8,872,552 | 10,674,669 | 21,579,994 | 43,365,678 |
//! | LRS  | 16,200 | 39,437 | 78,816 | 108,521 | 390,916 |
//! | PB   | 3,804 | 4,609 | 6,192 | 7,684 | 10,981 |
//!
//! The shape to reproduce: "the space reductions by the popularity-based
//! [model are] 10 to several dozen times compared with the LRS model", and
//! the standard model is orders of magnitude larger still.

use crate::{paper_models, sweep, ucb_trace, write_json, Table};

pub fn run() {
    let trace = ucb_trace();
    let days: Vec<usize> = (1..=5).collect();
    let models = paper_models();
    let cells = sweep(&trace, &models, &days);

    let mut headers = vec!["days".to_string()];
    headers.extend(days.iter().map(|d| d.to_string()));
    let mut table = Table::new(
        format!("Table 2 — space (nodes), {} trace", trace.name),
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (label, _) in &models {
        let mut row = vec![label.to_string()];
        for &d in &days {
            let cell = cells
                .iter()
                .find(|c| c.model == *label && c.days == d)
                .expect("cell");
            row.push(cell.result.node_count.to_string());
        }
        table.row(row);
    }
    let mut ratio = vec!["LRS/PB".to_string()];
    for &d in &days {
        let lrs = cells
            .iter()
            .find(|c| c.model == "LRS" && c.days == d)
            .unwrap()
            .result
            .node_count;
        let pb = cells
            .iter()
            .find(|c| c.model == "PB-PPM" && c.days == d)
            .unwrap()
            .result
            .node_count;
        ratio.push(format!("{:.1}x", lrs as f64 / pb.max(1) as f64));
    }
    table.row(ratio);
    table.print();
    write_json("table2", &cells);
}
