//! The `throughput` criterion group: single-click predict latency (hashed
//! fast path vs the retained reference scan), batched `predict_many`
//! throughput, and end-to-end eval-pass throughput, for all three paper
//! models. The `throughput` *binary* measures the same quantities at the
//! full day-7 NASA scale and feeds `scripts/perf-gate.sh`; this group is
//! the statistically-sampled criterion view of the same surfaces.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbppm_core::{
    LrsPpm, PbConfig, PbPpm, PopularityTable, PredictUsage, Prediction, Predictor, PruneConfig,
    StandardPpm, UrlId,
};
use pbppm_sim::{run_experiment, ExperimentConfig, ModelSpec};
use pbppm_trace::{
    sessionize, sessionize_trace, Session, SessionizerConfig, Trace, WorkloadConfig,
};

fn trace_and_sessions() -> (Trace, Vec<Session>, PopularityTable) {
    let trace = WorkloadConfig::tiny(7).generate();
    let sessions = sessionize_trace(&trace);
    let pop = popularity(&sessions);
    (trace, sessions, pop)
}

/// The day-7 NASA-like training set — the same tree sizes the `throughput`
/// binary records in `BENCH_throughput.json`.
fn day7_sessions() -> (Vec<Session>, PopularityTable) {
    let trace = WorkloadConfig::nasa_like(1).generate();
    let sessions = sessionize(trace.first_days(7), &SessionizerConfig::default());
    let pop = popularity(&sessions);
    (sessions, pop)
}

fn popularity(sessions: &[Session]) -> PopularityTable {
    let mut counts = PopularityTable::builder();
    for s in sessions {
        for v in &s.views {
            counts.record(v.url);
        }
    }
    counts.build()
}

fn train<P: Predictor>(mut model: P, sessions: &[Session]) -> P {
    for s in sessions {
        model.train_session(&s.urls());
    }
    model.finalize();
    model
}

fn contexts(sessions: &[Session]) -> Vec<Vec<UrlId>> {
    sessions
        .iter()
        .take(200)
        .flat_map(|s| {
            let urls = s.urls();
            (1..=urls.len().min(8))
                .map(move |k| urls[..k].to_vec())
                .collect::<Vec<_>>()
        })
        .collect()
}

fn bench_single_click(c: &mut Criterion) {
    let (sessions, pop) = day7_sessions();
    let standard = train(StandardPpm::unbounded(), &sessions);
    let lrs = train(LrsPpm::new(), &sessions);
    let pb = train(
        PbPpm::new(
            pop,
            PbConfig {
                prune: PruneConfig::aggressive(),
                ..PbConfig::default()
            },
        ),
        &sessions,
    );
    let ctxs = contexts(&sessions);

    let mut group = c.benchmark_group("throughput/single-click");
    group.throughput(Throughput::Elements(ctxs.len() as u64));
    let mut run = |name: &str, predict: &mut dyn FnMut(&[UrlId], &mut Vec<Prediction>)| {
        group.bench_function(name, |b| {
            let mut out: Vec<Prediction> = Vec::new();
            b.iter(|| {
                let mut emitted = 0usize;
                for ctx in &ctxs {
                    predict(ctx, &mut out);
                    emitted += out.len();
                }
                emitted
            })
        });
    };
    let mut usage = PredictUsage::default();
    run("ppm-fast", &mut |ctx, out| {
        usage.clear();
        standard.predict_ro(ctx, out, &mut usage);
    });
    run("ppm-scan", &mut |ctx, out| {
        standard.predict_reference(ctx, out)
    });
    let mut usage = PredictUsage::default();
    run("lrs-fast", &mut |ctx, out| {
        usage.clear();
        lrs.predict_ro(ctx, out, &mut usage);
    });
    run("lrs-scan", &mut |ctx, out| lrs.predict_reference(ctx, out));
    let mut usage = PredictUsage::default();
    run("pb-fast", &mut |ctx, out| {
        usage.clear();
        pb.predict_ro(ctx, out, &mut usage);
    });
    run("pb-scan", &mut |ctx, out| pb.predict_reference(ctx, out));
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let (sessions, pop) = day7_sessions();
    let mut standard = train(StandardPpm::unbounded(), &sessions);
    let mut lrs = train(LrsPpm::new(), &sessions);
    let mut pb = train(PbPpm::new(pop, PbConfig::default()), &sessions);
    let ctxs = contexts(&sessions);
    let slices: Vec<&[UrlId]> = ctxs.iter().map(Vec::as_slice).collect();

    let mut group = c.benchmark_group("throughput/batched");
    group.throughput(Throughput::Elements(ctxs.len() as u64));
    let mut run = |name: &str, model: &mut dyn Predictor| {
        group.bench_function(name, |b| {
            let mut outs: Vec<Vec<Prediction>> = Vec::new();
            b.iter(|| {
                model.predict_many(&slices, &mut outs);
                outs.iter().map(Vec::len).sum::<usize>()
            })
        });
    };
    run("ppm", &mut standard);
    run("lrs", &mut lrs);
    run("pb-ppm", &mut pb);
    group.finish();
}

fn bench_eval_pass(c: &mut Criterion) {
    let (trace, _, _) = trace_and_sessions();
    let mut group = c.benchmark_group("throughput/eval-pass");
    for (name, spec) in [
        ("ppm", ModelSpec::Standard { max_height: None }),
        ("lrs", ModelSpec::Lrs),
        ("pb-ppm", ModelSpec::pb_paper(true)),
    ] {
        for threads in [1usize, 0] {
            let label = if threads == 1 { "serial" } else { "parallel" };
            group.bench_function(format!("{name}/{label}"), |b| {
                let mut cfg = ExperimentConfig::paper_default(spec.clone(), 2);
                cfg.threads = threads;
                b.iter(|| run_experiment(&trace, &cfg).counters.requests)
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_click, bench_batched, bench_eval_pass
}
criterion_main!(benches);
