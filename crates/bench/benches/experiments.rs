//! End-to-end experiment-cell benchmarks — one group per table/figure of
//! the paper, measuring how long regenerating a representative cell takes
//! (at reduced scale; the full-scale regeneration binaries live in
//! `src/bin/`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbppm_sim::{
    run_experiment, run_proxy_experiment, ExperimentConfig, ModelSpec, ProxyExperimentConfig,
};
use pbppm_trace::{Trace, WorkloadConfig};

fn bench_trace() -> Trace {
    WorkloadConfig::tiny(23).generate()
}

/// One §4 cell per model — the unit of work behind Fig. 3/4 and Tables 1/2.
fn bench_fig3_table1_cells(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("fig3-table1-cell");
    group.sample_size(10);
    for (name, spec) in [
        ("standard-ppm", ModelSpec::Standard { max_height: None }),
        ("lrs-ppm", ModelSpec::Lrs),
        ("pb-ppm", ModelSpec::pb_paper(true)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            let cfg = ExperimentConfig::paper_default(spec.clone(), 2);
            b.iter(|| run_experiment(&trace, &cfg).counters.requests)
        });
    }
    group.finish();
}

/// The Fig. 2 cell uses the height-3 standard model.
fn bench_fig2_cell(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("fig2-cell");
    group.sample_size(10);
    group.bench_function("3-ppm", |b| {
        let cfg = ExperimentConfig::paper_default(
            ModelSpec::Standard {
                max_height: Some(3),
            },
            2,
        );
        b.iter(|| {
            let r = run_experiment(&trace, &cfg);
            (r.popular_prefetch_fraction(), r.path_utilization())
        })
    });
    group.finish();
}

/// One §5 (Fig. 5) proxy cell.
fn bench_fig5_cell(c: &mut Criterion) {
    let trace = bench_trace();
    let mut group = c.benchmark_group("fig5-cell");
    group.sample_size(10);
    for clients in [4usize, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &clients,
            |b, &clients| {
                let cfg = ProxyExperimentConfig {
                    base: ExperimentConfig::paper_default(ModelSpec::pb_paper(true), 2),
                    clients_per_proxy: clients,
                    selection_seed: 7,
                    min_client_views: 1,
                    proxy_groups: 1,
                };
                b.iter(|| run_proxy_experiment(&trace, &cfg).requests)
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig3_table1_cells,
    bench_fig2_cell,
    bench_fig5_cell
);
criterion_main!(benches);
