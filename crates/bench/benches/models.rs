//! Model-level performance benchmarks.
//!
//! The paper's operational claim is that "with the efficient data structure
//! of compacted trees, the proposed technique significantly reduces the Web
//! server processing time for prefetching". These benches quantify it:
//! training throughput, per-request prediction latency, and the cost of the
//! post-build space optimization, for each model.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use pbppm_core::{
    LrsPpm, PbConfig, PbPpm, PopularityTable, Prediction, Predictor, PruneConfig, StandardPpm,
    UrlId,
};
use pbppm_trace::{sessionize_trace, Session, WorkloadConfig};

fn training_data() -> (Vec<Session>, PopularityTable) {
    let trace = WorkloadConfig::tiny(7).generate();
    let sessions = sessionize_trace(&trace);
    let mut counts = PopularityTable::builder();
    for s in &sessions {
        for v in &s.views {
            counts.record(v.url);
        }
    }
    let pop = counts.build();
    (sessions, pop)
}

fn train<P: Predictor>(mut model: P, sessions: &[Session]) -> P {
    for s in sessions {
        model.train_session(&s.urls());
    }
    model.finalize();
    model
}

fn bench_build(c: &mut Criterion) {
    let (sessions, pop) = training_data();
    let views: u64 = sessions.iter().map(|s| s.len() as u64).sum();
    let mut group = c.benchmark_group("build");
    group.throughput(Throughput::Elements(views));
    group.bench_function("standard-ppm", |b| {
        b.iter(|| train(StandardPpm::unbounded(), &sessions).node_count())
    });
    group.bench_function("lrs-ppm", |b| {
        b.iter(|| train(LrsPpm::new(), &sessions).node_count())
    });
    group.bench_function("pb-ppm", |b| {
        b.iter(|| train(PbPpm::new(pop.clone(), PbConfig::default()), &sessions).node_count())
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (sessions, pop) = training_data();
    let standard = train(StandardPpm::unbounded(), &sessions);
    let lrs = train(LrsPpm::new(), &sessions);
    let pb = train(PbPpm::new(pop, PbConfig::default()), &sessions);

    // Realistic contexts: the prefixes of the first 200 sessions.
    let contexts: Vec<Vec<UrlId>> = sessions
        .iter()
        .take(200)
        .flat_map(|s| {
            let urls = s.urls();
            (1..=urls.len().min(8))
                .map(move |k| urls[..k].to_vec())
                .collect::<Vec<_>>()
        })
        .collect();

    let mut group = c.benchmark_group("predict");
    group.throughput(Throughput::Elements(contexts.len() as u64));
    let mut run = |name: &str, model: &mut dyn Predictor| {
        group.bench_function(name, |b| {
            let mut out: Vec<Prediction> = Vec::new();
            b.iter(|| {
                let mut emitted = 0usize;
                for ctx in &contexts {
                    model.predict(ctx, &mut out);
                    emitted += out.len();
                }
                emitted
            })
        });
    };
    let mut standard = standard;
    let mut lrs = lrs;
    let mut pb = pb;
    run("standard-ppm", &mut standard);
    run("lrs-ppm", &mut lrs);
    run("pb-ppm", &mut pb);
    group.finish();
}

fn bench_prune(c: &mut Criterion) {
    let (sessions, pop) = training_data();
    let mut group = c.benchmark_group("space-optimization");
    for (name, cfg) in [
        ("relative-1pct", PruneConfig::default()),
        ("both-cuts", PruneConfig::aggressive()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, &cfg| {
            b.iter_batched(
                || {
                    // An unpruned PB tree, rebuilt per iteration.
                    let mut model = PbPpm::new(
                        pop.clone(),
                        PbConfig {
                            prune: PruneConfig::disabled(),
                            ..PbConfig::default()
                        },
                    );
                    for s in &sessions {
                        model.train_session(&s.urls());
                    }
                    model
                },
                |model| {
                    let mut tree = model.tree().clone();
                    pbppm_core::prune::prune(&mut tree, &cfg);
                    tree.node_count()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_build, bench_predict, bench_prune
}
criterion_main!(benches);
