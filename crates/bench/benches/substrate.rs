//! Substrate performance benchmarks: the LRU cache, the Zipf sampler, the
//! sessionizer, the CLF parser, and workload generation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pbppm_core::UrlId;
use pbppm_sim::LruCache;
use pbppm_trace::clf::{format_clf_line, parse_clf_line, ClfRecord};
use pbppm_trace::{sessionize, SessionizerConfig, WorkloadConfig, ZipfSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_lru(c: &mut Criterion) {
    let mut group = c.benchmark_group("lru-cache");
    let ops = 10_000u64;
    group.throughput(Throughput::Elements(ops));
    group.bench_function("mixed-ops", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut cache = LruCache::new(1 << 20);
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..ops {
                let url = UrlId(rng.gen_range(0..2000));
                if cache.demand(url) == pbppm_sim::Lookup::Miss {
                    cache.insert(url, rng.gen_range(500..20_000), false);
                } else {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf");
    let n = 100_000u64;
    group.throughput(Throughput::Elements(n));
    let sampler = ZipfSampler::new(10_000, 1.0);
    group.bench_function("sample-10k-ranks", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..n {
                acc += sampler.sample(&mut rng);
            }
            acc
        })
    });
    group.finish();
}

fn bench_sessionize(c: &mut Criterion) {
    let trace = WorkloadConfig::tiny(13).generate();
    let mut group = c.benchmark_group("sessionize");
    group.throughput(Throughput::Elements(trace.requests.len() as u64));
    group.bench_function("tiny-trace", |b| {
        let cfg = SessionizerConfig::default();
        b.iter(|| sessionize(&trace.requests, &cfg).len())
    });
    group.finish();
}

fn bench_clf(c: &mut Criterion) {
    // A batch of realistic lines, round-tripped.
    let lines: Vec<String> = (0..1000)
        .map(|i| {
            format_clf_line(&ClfRecord {
                host: format!("199.72.81.{}", i % 255),
                time: 804_571_201 + i,
                method: "GET".to_owned(),
                path: format!("/history/apollo/a{i}.html"),
                status: 200,
                size: 6245,
            })
        })
        .collect();
    let mut group = c.benchmark_group("clf");
    group.throughput(Throughput::Elements(lines.len() as u64));
    group.bench_function("parse-line", |b| {
        b.iter(|| {
            lines
                .iter()
                .map(|l| u64::from(parse_clf_line(l).unwrap().size))
                .sum::<u64>()
        })
    });
    group.finish();
}

fn bench_workload_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload-gen");
    group.sample_size(10);
    group.bench_function("tiny", |b| {
        b.iter(|| WorkloadConfig::tiny(17).generate().requests.len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_lru, bench_zipf, bench_sessionize, bench_clf, bench_workload_gen
}
criterion_main!(benches);
