//! Parallel, bounded-memory CLF ingestion.
//!
//! [`crate::clf::trace_from_clf`] buffers every record of the log as owned
//! `String`s before sorting — fine for test fixtures, hopeless for the
//! multi-GB NASA/UCB-scale logs the paper's workloads come from. This
//! module is the streaming replacement:
//!
//! 1. **Chunked read** — the log is read in newline-aligned chunks of
//!    [`IngestConfig::chunk_bytes`]; a partial tail line is carried into
//!    the next chunk, so no line is ever split.
//! 2. **Zero-copy parallel parse** — each chunk goes to a worker that
//!    parses lines with [`crate::clf::parse_clf_line_ref`] (string fields
//!    borrow the chunk buffer; no per-line allocation) and interns the
//!    surviving host/path strings into chunk-local tables, leaving a
//!    compact fixed-size record per accepted line.
//! 3. **Deterministic merge** — per-chunk records are stable-sorted by
//!    timestamp; a k-way heap merge keyed `(time, chunk index)` then
//!    replays them in exactly the order the sequential path's
//!    `(time, original line index)` sort produces (chunk index + in-chunk
//!    position *is* the original line order), interning each chunk-local
//!    id into the global tables on first appearance in merge order.
//!
//! The result is **byte-identical** to `trace_from_clf` — same `Trace`
//! contents, same interner orders, same [`ClfStats`] — at every chunk size
//! and thread count (property-tested in this module's test suite). Peak
//! raw-text memory is bounded by `chunks_in_flight × chunk_bytes` plus one
//! chunk being read; only the compact parsed records and the surviving
//! strings (which the sequential path must also keep) accumulate.
//!
//! One caveat: chunks are decoded with `String::from_utf8_lossy`. Chunk
//! boundaries sit on `\n` bytes, which are never part of a multi-byte
//! UTF-8 sequence, so for well-formed UTF-8 input (every real CLF log) the
//! decoding — and therefore the equivalence guarantee — is exact.

use crate::clf::{parse_clf_line_ref, ClfStats};
use crate::event::{ClientId, DocKind, Request, Trace};
use pbppm_core::{Interner, UrlId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, Read};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Tuning knobs for the chunked parallel ingestion pipeline.
///
/// The defaults are deliberately safe for any input; none of them can
/// change the produced [`Trace`] — only wall time and peak memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Target raw-text chunk size in bytes (minimum 4 KiB enforced; a
    /// single line longer than this grows its chunk as needed).
    pub chunk_bytes: usize,
    /// Parse worker count; `0` = auto (`PBPPM_THREADS` or the machine's
    /// available parallelism).
    pub threads: usize,
    /// How many raw chunks may sit parsed-pending at once (the bounded
    /// channel depth between the reader and the workers); `0` = twice the
    /// worker count. Together with `chunk_bytes` this caps peak raw-text
    /// memory at roughly `(chunks_in_flight + 1) × chunk_bytes`.
    pub chunks_in_flight: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            chunk_bytes: 4 << 20,
            threads: 0,
            chunks_in_flight: 0,
        }
    }
}

/// One accepted record after chunk-local parsing: fixed-size, no strings —
/// host/path are ids into the owning chunk's local interners.
#[derive(Debug, Clone, Copy)]
struct CompactRecord {
    time: i64,
    host: u32,
    path: u32,
    status: u16,
    size: u32,
    kind: DocKind,
}

/// A fully parsed chunk: compact records (stable-sorted by time) plus the
/// chunk-local string tables and drop tallies.
struct ParsedChunk {
    idx: usize,
    records: Vec<CompactRecord>,
    paths: Interner,
    hosts: Interner,
    malformed: usize,
    filtered: usize,
}

/// Parses one raw chunk. Pure function of the chunk bytes, so it can run
/// on any worker in any order.
fn parse_chunk(idx: usize, bytes: &[u8]) -> ParsedChunk {
    let text = String::from_utf8_lossy(bytes);
    let mut chunk = ParsedChunk {
        idx,
        records: Vec::new(),
        paths: Interner::new(),
        hosts: Interner::new(),
        malformed: 0,
        filtered: 0,
    };
    for line in text.split('\n') {
        if line.trim().is_empty() {
            continue;
        }
        match parse_clf_line_ref(line) {
            Err(_) => chunk.malformed += 1,
            Ok(r) => {
                let ok_status = (200..300).contains(&r.status) || r.status == 304;
                if r.method != "GET" || !ok_status {
                    chunk.filtered += 1;
                } else {
                    chunk.records.push(CompactRecord {
                        time: r.time,
                        host: chunk.hosts.intern(r.host).0,
                        path: chunk.paths.intern(r.path).0,
                        status: r.status,
                        size: r.size,
                        kind: DocKind::from_url(r.path),
                    });
                }
            }
        }
    }
    // Stable sort: records with equal timestamps keep their in-chunk input
    // order, which the merge's `(time, chunk idx)` key extends to the
    // global input order — the sequential path's exact tie-break.
    chunk.records.sort_by_key(|r| r.time);
    chunk
}

/// Reads newline-aligned chunks of roughly `chunk_bytes` from a reader,
/// carrying the partial tail line into the next chunk.
struct ChunkReader<R: Read> {
    inner: R,
    chunk_bytes: usize,
    carry: Vec<u8>,
    done: bool,
}

impl<R: Read> ChunkReader<R> {
    fn new(inner: R, chunk_bytes: usize) -> Self {
        Self {
            inner,
            chunk_bytes: chunk_bytes.max(4096),
            carry: Vec::new(),
            done: false,
        }
    }

    /// The next newline-aligned chunk, or `None` at end of input. Every
    /// returned chunk either ends with `\n` or is the final bytes of the
    /// stream; a single line longer than `chunk_bytes` simply grows its
    /// chunk until its newline arrives.
    fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
        if self.done {
            if self.carry.is_empty() {
                return Ok(None);
            }
            return Ok(Some(std::mem::take(&mut self.carry)));
        }
        let mut chunk = std::mem::take(&mut self.carry);
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            while !self.done && chunk.len() < self.chunk_bytes {
                let n = self.inner.read(&mut buf)?;
                if n == 0 {
                    self.done = true;
                } else {
                    chunk.extend_from_slice(&buf[..n]);
                }
            }
            if self.done {
                return Ok(if chunk.is_empty() { None } else { Some(chunk) });
            }
            if let Some(p) = chunk.iter().rposition(|&b| b == b'\n') {
                self.carry = chunk.split_off(p + 1);
                return Ok(Some(chunk));
            }
            // No newline yet: an over-long line. Keep growing this chunk.
            let grow_to = chunk.len() + self.chunk_bytes;
            while !self.done && chunk.len() < grow_to {
                let n = self.inner.read(&mut buf)?;
                if n == 0 {
                    self.done = true;
                } else {
                    chunk.extend_from_slice(&buf[..n]);
                }
            }
        }
    }
}

/// Streams CLF lines from `reader` into a [`Trace`], byte-identical to
/// [`crate::clf::trace_from_clf`] over the same lines (same requests, same
/// interner orders, same stats) at every chunk size and thread count.
///
/// Filtering matches the sequential path: successful (`2xx`/`304`) `GET`s
/// only, times rebased so the first accepted request is at second 0.
pub fn trace_from_clf_reader<R: Read>(
    name: &str,
    reader: R,
    cfg: &IngestConfig,
) -> io::Result<(Trace, ClfStats)> {
    let _span = pbppm_obs::span!("trace.ingest", name = name);
    let threads = pbppm_core::resolve_threads(cfg.threads);
    let in_flight = if cfg.chunks_in_flight == 0 {
        threads.saturating_mul(2).max(2)
    } else {
        cfg.chunks_in_flight
    };
    let mut reader = ChunkReader::new(reader, cfg.chunk_bytes);
    let mut raw_bytes: u64 = 0;

    let mut chunks: Vec<ParsedChunk> = Vec::new();
    if threads <= 1 {
        // Same chunked code path, run inline: the equivalence tests cover
        // single- and multi-threaded ingestion through identical logic.
        let mut idx = 0;
        while let Some(chunk) = reader.next_chunk()? {
            raw_bytes += chunk.len() as u64;
            chunks.push(parse_chunk(idx, &chunk));
            idx += 1;
        }
    } else {
        let (chunk_tx, chunk_rx) = mpsc::sync_channel::<(usize, Vec<u8>)>(in_flight);
        let chunk_rx = Arc::new(Mutex::new(chunk_rx));
        let (parsed_tx, parsed_rx) = mpsc::channel::<ParsedChunk>();
        let mut io_err: Option<io::Error> = None;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let chunk_rx = Arc::clone(&chunk_rx);
                let parsed_tx = parsed_tx.clone();
                scope.spawn(move || loop {
                    // Take the lock only to receive; parse with it released
                    // so workers drain the queue concurrently.
                    let msg = match chunk_rx.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break, // a sibling worker panicked
                    };
                    match msg {
                        Ok((idx, bytes)) => {
                            if parsed_tx.send(parse_chunk(idx, &bytes)).is_err() {
                                break;
                            }
                        }
                        Err(_) => break, // reader finished and closed the channel
                    }
                });
            }
            drop(parsed_tx);
            // The scope's own thread is the reader: the bounded channel
            // blocks it whenever `in_flight` chunks are already pending,
            // which is what caps peak raw-text memory.
            let mut idx = 0;
            loop {
                match reader.next_chunk() {
                    Ok(Some(chunk)) => {
                        raw_bytes += chunk.len() as u64;
                        if chunk_tx.send((idx, chunk)).is_err() {
                            break; // all workers died; scope will propagate
                        }
                        idx += 1;
                    }
                    Ok(None) => break,
                    Err(e) => {
                        io_err = Some(e);
                        break;
                    }
                }
            }
            drop(chunk_tx);
        });
        if let Some(e) = io_err {
            return Err(e);
        }
        chunks = parsed_rx.into_iter().collect();
        chunks.sort_by_key(|c| c.idx);
    }

    let mut stats = ClfStats::default();
    let mut total_accepted = 0usize;
    for c in &chunks {
        stats.malformed += c.malformed;
        stats.filtered += c.filtered;
        total_accepted += c.records.len();
    }

    // Deterministic k-way merge. Each chunk's records are sorted by time
    // with in-chunk input order on ties; the heap key `(time, chunk idx)`
    // therefore yields the global `(time, original line index)` order the
    // sequential sort pins. Chunk-local interner ids are remapped into the
    // global tables on first appearance *in merge order*, which reproduces
    // the sequential path's interning order exactly.
    let mut trace = Trace::new(name);
    trace.requests.reserve_exact(total_accepted);
    trace.urls = Interner::with_capacity(total_accepted);
    trace.clients = Interner::with_capacity(total_accepted);
    let mut url_remap: Vec<Vec<Option<UrlId>>> =
        chunks.iter().map(|c| vec![None; c.paths.len()]).collect();
    let mut client_remap: Vec<Vec<Option<ClientId>>> =
        chunks.iter().map(|c| vec![None; c.hosts.len()]).collect();
    let mut heads: Vec<usize> = vec![0; chunks.len()];
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> = chunks
        .iter()
        .enumerate()
        .filter(|(_, c)| !c.records.is_empty())
        .map(|(ci, c)| Reverse((c.records[0].time, ci)))
        .collect();
    let mut epoch: Option<i64> = None;
    while let Some(Reverse((time, ci))) = heap.pop() {
        let pos = heads[ci];
        heads[ci] += 1;
        if let Some(next) = chunks[ci].records.get(pos + 1) {
            heap.push(Reverse((next.time, ci)));
        }
        let r = chunks[ci].records[pos];
        let epoch = *epoch.get_or_insert(time);
        let url = match url_remap[ci][r.path as usize] {
            Some(u) => u,
            None => {
                let s = chunks[ci].paths.resolve(UrlId(r.path)).unwrap_or("");
                let u = trace.urls.intern(s);
                url_remap[ci][r.path as usize] = Some(u);
                u
            }
        };
        let client = match client_remap[ci][r.host as usize] {
            Some(c) => c,
            None => {
                let s = chunks[ci].hosts.resolve(UrlId(r.host)).unwrap_or("");
                let c = ClientId(trace.clients.intern(s).0);
                client_remap[ci][r.host as usize] = Some(c);
                c
            }
        };
        trace.requests.push(Request {
            time: u64::try_from((r.time - epoch).max(0)).unwrap_or(0),
            client,
            url,
            size: r.size,
            status: r.status,
            kind: r.kind,
        });
        stats.accepted += 1;
    }

    if pbppm_obs::ENABLED {
        let reg = pbppm_obs::global();
        reg.counter("trace.parse.accepted", "")
            .add(stats.accepted as u64);
        reg.counter("trace.parse.filtered", "")
            .add(stats.filtered as u64);
        reg.counter("trace.parse.malformed", "")
            .add(stats.malformed as u64);
        reg.counter("ingest.chunks", "").add(chunks.len() as u64);
        reg.counter("ingest.bytes", "").add(raw_bytes);
        reg.gauge("ingest.threads", "").set(threads as u64);
    }
    pbppm_obs::obs_debug!(
        "ingested log {name:?}: {} accepted, {} filtered, {} malformed \
         ({} chunks, {raw_bytes} bytes, {threads} threads)",
        stats.accepted,
        stats.filtered,
        stats.malformed,
        chunks.len(),
    );
    Ok((trace, stats))
}

/// Opens `path` and streams it through [`trace_from_clf_reader`].
pub fn trace_from_clf_path(
    name: &str,
    path: &std::path::Path,
    cfg: &IngestConfig,
) -> io::Result<(Trace, ClfStats)> {
    let file = std::fs::File::open(path)?;
    trace_from_clf_reader(name, file, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clf::trace_from_clf;
    use proptest::prelude::*;

    fn cfg(chunk_bytes: usize, threads: usize) -> IngestConfig {
        IngestConfig {
            chunk_bytes,
            threads,
            chunks_in_flight: 2,
        }
    }

    /// Both paths over the same text; panics on any divergence.
    fn assert_equivalent(text: &str, chunk_bytes: usize, threads: usize) {
        let (seq_trace, seq_stats) = trace_from_clf("t", text.lines());
        let (par_trace, par_stats) =
            trace_from_clf_reader("t", text.as_bytes(), &cfg(chunk_bytes, threads)).unwrap();
        assert_eq!(
            seq_stats, par_stats,
            "chunk={chunk_bytes} threads={threads}"
        );
        assert_eq!(
            seq_trace.requests, par_trace.requests,
            "chunk={chunk_bytes} threads={threads}"
        );
        // Interner *order* must match, not just content.
        let urls = |t: &Trace| -> Vec<String> {
            (0..t.urls.len())
                .map(|i| {
                    t.urls
                        .resolve(UrlId(u32::try_from(i).unwrap()))
                        .unwrap()
                        .to_owned()
                })
                .collect()
        };
        let clients = |t: &Trace| -> Vec<String> {
            (0..t.clients.len())
                .map(|i| {
                    t.clients
                        .resolve(UrlId(u32::try_from(i).unwrap()))
                        .unwrap()
                        .to_owned()
                })
                .collect()
        };
        assert_eq!(urls(&seq_trace), urls(&par_trace));
        assert_eq!(clients(&seq_trace), clients(&par_trace));
    }

    fn clf_line(host: u32, t: i64, method: &str, path: u32, status: u16, size: &str) -> String {
        let base = crate::clf::format_clf_line(&crate::clf::ClfRecord {
            host: format!("h{host}"),
            time: t,
            method: method.to_owned(),
            path: format!("/p{path}.html"),
            status,
            size: 0,
        });
        // Swap the numeric size for a string form, so callers can inject a
        // malformed size ("12a4") as well as a valid one.
        format!("{} {size}", base.rsplit_once(' ').unwrap().0)
    }

    #[test]
    fn matches_sequential_on_a_small_log() {
        let mut text = String::new();
        for i in 0..50i64 {
            text.push_str(&clf_line(
                u32::try_from(i % 7).unwrap(),
                800_000_000 + (i % 13),
                if i % 9 == 0 { "POST" } else { "GET" },
                u32::try_from(i % 11).unwrap(),
                if i % 5 == 0 { 404 } else { 200 },
                "100",
            ));
            text.push('\n');
        }
        text.push_str("garbage line\n\n");
        for chunk in [64, 4096, 1 << 20] {
            for threads in [1, 2, 8] {
                assert_equivalent(&text, chunk, threads);
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_equivalent("", 4096, 4);
        assert_equivalent("\n\n\n", 4096, 4);
        assert_equivalent("not a log line", 4096, 4);
        let one = clf_line(1, 804_571_201, "GET", 1, 200, "5");
        assert_equivalent(&one, 4096, 4); // no trailing newline
        assert_equivalent(&format!("{one}\n"), 4096, 4);
    }

    #[test]
    fn lines_longer_than_a_chunk_survive() {
        // chunk_bytes floors at 4096; build lines longer than that.
        let long_path = "x".repeat(9000);
        let mut text = String::new();
        for i in 0..5 {
            text.push_str(&format!(
                "h{i} - - [01/Jul/1995:00:00:0{i} -0400] \"GET /{long_path}{i} HTTP/1.0\" 200 10\n"
            ));
        }
        for threads in [1, 3] {
            assert_equivalent(&text, 4096, threads);
        }
    }

    #[test]
    fn crlf_line_endings_match_sequential() {
        let text = format!(
            "{}\r\n{}\r\n",
            clf_line(1, 804_571_210, "GET", 1, 200, "5"),
            clf_line(2, 804_571_205, "GET", 2, 200, "7"),
        );
        assert_equivalent(&text, 4096, 2);
    }

    #[test]
    fn path_variant_reads_from_disk() {
        let dir = std::env::temp_dir().join(format!("pbppm-ingest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.log");
        let text = format!(
            "{}\n{}\n",
            clf_line(1, 804_571_201, "GET", 1, 200, "5"),
            clf_line(1, 804_571_202, "GET", 2, 200, "9"),
        );
        std::fs::write(&path, &text).unwrap();
        let (trace, stats) = trace_from_clf_path("disk", &path, &IngestConfig::default()).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(stats.accepted, 2);
        assert_eq!(trace.requests.len(), 2);
        assert_eq!(trace.requests[1].time, 1);
    }

    /// One arbitrary log line: valid, malformed, filtered, or blank.
    fn arb_line() -> impl Strategy<Value = String> {
        prop_oneof![
            // Valid GET lines with clustered timestamps (ties exercise the
            // input-order tie-break) and a small URL/host universe
            // (collisions exercise interner remapping).
            (
                0u32..6,
                0i64..20,
                0u32..8,
                prop_oneof![Just(200u16), Just(304u16)]
            )
                .prop_map(|(h, t, p, s)| clf_line(
                    h,
                    804_571_200 + t,
                    "GET",
                    p,
                    s,
                    "10"
                )),
            // Filtered: wrong method or error status.
            (0u32..4, 0i64..20, 0u32..4).prop_map(|(h, t, p)| clf_line(
                h,
                804_571_200 + t,
                "POST",
                p,
                200,
                "10"
            )),
            (0u32..4, 0i64..20, 0u32..4).prop_map(|(h, t, p)| clf_line(
                h,
                804_571_200 + t,
                "GET",
                p,
                500,
                "10"
            )),
            // Malformed: garbage, bad size, bad timestamp.
            Just("complete garbage".to_owned()),
            (0u32..4, 0i64..20, 0u32..4).prop_map(|(h, t, p)| clf_line(
                h,
                804_571_200 + t,
                "GET",
                p,
                200,
                "12a4"
            )),
            Just(r#"h - - [99/Foo/1995:00:00:01 -0400] "GET /x HTTP/1.0" 200 1"#.to_owned()),
            // Blank-ish lines.
            Just(String::new()),
            Just("   ".to_owned()),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The ISSUE's pinned equivalence grid: arbitrary (valid ∪ malformed
        /// ∪ filtered) lines through both paths at chunk sizes {1, 7, 4096}
        /// (the floor clamps 1 and 7 to 4 KiB — still multiple chunks once
        /// the log outgrows it, and the clamp itself is part of the
        /// contract) × threads {1, 2, 8}: identical Trace, interner order,
        /// and stats.
        #[test]
        fn chunked_ingest_is_bit_identical_to_sequential(
            lines in proptest::collection::vec(arb_line(), 0..120),
            trailing_newline in (0u8..2).prop_map(|b| b == 1),
        ) {
            let mut text = lines.join("\n");
            if trailing_newline {
                text.push('\n');
            }
            for chunk_bytes in [1usize, 7, 4096] {
                for threads in [1usize, 2, 8] {
                    assert_equivalent(&text, chunk_bytes, threads);
                }
            }
        }
    }
}
