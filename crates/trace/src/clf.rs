//! Common Log Format (CLF) parsing and formatting.
//!
//! The paper's traces — NASA Kennedy Space Center (July 1995) and UCB-CS
//! (July 2000) — are published in NCSA Common Log Format:
//!
//! ```text
//! host ident user [01/Jul/1995:00:00:01 -0400] "GET /history/ HTTP/1.0" 200 6245
//! ```
//!
//! This module parses that format (tolerating the quirks those two logs
//! actually contain: missing protocol field, `-` sizes, stray whitespace)
//! and can format records back, which the tests use for round-tripping and
//! the examples use to materialize synthetic traces as real log files.

use crate::event::{ClientId, DocKind, Request, Trace};
use std::fmt;

/// One parsed CLF line, before interning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClfRecord {
    /// Remote host (IP or name).
    pub host: String,
    /// Seconds since the Unix epoch, UTC.
    pub time: i64,
    /// HTTP method (`GET`, `HEAD`, …).
    pub method: String,
    /// Request path.
    pub path: String,
    /// HTTP status code.
    pub status: u16,
    /// Response bytes (0 when logged as `-`).
    pub size: u32,
}

/// One parsed CLF line *borrowing* its string fields from the input line.
///
/// This is the zero-copy form the chunked ingestion path
/// ([`crate::ingest`]) parses on worker threads: no per-line `String`
/// allocations — host/method/path are sub-slices of the chunk buffer, and
/// only the strings that survive filtering get copied (once, into an
/// interner). [`parse_clf_line`] is a thin owning wrapper over
/// [`parse_clf_line_ref`], so both forms share one grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClfRecordRef<'a> {
    /// Remote host (IP or name).
    pub host: &'a str,
    /// Seconds since the Unix epoch, UTC.
    pub time: i64,
    /// HTTP method (`GET`, `HEAD`, …).
    pub method: &'a str,
    /// Request path.
    pub path: &'a str,
    /// HTTP status code.
    pub status: u16,
    /// Response bytes (0 when logged as `-`).
    pub size: u32,
}

impl ClfRecordRef<'_> {
    /// Copies the borrowed fields into an owned [`ClfRecord`].
    pub fn to_record(&self) -> ClfRecord {
        ClfRecord {
            host: self.host.to_owned(),
            time: self.time,
            method: self.method.to_owned(),
            path: self.path.to_owned(),
            status: self.status,
            size: self.size,
        }
    }
}

impl From<ClfRecordRef<'_>> for ClfRecord {
    fn from(r: ClfRecordRef<'_>) -> Self {
        r.to_record()
    }
}

/// Why a CLF line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClfParseError {
    /// The line does not have the `host … [time] "request" status size` shape.
    Malformed(&'static str),
    /// The timestamp field is not a valid CLF date.
    BadTimestamp,
    /// The status field is not a number.
    BadStatus,
}

impl fmt::Display for ClfParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClfParseError::Malformed(what) => write!(f, "malformed CLF line: {what}"),
            ClfParseError::BadTimestamp => write!(f, "bad CLF timestamp"),
            ClfParseError::BadStatus => write!(f, "bad status code"),
        }
    }
}

impl std::error::Error for ClfParseError {}

const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Days from 1970-01-01 to `y-m-d` (proleptic Gregorian). Howard Hinnant's
/// `days_from_civil` algorithm.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (i64::from(m) + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`]: civil date for a day count from the epoch.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // ranges proven in comments
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parses `01/Jul/1995:00:00:01 -0400` into Unix seconds (UTC).
fn parse_clf_time(s: &str) -> Option<i64> {
    // dd/Mon/yyyy:HH:MM:SS ±HHMM
    let (date, tz) = s.split_once(' ')?;
    let mut parts = date.split(&['/', ':'][..]);
    let d: u32 = parts.next()?.parse().ok()?;
    let mon_name = parts.next()?;
    #[allow(clippy::cast_possible_truncation)] // 12 month names
    let m = MONTHS
        .iter()
        .position(|&mn| mn.eq_ignore_ascii_case(mon_name))? as u32
        + 1;
    let y: i64 = parts.next()?.parse().ok()?;
    let hh: i64 = parts.next()?.parse().ok()?;
    let mm: i64 = parts.next()?.parse().ok()?;
    let ss: i64 = parts.next()?.parse().ok()?;
    if !(1..=31).contains(&d)
        || !(0..24).contains(&hh)
        || !(0..60).contains(&mm)
        || !(0..61).contains(&ss)
    {
        return None;
    }
    let local = days_from_civil(y, m, d) * 86_400 + hh * 3600 + mm * 60 + ss;
    // Timezone: ±HHMM east of UTC; subtract to get UTC.
    let tz = tz.trim();
    let (sign, digits) = match tz.split_at_checked(1)? {
        ("+", rest) => (1i64, rest),
        ("-", rest) => (-1i64, rest),
        _ => return None,
    };
    if digits.len() != 4 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let tz_h: i64 = digits[..2].parse().ok()?;
    let tz_m: i64 = digits[2..].parse().ok()?;
    Some(local - sign * (tz_h * 3600 + tz_m * 60))
}

/// Formats Unix seconds (UTC) as a CLF timestamp with a `+0000` zone.
fn format_clf_time(t: i64) -> String {
    let days = t.div_euclid(86_400);
    let secs = t.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    format!(
        "{:02}/{}/{:04}:{:02}:{:02}:{:02} +0000",
        d,
        MONTHS[(m - 1) as usize],
        y,
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60
    )
}

/// Parses one CLF line into an owned record.
pub fn parse_clf_line(line: &str) -> Result<ClfRecord, ClfParseError> {
    parse_clf_line_ref(line).map(|r| r.to_record())
}

/// Parses one CLF line without allocating: string fields borrow from `line`.
pub fn parse_clf_line_ref(line: &str) -> Result<ClfRecordRef<'_>, ClfParseError> {
    let line = line.trim();
    // host [ident user are ignored]
    let (host, rest) = line
        .split_once(' ')
        .ok_or(ClfParseError::Malformed("no host field"))?;
    // timestamp between [ ]
    let lb = rest.find('[').ok_or(ClfParseError::Malformed("no ["))?;
    let rb = rest[lb..]
        .find(']')
        .map(|i| i + lb)
        .ok_or(ClfParseError::Malformed("no ]"))?;
    let time = parse_clf_time(&rest[lb + 1..rb]).ok_or(ClfParseError::BadTimestamp)?;
    let rest = &rest[rb + 1..];
    // request between quotes
    let q1 = rest.find('"').ok_or(ClfParseError::Malformed("no quote"))?;
    let q2 = rest[q1 + 1..]
        .rfind('"')
        .map(|i| i + q1 + 1)
        .ok_or(ClfParseError::Malformed("unterminated quote"))?;
    if q2 <= q1 {
        return Err(ClfParseError::Malformed("empty request"));
    }
    let request = &rest[q1 + 1..q2];
    let mut req_parts = request.split_ascii_whitespace();
    let method = req_parts
        .next()
        .ok_or(ClfParseError::Malformed("no method"))?;
    // Old logs sometimes have just "GET /path" with no protocol; and some
    // have a bare path. Treat a missing path as malformed.
    let path = req_parts
        .next()
        .ok_or(ClfParseError::Malformed("no path"))?;
    // status and size after the closing quote
    let mut tail = rest[q2 + 1..].split_ascii_whitespace();
    let status: u16 = tail
        .next()
        .ok_or(ClfParseError::Malformed("no status"))?
        .parse()
        .map_err(|_| ClfParseError::BadStatus)?;
    // `-` (and a missing field, which the NASA log contains) mean "no
    // body"; anything else must be a number — garbage bytes must not
    // silently enter traffic accounting as zero.
    let size = match tail.next() {
        None | Some("-") => 0,
        Some(s) => s
            .parse()
            .map_err(|_| ClfParseError::Malformed("bad size"))?,
    };
    Ok(ClfRecordRef {
        host,
        time,
        method,
        path,
        status,
        size,
    })
}

/// Formats a record as a CLF line (UTC timestamp).
pub fn format_clf_line(r: &ClfRecord) -> String {
    format!(
        "{} - - [{}] \"{} {} HTTP/1.0\" {} {}",
        r.host,
        format_clf_time(r.time),
        r.method,
        r.path,
        r.status,
        r.size
    )
}

/// Outcome of building a [`Trace`] from CLF lines.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClfStats {
    /// Lines successfully turned into requests.
    pub accepted: usize,
    /// Lines dropped as malformed.
    pub malformed: usize,
    /// Lines dropped by the method/status filter.
    pub filtered: usize,
}

/// Builds a [`Trace`] from an iterator of CLF lines.
///
/// Mirrors the paper's preprocessing: only successful (`2xx`/`304`) `GET`
/// requests are kept; everything else — errors, POSTs, malformed lines — is
/// dropped and tallied. Times are shifted so the first accepted request is
/// at second 0.
pub fn trace_from_clf<I, S>(name: &str, lines: I) -> (Trace, ClfStats)
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut trace = Trace::new(name);
    let mut stats = ClfStats::default();
    // (original line index, record): the index is the sort tie-break, which
    // pins the ordering contract the parallel merge in [`crate::ingest`]
    // must reproduce — equal timestamps stay in input order.
    let mut records: Vec<(usize, ClfRecord)> = Vec::new();
    for (line_idx, line) in lines.into_iter().enumerate() {
        let line = line.as_ref();
        if line.trim().is_empty() {
            continue;
        }
        match parse_clf_line(line) {
            Err(_) => stats.malformed += 1,
            Ok(r) => {
                let ok_status = (200..300).contains(&r.status) || r.status == 304;
                if r.method != "GET" || !ok_status {
                    stats.filtered += 1;
                } else {
                    records.push((line_idx, r));
                }
            }
        }
    }
    records.sort_by_key(|&(idx, ref r)| (r.time, idx));
    let epoch = records.first().map_or(0, |(_, r)| r.time);
    // Pre-size from the accepted-record count: requests exactly, the
    // interners by an upper bound (every path/host distinct).
    trace.requests.reserve_exact(records.len());
    trace.urls = pbppm_core::Interner::with_capacity(records.len());
    trace.clients = pbppm_core::Interner::with_capacity(records.len());
    for (_, r) in &records {
        let url = trace.urls.intern(&r.path);
        let client = ClientId(trace.clients.intern(&r.host).0);
        trace.requests.push(Request {
            time: u64::try_from((r.time - epoch).max(0)).unwrap_or(0),
            client,
            url,
            size: r.size,
            status: r.status,
            kind: DocKind::from_url(&r.path),
        });
        stats.accepted += 1;
    }
    (trace, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NASA_LINE: &str =
        r#"199.72.81.55 - - [01/Jul/1995:00:00:01 -0400] "GET /history/apollo/ HTTP/1.0" 200 6245"#;

    #[test]
    fn parses_a_real_nasa_line() {
        let r = parse_clf_line(NASA_LINE).unwrap();
        assert_eq!(r.host, "199.72.81.55");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/history/apollo/");
        assert_eq!(r.status, 200);
        assert_eq!(r.size, 6245);
        // 1995-07-01 00:00:01 -0400 = 1995-07-01 04:00:01 UTC = 804571201
        assert_eq!(r.time, 804_571_201);
    }

    #[test]
    fn parses_missing_protocol_and_dash_size() {
        let r =
            parse_clf_line(r#"host - - [01/Jan/1970:00:00:00 +0000] "GET /x.html" 304 -"#).unwrap();
        assert_eq!(r.time, 0);
        assert_eq!(r.size, 0);
        assert_eq!(r.status, 304);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_clf_line("").is_err());
        assert!(parse_clf_line("just one field").is_err());
        assert!(parse_clf_line(r#"h - - [bad time] "GET / HTTP/1.0" 200 1"#).is_err());
        assert!(
            parse_clf_line(r#"h - - [01/Jul/1995:00:00:01 -0400] "GET / HTTP/1.0" xx 1"#).is_err()
        );
        assert!(parse_clf_line(r#"h - - [01/Jul/1995:00:00:01 -0400] no quotes 200 1"#).is_err());
    }

    #[test]
    fn rejects_non_numeric_size() {
        // Garbage in the size field must not silently become 0 bytes.
        let bad = r#"h - - [01/Jul/1995:00:00:01 -0400] "GET /x.html HTTP/1.0" 200 12a4"#;
        assert_eq!(
            parse_clf_line(bad),
            Err(ClfParseError::Malformed("bad size"))
        );
        // `-` and a missing field still mean "no body".
        let dash = r#"h - - [01/Jul/1995:00:00:01 -0400] "GET /x.html HTTP/1.0" 304 -"#;
        assert_eq!(parse_clf_line(dash).unwrap().size, 0);
        let missing = r#"h - - [01/Jul/1995:00:00:01 -0400] "GET /x.html HTTP/1.0" 304"#;
        assert_eq!(parse_clf_line(missing).unwrap().size, 0);
    }

    #[test]
    fn borrowed_parse_matches_owned_parse() {
        let r = parse_clf_line_ref(NASA_LINE).unwrap();
        // Fields are sub-slices of the input line, not copies.
        let line_range = NASA_LINE.as_ptr() as usize..NASA_LINE.as_ptr() as usize + NASA_LINE.len();
        for field in [r.host, r.method, r.path] {
            assert!(line_range.contains(&(field.as_ptr() as usize)), "{field}");
        }
        assert_eq!(r.to_record(), parse_clf_line(NASA_LINE).unwrap());
    }

    #[test]
    fn rejects_invalid_time_fields() {
        for bad in [
            "32/Jul/1995:00:00:01 -0400",
            "01/Foo/1995:00:00:01 -0400",
            "01/Jul/1995:24:00:01 -0400",
            "01/Jul/1995:00:61:01 -0400",
            "01/Jul/1995:00:00:01 -040", // short tz
            "01/Jul/1995:00:00:01",      // no tz
        ] {
            assert!(parse_clf_time(bad).is_none(), "{bad}");
        }
    }

    #[test]
    fn civil_date_roundtrip() {
        for &z in &[-1_000_000i64, -1, 0, 1, 9_315, 10_000, 2_932_896] {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
        // Known anchors.
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1995, 7, 1), 9_312);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
    }

    #[test]
    fn format_parse_roundtrip() {
        let r = ClfRecord {
            host: "10.0.0.1".to_owned(),
            time: 804_571_201,
            method: "GET".to_owned(),
            path: "/a/b.html".to_owned(),
            status: 200,
            size: 1234,
        };
        let line = format_clf_line(&r);
        let r2 = parse_clf_line(&line).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn trace_from_clf_filters_and_rebases_time() {
        let lines = [
            NASA_LINE.to_owned(),
            r#"h2 - - [01/Jul/1995:00:00:11 -0400] "GET /img/x.gif HTTP/1.0" 200 500"#.to_owned(),
            r#"h2 - - [01/Jul/1995:00:00:12 -0400] "POST /cgi HTTP/1.0" 200 1"#.to_owned(),
            r#"h2 - - [01/Jul/1995:00:00:13 -0400] "GET /missing.html HTTP/1.0" 404 0"#.to_owned(),
            "garbage line".to_owned(),
        ];
        let (t, stats) = trace_from_clf("test", &lines);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.filtered, 2);
        assert_eq!(stats.malformed, 1);
        assert_eq!(t.requests.len(), 2);
        assert_eq!(t.requests[0].time, 0);
        assert_eq!(t.requests[1].time, 10);
        assert_eq!(t.requests[1].kind, DocKind::Image);
        assert_eq!(t.urls.len(), 2);
        assert_eq!(t.clients.len(), 2);
    }

    #[test]
    fn trace_from_clf_sorts_out_of_order_lines() {
        let lines = [
            r#"h - - [01/Jan/1970:00:00:30 +0000] "GET /b.html HTTP/1.0" 200 1"#,
            r#"h - - [01/Jan/1970:00:00:10 +0000] "GET /a.html HTTP/1.0" 200 1"#,
        ];
        let (t, _) = trace_from_clf("test", lines);
        assert_eq!(t.requests[0].time, 0);
        assert_eq!(t.urls.resolve(t.requests[0].url), Some("/a.html"));
        assert_eq!(t.requests[1].time, 20);
    }
}
