//! Sessionization — the paper's §2.2 preprocessing.
//!
//! * The requests of each client are cut into **access sessions**: "if a
//!   client has been idle for more than 30 minutes, we assume that the next
//!   request from the client starts a new access session".
//! * **Embedded images are folded**: "if an HTML file of the same client is
//!   followed by image files in 10 seconds, we consider the image file as an
//!   embedded file in the HTML file. For these embedded files, we record
//!   them with the HTML files." A folded image contributes its bytes to the
//!   page view of its host HTML document instead of appearing as its own
//!   step in the session.

use crate::event::{ClientId, DocKind, Request, Trace};
use pbppm_core::{FxHashMap, UrlId};
use serde::{Deserialize, Serialize};

/// One page view within a session: the URL plus the bytes it cost the
/// server (document plus folded embedded images).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageView {
    /// Request time (seconds since trace epoch).
    pub time: u64,
    /// The document's URL.
    pub url: UrlId,
    /// Bytes transferred for the document and its folded embedded images.
    pub bytes: u64,
}

/// One access session: consecutive page views of a single client with no
/// idle gap larger than the configured threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// The client the session belongs to.
    pub client: ClientId,
    /// The page views, in time order; never empty.
    pub views: Vec<PageView>,
}

impl Session {
    /// Time of the first view.
    pub fn start(&self) -> u64 {
        self.views.first().map_or(0, |v| v.time)
    }

    /// The URL sequence of the session (what the models train on).
    pub fn urls(&self) -> Vec<UrlId> {
        self.views.iter().map(|v| v.url).collect()
    }

    /// Number of page views ("clicks").
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Always false: sessions are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

/// Sessionizer parameters (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionizerConfig {
    /// Idle gap that starts a new session (paper: 30 minutes).
    pub idle_gap_secs: u64,
    /// Window after an HTML request within which an image request from the
    /// same client is considered embedded (paper: 10 seconds).
    pub embed_window_secs: u64,
    /// Whether embedded-image folding is performed at all.
    pub fold_embedded: bool,
}

impl Default for SessionizerConfig {
    fn default() -> Self {
        Self {
            idle_gap_secs: 30 * 60,
            embed_window_secs: 10,
            fold_embedded: true,
        }
    }
}

/// Splits a trace (or any slice of its requests) into access sessions.
///
/// Sessions are returned ordered by `(client, start time)`; requests need
/// only be time-ordered per client, which a time-sorted trace guarantees.
pub fn sessionize(requests: &[Request], cfg: &SessionizerConfig) -> Vec<Session> {
    let _span = pbppm_obs::span!("trace.sessionize", requests = requests.len());
    // Group per client, preserving time order.
    let mut per_client: FxHashMap<ClientId, Vec<&Request>> = FxHashMap::default();
    for r in requests {
        per_client.entry(r.client).or_default().push(r);
    }
    let mut clients: Vec<ClientId> = per_client.keys().copied().collect();
    clients.sort();

    let mut sessions = Vec::new();
    for client in clients {
        let reqs = &per_client[&client];
        let mut current: Vec<PageView> = Vec::new();
        let mut last_time: Option<u64> = None;
        // Time of the most recent HTML request, for the embed window.
        let mut last_html_time: Option<u64> = None;

        for r in reqs {
            if let Some(lt) = last_time {
                debug_assert!(r.time >= lt, "requests must be time-ordered per client");
                if r.time - lt > cfg.idle_gap_secs {
                    if !current.is_empty() {
                        sessions.push(Session {
                            client,
                            views: std::mem::take(&mut current),
                        });
                    }
                    last_html_time = None;
                }
            }
            last_time = Some(r.time);

            let fold = cfg.fold_embedded
                && r.kind == DocKind::Image
                && last_html_time.is_some_and(|ht| r.time - ht <= cfg.embed_window_secs)
                && !current.is_empty();
            if fold {
                // Recorded with the HTML file: bytes only, no session step.
                current.last_mut().unwrap().bytes += u64::from(r.size);
            } else {
                if r.kind == DocKind::Html {
                    last_html_time = Some(r.time);
                }
                current.push(PageView {
                    time: r.time,
                    url: r.url,
                    bytes: u64::from(r.size),
                });
            }
        }
        if !current.is_empty() {
            sessions.push(Session {
                client,
                views: current,
            });
        }
    }
    if pbppm_obs::ENABLED {
        let reg = pbppm_obs::global();
        reg.counter("trace.sessionize.requests", "")
            .add(requests.len() as u64);
        reg.counter("trace.sessionize.sessions", "")
            .add(sessions.len() as u64);
    }
    sessions
}

/// Convenience: sessionizes an entire trace with default parameters.
pub fn sessionize_trace(trace: &Trace) -> Vec<Session> {
    sessionize(&trace.requests, &SessionizerConfig::default())
}

/// Summary statistics over a set of sessions (used by `analyze_log` and the
/// workload-calibration tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Number of sessions.
    pub count: usize,
    /// Mean session length in page views.
    pub mean_len: f64,
    /// Maximum session length.
    pub max_len: usize,
    /// Fraction of sessions with at most 9 views (the paper reports > 95%).
    pub frac_len_le_9: f64,
}

impl SessionStats {
    /// Computes the statistics.
    pub fn of(sessions: &[Session]) -> Self {
        if sessions.is_empty() {
            return Self::default();
        }
        let lens: Vec<usize> = sessions.iter().map(Session::len).collect();
        let total: usize = lens.iter().sum();
        Self {
            count: sessions.len(),
            mean_len: total as f64 / sessions.len() as f64,
            max_len: lens.iter().copied().max().unwrap_or(0),
            frac_len_le_9: lens.iter().filter(|&&l| l <= 9).count() as f64 / sessions.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(time: u64, client: u32, url: u32, kind: DocKind, size: u32) -> Request {
        Request {
            time,
            client: ClientId(client),
            url: UrlId(url),
            size,
            status: 200,
            kind,
        }
    }

    #[test]
    fn splits_on_idle_gap() {
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 10),
            req(100, 0, 2, DocKind::Html, 10),
            req(100 + 1801, 0, 3, DocKind::Html, 10), // 30min + 1s later
        ];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].len(), 2);
        assert_eq!(s[1].len(), 1);
    }

    #[test]
    fn gap_is_exclusive_at_exactly_the_threshold() {
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 10),
            req(1800, 0, 2, DocKind::Html, 10), // exactly 30 minutes: same session
        ];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 2);
    }

    #[test]
    fn clients_are_independent() {
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 10),
            req(1, 1, 2, DocKind::Html, 10),
            req(2, 0, 3, DocKind::Html, 10),
        ];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        assert_eq!(s.len(), 2);
        let c0 = s.iter().find(|x| x.client == ClientId(0)).unwrap();
        assert_eq!(c0.urls(), vec![UrlId(1), UrlId(3)]);
    }

    #[test]
    fn folds_embedded_images_into_the_html_view() {
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 1000),
            req(3, 0, 10, DocKind::Image, 200),
            req(9, 0, 11, DocKind::Image, 300),
            req(40, 0, 2, DocKind::Html, 500),
        ];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 2, "images folded, not separate views");
        assert_eq!(s[0].views[0].bytes, 1500);
        assert_eq!(s[0].views[1].bytes, 500);
    }

    #[test]
    fn late_images_are_their_own_views() {
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 1000),
            req(11, 0, 10, DocKind::Image, 200), // outside the 10 s window
        ];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        assert_eq!(s[0].len(), 2);
        assert_eq!(s[0].views[1].url, UrlId(10));
    }

    #[test]
    fn image_with_no_preceding_html_is_a_view() {
        let reqs = vec![req(0, 0, 10, DocKind::Image, 200)];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].len(), 1);
    }

    #[test]
    fn embed_window_is_relative_to_the_html_not_the_previous_image() {
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 100),
            req(8, 0, 10, DocKind::Image, 1),  // folded (8 <= 10)
            req(16, 0, 11, DocKind::Image, 1), // 16 s after the HTML: not folded
        ];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        assert_eq!(s[0].len(), 2);
        assert_eq!(s[0].views[0].bytes, 101);
    }

    #[test]
    fn folding_can_be_disabled() {
        let cfg = SessionizerConfig {
            fold_embedded: false,
            ..SessionizerConfig::default()
        };
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 100),
            req(1, 0, 10, DocKind::Image, 1),
        ];
        let s = sessionize(&reqs, &cfg);
        assert_eq!(s[0].len(), 2);
    }

    #[test]
    fn gap_resets_the_embed_window() {
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 100),
            req(2000, 0, 10, DocKind::Image, 1), // new session, no HTML before it
        ];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].views[0].url, UrlId(10));
    }

    #[test]
    fn empty_input_no_sessions() {
        assert!(sessionize(&[], &SessionizerConfig::default()).is_empty());
    }

    /// No sessions → all-zero stats with finite floats (no 0/0 NaN).
    #[test]
    fn stats_of_no_sessions_are_zero_not_nan() {
        let s = SessionStats::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_len, 0.0);
        assert_eq!(s.frac_len_le_9, 0.0);
        assert!(s.mean_len.is_finite() && s.frac_len_le_9.is_finite());
    }

    #[test]
    fn stats() {
        let reqs = vec![
            req(0, 0, 1, DocKind::Html, 10),
            req(1, 0, 2, DocKind::Html, 10),
            req(5000, 0, 3, DocKind::Html, 10),
        ];
        let s = sessionize(&reqs, &SessionizerConfig::default());
        let st = SessionStats::of(&s);
        assert_eq!(st.count, 2);
        assert!((st.mean_len - 1.5).abs() < 1e-12);
        assert_eq!(st.max_len, 2);
        assert_eq!(st.frac_len_le_9, 1.0);
        assert_eq!(SessionStats::of(&[]), SessionStats::default());
    }
}
