//! # pbppm-trace — the web trace substrate
//!
//! Everything the PB-PPM paper's evaluation needs on the *data* side:
//!
//! * [`event`] — the request record and trace container types;
//! * [`clf`] — a Common Log Format parser (and writer), so the genuine
//!   NASA-KSC / UCB-CS logs the paper used can be fed in unchanged;
//! * [`ingest`] — chunked, parallel, bounded-memory streaming ingestion of
//!   CLF logs, byte-identical to the sequential [`clf`] path;
//! * [`session`] — the paper's §2.2 preprocessing: 30-minute idle
//!   sessionization and 10-second embedded-image folding;
//! * [`classify`] — the proxy-vs-browser client classification;
//! * [`zipf`] — a fast Zipf(α) sampler plus an empirical rank-frequency
//!   slope estimator;
//! * [`site`] — a hierarchical web-site model (pages, links, sizes);
//! * [`synth`] — the session random-walk generator implementing the paper's
//!   three surfing regularities;
//! * [`workload`] — multi-day NASA-like and UCB-like workload presets that
//!   produce complete [`event::Trace`]s.
//!
//! The synthetic workloads substitute for the paper's (no longer practically
//! obtainable) raw server logs; see `DESIGN.md` §2 for the substitution
//! argument.

#![forbid(unsafe_code)]

pub mod catalog;
pub mod classify;
pub mod clf;
pub mod combined;
pub mod event;
pub mod ingest;
pub mod session;
pub mod site;
pub mod synth;
pub mod workload;
pub mod zipf;

pub use catalog::DocCatalog;
pub use classify::{classify_clients, ClassifyConfig, ClientClass};
pub use clf::{
    format_clf_line, parse_clf_line, parse_clf_line_ref, trace_from_clf, ClfParseError, ClfRecord,
    ClfRecordRef, ClfStats,
};
pub use combined::{
    detect_format, format_combined_line, is_robot_agent, parse_combined_line, trace_from_log,
    CombinedRecord, LogFormat, LogIngest,
};
pub use event::{ClientId, DocKind, Request, Trace, DAY_SECS};
pub use ingest::{trace_from_clf_path, trace_from_clf_reader, IngestConfig};
pub use session::{
    sessionize, sessionize_trace, PageView, Session, SessionStats, SessionizerConfig,
};
pub use site::{SiteConfig, SiteModel};
pub use synth::SessionGenConfig;
pub use workload::WorkloadConfig;
pub use zipf::ZipfSampler;
