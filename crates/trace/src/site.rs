//! A hierarchical web-site model.
//!
//! Real server file trees — which both of the paper's traces come from — are
//! hierarchical: a few entry pages fan out into section pages, which fan out
//! into leaf documents. The paper leans on this structure repeatedly ("this
//! is common due to the hierarchical structure of Web pages", §3.3), and the
//! three surfing regularities are statements about walks over it.
//!
//! [`SiteModel::generate`] builds such a site: `levels` tiers of HTML pages,
//! geometric growth per tier, each page linking to a handful of next-tier
//! pages (with occasional cross links and back-to-entry links), log-normally
//! sized, with a few embedded images each. The session generator in
//! [`crate::synth`] walks this structure.

use crate::event::DocKind;
use pbppm_core::{Interner, UrlId};
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Parameters of the generated site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Number of level-0 (entry) pages.
    pub entry_pages: usize,
    /// Number of page tiers (≥ 1).
    pub levels: usize,
    /// Pages per tier grow by this factor each level down.
    pub branching: usize,
    /// Outgoing links per page.
    pub links_per_page: usize,
    /// Fraction of links that jump to a uniformly random page instead of a
    /// child in the next tier (site irregularity).
    pub cross_link_prob: f64,
    /// `ln`-space mean of HTML page sizes.
    pub html_size_log_mean: f64,
    /// Added to the `ln`-space size mean per tier descended: leaf content
    /// (galleries, downloads, long documents) is bigger than entry pages.
    pub size_log_level_boost: f64,
    /// `ln`-space sigma of HTML page sizes.
    pub html_size_log_sigma: f64,
    /// `ln`-space mean of embedded image sizes.
    pub image_size_log_mean: f64,
    /// `ln`-space sigma of embedded image sizes.
    pub image_size_log_sigma: f64,
    /// Maximum embedded images per page (uniform 0..=max).
    pub max_embedded: u8,
    /// Bottom-tier "leave the leaf" links: `false` points every bottom page
    /// at the same few top entry pages (a home-oriented site like NASA-KSC),
    /// `true` scatters them over random entries (a federated site with no
    /// central home, like a department server).
    pub scattered_home_links: bool,
}

impl Default for SiteConfig {
    fn default() -> Self {
        Self {
            entry_pages: 30,
            levels: 4,
            branching: 5,
            links_per_page: 6,
            cross_link_prob: 0.1,
            // exp(8.1) ≈ 3.3 KB median HTML (mid-90s scale), heavy tail
            html_size_log_mean: 8.1,
            size_log_level_boost: 0.0,
            html_size_log_sigma: 0.9,
            // exp(7.8) ≈ 2.4 KB median image
            image_size_log_mean: 7.8,
            image_size_log_sigma: 1.0,
            max_embedded: 3,
            scattered_home_links: false,
        }
    }
}

/// One HTML page of the site.
#[derive(Debug, Clone)]
pub struct Page {
    /// Interned URL of the page.
    pub url: UrlId,
    /// Page size in bytes.
    pub size: u32,
    /// Tier (0 = entry).
    pub level: u8,
    /// Outgoing links as page indices, ordered most-likely-first; the
    /// session generator picks among them with a skewed distribution.
    pub links: Vec<u32>,
    /// Embedded images: `(url, size)`.
    pub embedded: Vec<(UrlId, u32)>,
}

/// The generated site.
#[derive(Debug, Clone)]
pub struct SiteModel {
    /// All pages; tiers are contiguous index ranges.
    pub pages: Vec<Page>,
    /// `level_start[l]..level_start[l+1]` are the indices of tier `l`.
    pub level_start: Vec<u32>,
    /// URL interner holding page and image URLs (and later any fresh
    /// one-off URLs the workload generator mints).
    pub urls: Interner,
}

impl SiteModel {
    /// Generates a site from `cfg` using `rng`.
    // Page indices fit u32 (the interner would overflow first), levels fit
    // u8, and sampled sizes are clamped to positive ranges before narrowing.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn generate<R: Rng + ?Sized>(cfg: &SiteConfig, rng: &mut R) -> Self {
        assert!(cfg.levels >= 1, "need at least one level");
        assert!(cfg.entry_pages >= 1, "need at least one entry page");
        let mut urls = Interner::new();
        let html_size = LogNormal::new(cfg.html_size_log_mean, cfg.html_size_log_sigma)
            .expect("bad html size params");
        let img_size = LogNormal::new(cfg.image_size_log_mean, cfg.image_size_log_sigma)
            .expect("bad image size params");

        // Tier sizes: entry_pages * branching^level.
        let mut level_start = vec![0u32];
        let mut count = cfg.entry_pages;
        for _ in 0..cfg.levels {
            let prev = *level_start.last().unwrap();
            level_start.push(prev + count as u32);
            count = count.saturating_mul(cfg.branching).max(1);
        }
        let total = *level_start.last().unwrap() as usize;

        let mut pages = Vec::with_capacity(total);
        for level in 0..cfg.levels {
            let lo = level_start[level] as usize;
            let hi = level_start[level + 1] as usize;
            let boost = (cfg.size_log_level_boost * level as f64).exp();
            for i in lo..hi {
                let url = urls.intern(&format!("/l{level}/p{i}.html"));
                let size = ((html_size.sample(rng) * boost) as u32).clamp(256, 2_000_000);
                let n_embedded = rng.gen_range(0..=cfg.max_embedded);
                let embedded = (0..n_embedded)
                    .map(|e| {
                        let iu = urls.intern(&format!("/img/p{i}_{e}.gif"));
                        let isz = (img_size.sample(rng) as u32).clamp(128, 1_000_000);
                        (iu, isz)
                    })
                    .collect();
                pages.push(Page {
                    url,
                    size,
                    level: level as u8,
                    links: Vec::new(),
                    embedded,
                });
            }
        }

        // Wire links tier by tier.
        for level in 0..cfg.levels {
            let lo = level_start[level] as usize;
            let hi = level_start[level + 1] as usize;
            if level + 1 == cfg.levels {
                // Bottom tier: stable "leave the leaf" links back to entry
                // pages. In the home-oriented layout every bottom page
                // points at the same few top entries in rank order — users
                // leaving the bottom of the hierarchy overwhelmingly return
                // to the home page, the recurring popular transition
                // PB-PPM's special links exploit. In the scattered layout
                // each page points at its own random entries, so returns
                // disperse and no single popular target accumulates.
                let n = cfg.links_per_page.min(cfg.entry_pages).max(1);
                for (i, page) in pages.iter_mut().enumerate().take(hi).skip(lo) {
                    page.links = if cfg.scattered_home_links {
                        (0..n)
                            .map(|_| rng.gen_range(0..cfg.entry_pages) as u32)
                            .filter(|&t| t as usize != i)
                            .collect()
                    } else {
                        (0..n as u32).filter(|&t| t as usize != i).collect()
                    };
                    if page.links.is_empty() {
                        page.links.push(((i + 1) % total) as u32);
                    }
                }
                continue;
            }
            let next_lo = level_start[level + 1] as usize;
            let next_hi = level_start[level + 2] as usize;
            let next_span = next_hi - next_lo;
            #[allow(clippy::needless_range_loop)] // two disjoint index uses
            for i in lo..hi {
                let mut links = Vec::with_capacity(cfg.links_per_page);
                // Primary children: a contiguous window into the next tier,
                // anchored by this page's offset — gives each page its own
                // favourite descendants, hence repeatable paths.
                let offset = ((i - lo) * cfg.branching) % next_span.max(1);
                for k in 0..cfg.links_per_page {
                    let target = if rng.gen_bool(cfg.cross_link_prob) {
                        rng.gen_range(0..total) as u32
                    } else {
                        (next_lo + (offset + k) % next_span.max(1)) as u32
                    };
                    if target as usize != i {
                        links.push(target);
                    }
                }
                if links.is_empty() {
                    links.push(next_lo as u32);
                }
                pages[i].links = links;
            }
        }

        Self {
            pages,
            level_start,
            urls,
        }
    }

    /// Perturbs the links of every page at tier `min_level` or deeper
    /// (except the bottom tier's stable return-home links): each link is
    /// retargeted to a uniformly random page of the next tier with
    /// probability `retarget_frac`, then the link order is reshuffled.
    ///
    /// Link order is what the session generator's skewed choice keys on, so
    /// a reshuffle changes which descendants are "favourites", and a
    /// retarget changes which descendants are reachable at all. Calling
    /// this at each day boundary models the volatility of deep surfing:
    /// which leaf documents are hot churns daily, while the popular top of
    /// the site stays stable — the property the paper leans on ("the
    /// popularity of Web files is normally stable over a long period", §1).
    #[allow(clippy::cast_possible_truncation)] // tier count fits u8
    pub fn reshuffle_deep_links<R: Rng + ?Sized>(
        &mut self,
        min_level: u8,
        retarget_frac: f64,
        rng: &mut R,
    ) {
        use rand::seq::SliceRandom;
        let bottom = (self.level_start.len() - 2) as u8;
        let level_start = self.level_start.clone();
        for (i, p) in self.pages.iter_mut().enumerate() {
            if p.level >= min_level && p.level < bottom {
                if retarget_frac > 0.0 {
                    let next_lo = level_start[p.level as usize + 1];
                    let next_hi = level_start[p.level as usize + 2];
                    for link in &mut p.links {
                        if rng.gen_bool(retarget_frac.clamp(0.0, 1.0)) {
                            let t = rng.gen_range(next_lo..next_hi);
                            if t as usize != i {
                                *link = t;
                            }
                        }
                    }
                }
                p.links.shuffle(rng);
            }
        }
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when the site has no pages (never the case after `generate`).
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of entry (tier-0) pages.
    pub fn entry_count(&self) -> usize {
        self.level_start[1] as usize
    }

    /// Document kind of a page (always HTML in this model).
    pub fn kind(&self) -> DocKind {
        DocKind::Html
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> SiteConfig {
        SiteConfig {
            entry_pages: 4,
            levels: 3,
            branching: 3,
            links_per_page: 4,
            ..SiteConfig::default()
        }
    }

    #[test]
    fn tier_sizes_grow_geometrically() {
        let mut rng = StdRng::seed_from_u64(7);
        let site = SiteModel::generate(&small_cfg(), &mut rng);
        assert_eq!(site.level_start, vec![0, 4, 16, 52]);
        assert_eq!(site.len(), 52);
        assert_eq!(site.entry_count(), 4);
    }

    #[test]
    fn links_point_to_the_next_tier_or_entries() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = SiteConfig {
            cross_link_prob: 0.0,
            ..small_cfg()
        };
        let site = SiteModel::generate(&cfg, &mut rng);
        for (i, p) in site.pages.iter().enumerate() {
            assert!(!p.links.is_empty(), "page {i} has no links");
            for &t in &p.links {
                let t_level = site.pages[t as usize].level;
                if p.level as usize + 1 < cfg.levels {
                    assert_eq!(t_level, p.level + 1, "page {i} -> {t}");
                } else {
                    assert_eq!(t_level, 0, "bottom tier must link to entries");
                }
            }
        }
    }

    #[test]
    fn no_self_links() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SiteConfig {
            cross_link_prob: 0.5,
            ..small_cfg()
        };
        let site = SiteModel::generate(&cfg, &mut rng);
        for (i, p) in site.pages.iter().enumerate() {
            assert!(p.links.iter().all(|&t| t as usize != i));
        }
    }

    #[test]
    fn urls_are_unique_and_resolvable() {
        let mut rng = StdRng::seed_from_u64(9);
        let site = SiteModel::generate(&small_cfg(), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for p in &site.pages {
            assert!(seen.insert(p.url), "duplicate page url");
            assert!(site.urls.resolve(p.url).is_some());
            for &(iu, _) in &p.embedded {
                assert!(site.urls.resolve(iu).unwrap().starts_with("/img/"));
            }
        }
    }

    #[test]
    fn sizes_within_clamps() {
        let mut rng = StdRng::seed_from_u64(11);
        let site = SiteModel::generate(&small_cfg(), &mut rng);
        for p in &site.pages {
            assert!((256..=2_000_000).contains(&p.size));
            for &(_, s) in &p.embedded {
                assert!((128..=1_000_000).contains(&s));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = small_cfg();
        let a = SiteModel::generate(&cfg, &mut StdRng::seed_from_u64(5));
        let b = SiteModel::generate(&cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.pages.iter().zip(&b.pages) {
            assert_eq!(pa.url, pb.url);
            assert_eq!(pa.size, pb.size);
            assert_eq!(pa.links, pb.links);
        }
    }

    #[test]
    fn reshuffle_changes_order_but_not_membership() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SiteConfig {
            entry_pages: 6,
            levels: 4,
            branching: 4,
            links_per_page: 6,
            cross_link_prob: 0.0,
            ..SiteConfig::default()
        };
        let mut site = SiteModel::generate(&cfg, &mut rng);
        let before: Vec<Vec<u32>> = site.pages.iter().map(|p| p.links.clone()).collect();
        site.reshuffle_deep_links(1, 0.0, &mut rng);
        let mut any_reordered = false;
        for (i, p) in site.pages.iter().enumerate() {
            let mut a = before[i].clone();
            let mut b = p.links.clone();
            if p.level >= 1 && (p.level as usize) < cfg.levels - 1 {
                any_reordered |= before[i] != p.links;
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "order-only reshuffle must keep the link set");
            } else {
                assert_eq!(before[i], p.links, "level-0 and bottom links are stable");
            }
        }
        assert!(any_reordered, "something should have moved");
    }

    #[test]
    fn retargeting_changes_link_sets_within_the_next_tier() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = SiteConfig {
            entry_pages: 6,
            levels: 4,
            branching: 4,
            cross_link_prob: 0.0,
            ..SiteConfig::default()
        };
        let mut site = SiteModel::generate(&cfg, &mut rng);
        let before: Vec<Vec<u32>> = site.pages.iter().map(|p| p.links.clone()).collect();
        site.reshuffle_deep_links(1, 1.0, &mut rng);
        let mut any_retargeted = false;
        for (i, p) in site.pages.iter().enumerate() {
            if p.level >= 1 && (p.level as usize) < cfg.levels - 1 {
                let mut a = before[i].clone();
                let mut b = p.links.clone();
                a.sort_unstable();
                b.sort_unstable();
                any_retargeted |= a != b;
                // Retargets stay within the next tier.
                for &t in &p.links {
                    assert_eq!(site.pages[t as usize].level, p.level + 1);
                }
            }
        }
        assert!(any_retargeted);
    }

    #[test]
    fn scattered_home_links_spread_over_entries() {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = SiteConfig {
            entry_pages: 40,
            levels: 3,
            branching: 4,
            links_per_page: 5,
            scattered_home_links: true,
            ..SiteConfig::default()
        };
        let site = SiteModel::generate(&cfg, &mut rng);
        let bottom_lo = site.level_start[2] as usize;
        let mut targets = std::collections::HashSet::new();
        for p in &site.pages[bottom_lo..] {
            for &t in &p.links {
                assert_eq!(site.pages[t as usize].level, 0);
                targets.insert(t);
            }
        }
        assert!(
            targets.len() > cfg.links_per_page,
            "scattered links must cover more entries than any single page's list"
        );
    }

    #[test]
    fn single_level_site_links_to_entries() {
        let cfg = SiteConfig {
            entry_pages: 5,
            levels: 1,
            ..SiteConfig::default()
        };
        let site = SiteModel::generate(&cfg, &mut StdRng::seed_from_u64(2));
        assert_eq!(site.len(), 5);
        for p in &site.pages {
            for &t in &p.links {
                assert_eq!(site.pages[t as usize].level, 0);
            }
        }
    }
}
