//! Zipf-distributed sampling and rank-frequency estimation.
//!
//! Web popularity is famously Zipf-like, and the paper's three surfing
//! regularities are all statements about that skew. The synthetic workloads
//! sample entry pages, link choices and client activity from [`ZipfSampler`].
//!
//! The sampler precomputes the cumulative distribution once (O(n)) and draws
//! by binary search (O(log n)) — rejection-free and allocation-free per
//! sample, which matters because a workload draws millions of times.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^alpha`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with exponent `alpha >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha` is not finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "bad alpha: {alpha}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        *cdf.last_mut().unwrap() = 1.0;
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false (`n > 0` is enforced at construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of `rank`.
    pub fn prob(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }

    /// Draws one rank.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Least-squares estimate of the Zipf exponent from observed counts.
///
/// Sorts counts descending and fits `log(count) = a - alpha * log(rank)`;
/// zero counts are skipped. Returns `None` with fewer than two nonzero
/// counts. Used by the calibration tests to check that generated workloads
/// have the skew they claim.
pub fn empirical_alpha(counts: &[u64]) -> Option<f64> {
    let mut sorted: Vec<u64> = counts.iter().copied().filter(|&c| c > 0).collect();
    if sorted.len() < 2 {
        return None;
    }
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let pts: Vec<(f64, f64)> = sorted
        .iter()
        .enumerate()
        .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.prob(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let z = ZipfSampler::new(50, 0.8);
        for r in 1..50 {
            assert!(z.prob(0) >= z.prob(r));
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.prob(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_cover_all_ranks_and_skew_correctly() {
        let z = ZipfSampler::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        assert!(counts[0] > counts[9] * 5, "rank 0 should dominate rank 9");
        // Empirical frequency of rank 0 close to analytic probability.
        let f0 = counts[0] as f64 / 100_000.0;
        assert!((f0 - z.prob(0)).abs() < 0.01);
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = ZipfSampler::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empirical_alpha_recovers_the_exponent() {
        // Perfect Zipf(1.2) counts.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // positive, < 1e9
        let counts: Vec<u64> = (1..=200u64)
            .map(|r| ((1e9 / (r as f64).powf(1.2)) as u64).max(1))
            .collect();
        let alpha = empirical_alpha(&counts).unwrap();
        assert!((alpha - 1.2).abs() < 0.05, "alpha = {alpha}");
    }

    #[test]
    fn empirical_alpha_degenerate_inputs() {
        assert_eq!(empirical_alpha(&[]), None);
        assert_eq!(empirical_alpha(&[5]), None);
        assert_eq!(empirical_alpha(&[0, 0, 5]), None);
        // All-equal counts: alpha ~ 0.
        let alpha = empirical_alpha(&[10, 10, 10, 10]).unwrap();
        assert!(alpha.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
