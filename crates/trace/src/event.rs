//! Request records and the trace container.

use pbppm_core::{Interner, UrlId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds per trace day.
pub const DAY_SECS: u64 = 86_400;

/// Dense identifier for a client (an IP address or host name in real logs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClientId(pub u32);

impl ClientId {
    /// The id as a `usize`, for direct `Vec` indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Coarse document type, classified from the URL extension exactly as §2.2
/// of the paper does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DocKind {
    /// `.html`, `.htm`, `.shtml` — a page that may embed images.
    Html,
    /// The paper's embedded-image extension list (`.gif`, `.jpg`, …).
    Image,
    /// Everything else (downloads, CGI, directories, …).
    Other,
}

/// The paper's list of embeddable image extensions (§2.2).
const IMAGE_EXTS: &[&str] = &[
    "gif", "xbm", "jpg", "jpeg", "gif89", "tif", "tiff", "bmp", "ief", "jpe", "ras", "pnm", "pgm",
    "ppm", "rgb", "xpm", "xwd", "pcx", "pbm", "pic",
];

/// The paper's list of HTML extensions (§2.2). A trailing `/` (directory
/// index) is treated as HTML as well, as every practical log study does.
const HTML_EXTS: &[&str] = &["html", "htm", "shtml"];

impl DocKind {
    /// Classifies a URL path by its extension.
    pub fn from_url(path: &str) -> DocKind {
        // Strip query string / fragment before looking at the extension.
        let path = path
            .split_once(['?', '#'])
            .map_or(path, |(before, _)| before);
        if path.ends_with('/') || path.is_empty() {
            return DocKind::Html;
        }
        let name = path.rsplit('/').next().unwrap_or(path);
        let Some((_, ext)) = name.rsplit_once('.') else {
            return DocKind::Other;
        };
        let ext = ext.to_ascii_lowercase();
        if HTML_EXTS.contains(&ext.as_str()) {
            DocKind::Html
        } else if IMAGE_EXTS.contains(&ext.as_str()) {
            DocKind::Image
        } else {
            DocKind::Other
        }
    }
}

/// One HTTP request, after URL and client interning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Seconds since the trace epoch.
    pub time: u64,
    /// Requesting client.
    pub client: ClientId,
    /// Requested document.
    pub url: UrlId,
    /// Transferred bytes.
    pub size: u32,
    /// HTTP status code.
    pub status: u16,
    /// Document type.
    pub kind: DocKind,
}

/// A complete server trace: time-ordered requests plus the two interners.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    /// All requests, sorted by `time` (stable on insertion order for ties).
    pub requests: Vec<Request>,
    /// URL path interner.
    pub urls: Interner,
    /// Client name interner.
    pub clients: Interner,
    /// Human-readable origin of the trace ("nasa-like", a file name, …).
    pub name: String,
}

impl Trace {
    /// Creates an empty, named trace.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Sorts requests by time (stable), restoring the container invariant
    /// after bulk insertion.
    pub fn sort(&mut self) {
        self.requests.sort_by_key(|r| r.time);
    }

    /// Number of whole-or-partial days the trace spans.
    pub fn days(&self) -> usize {
        match self.requests.last() {
            None => 0,
            Some(last) => (last.time / DAY_SECS) as usize + 1,
        }
    }

    /// The requests of day `d` (0-based), as a sub-slice.
    ///
    /// Requires the trace to be sorted by time.
    pub fn day(&self, d: usize) -> &[Request] {
        let lo = self
            .requests
            .partition_point(|r| r.time < d as u64 * DAY_SECS);
        let hi = self
            .requests
            .partition_point(|r| r.time < (d as u64 + 1) * DAY_SECS);
        &self.requests[lo..hi]
    }

    /// The requests of days `0..n` (the paper's "number of day files used
    /// for predictions"), as one sub-slice.
    pub fn first_days(&self, n: usize) -> &[Request] {
        let hi = self
            .requests
            .partition_point(|r| r.time < n as u64 * DAY_SECS);
        &self.requests[..hi]
    }

    /// The requests of days `from..to` (0-based, `to` exclusive), as one
    /// sub-slice. Requires the trace to be sorted by time.
    pub fn day_span(&self, from: usize, to: usize) -> &[Request] {
        let lo = self
            .requests
            .partition_point(|r| r.time < from as u64 * DAY_SECS);
        let hi = self
            .requests
            .partition_point(|r| r.time < to as u64 * DAY_SECS);
        &self.requests[lo..hi.max(lo)]
    }

    /// Total transferred bytes.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.size)).sum()
    }

    /// Number of distinct URLs that actually appear in requests.
    pub fn distinct_urls(&self) -> usize {
        let mut seen = pbppm_core::FxHashSet::default();
        self.requests.iter().for_each(|r| {
            seen.insert(r.url);
        });
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dockind_html_variants() {
        assert_eq!(DocKind::from_url("/index.html"), DocKind::Html);
        assert_eq!(DocKind::from_url("/a/b.HTM"), DocKind::Html);
        assert_eq!(DocKind::from_url("/x.shtml"), DocKind::Html);
        assert_eq!(DocKind::from_url("/dir/"), DocKind::Html);
        assert_eq!(DocKind::from_url(""), DocKind::Html);
    }

    #[test]
    fn dockind_image_variants() {
        for ext in ["gif", "jpg", "JPEG", "xbm", "tiff", "pcx"] {
            assert_eq!(
                DocKind::from_url(&format!("/img/logo.{ext}")),
                DocKind::Image,
                "{ext}"
            );
        }
    }

    #[test]
    fn dockind_other() {
        assert_eq!(DocKind::from_url("/data.tar.gz"), DocKind::Other);
        assert_eq!(DocKind::from_url("/cgi-bin/search"), DocKind::Other);
        assert_eq!(DocKind::from_url("/noext"), DocKind::Other);
    }

    #[test]
    fn dockind_ignores_query_strings() {
        assert_eq!(DocKind::from_url("/page.html?q=1"), DocKind::Html);
        assert_eq!(DocKind::from_url("/i.gif?cache=no#frag"), DocKind::Image);
    }

    fn req(time: u64) -> Request {
        Request {
            time,
            client: ClientId(0),
            url: UrlId(0),
            size: 100,
            status: 200,
            kind: DocKind::Html,
        }
    }

    #[test]
    fn day_slicing() {
        let mut t = Trace::new("t");
        t.requests = vec![
            req(10),
            req(DAY_SECS - 1),
            req(DAY_SECS),
            req(2 * DAY_SECS + 5),
        ];
        t.sort();
        assert_eq!(t.days(), 3);
        assert_eq!(t.day(0).len(), 2);
        assert_eq!(t.day(1).len(), 1);
        assert_eq!(t.day(2).len(), 1);
        assert_eq!(t.day(3).len(), 0);
        assert_eq!(t.first_days(2).len(), 3);
        assert_eq!(t.first_days(0).len(), 0);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("e");
        assert_eq!(t.days(), 0);
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.distinct_urls(), 0);
    }

    #[test]
    fn sort_is_stable_for_equal_times() {
        let mut t = Trace::new("t");
        let mut a = req(5);
        a.url = UrlId(1);
        let mut b = req(5);
        b.url = UrlId(2);
        t.requests = vec![a, b];
        t.sort();
        assert_eq!(t.requests[0].url, UrlId(1));
        assert_eq!(t.requests[1].url, UrlId(2));
    }

    #[test]
    fn totals() {
        let mut t = Trace::new("t");
        t.requests = vec![req(1), req(2)];
        assert_eq!(t.total_bytes(), 200);
        assert_eq!(t.distinct_urls(), 1);
    }
}
