//! The session random-walk generator — the paper's three regularities in
//! executable form.
//!
//! * **Regularity 1** — "majority clients start their access sessions from
//!   popular URLs of a server": with probability
//!   [`SessionGenConfig::start_popular_frac`] a session starts at an entry
//!   page drawn Zipf([`SessionGenConfig::entry_alpha`]); otherwise it starts
//!   at a uniformly random page of any tier.
//! * **Regularity 2** — "majority long access sessions are headed by popular
//!   URLs": sessions that started at a top-decile entry continue with an
//!   extra [`SessionGenConfig::popular_len_boost`] on top of the base
//!   continue probability.
//! * **Regularity 3** — "accessing paths … start from popular URLs, move to
//!   less popular URLs, and exit from the least": the continue probability
//!   decays by [`SessionGenConfig::continue_decay`] per tier, so walks die
//!   out as they descend.
//!
//! Link choices are skewed ([`SessionGenConfig::link_skew`]) so that the
//! same few paths recur — the signal every PPM variant learns. A small
//! [`SessionGenConfig::new_url_prob`] mints one-off URLs never seen again
//! (cold documents: bursty growth for the standard model, noise for all).

use crate::site::SiteModel;
use crate::zipf::ZipfSampler;
use pbppm_core::UrlId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One step of a generated session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// A visit to site page `pages[idx]`.
    Page(u32),
    /// A one-off document minted for this visit: `(url, size)`.
    Fresh(UrlId, u32),
}

/// Session-walk parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionGenConfig {
    /// Probability that a session starts at a Zipf-drawn entry page
    /// (Regularity 1); otherwise it starts at a uniformly random page.
    pub start_popular_frac: f64,
    /// Zipf exponent over the entry pages.
    pub entry_alpha: f64,
    /// Zipf exponent over a page's ordered link list (predictability knob).
    pub link_skew: f64,
    /// Multiplicative decay of the link skew per tier descended: deep
    /// surfing is noisier than top-level navigation (`1.0` = no decay).
    pub link_skew_level_decay: f64,
    /// Probability of continuing from a tier-0 page.
    pub base_continue: f64,
    /// Multiplicative decay of the continue probability per tier descended
    /// (Regularity 3).
    pub continue_decay: f64,
    /// Extra continue probability when the session started at a top-decile
    /// entry (Regularity 2).
    pub popular_len_boost: f64,
    /// Hard cap on session length.
    pub max_len: usize,
    /// Probability that a step jumps back to a (Zipf-drawn) entry page
    /// instead of following a link — the "return home" click. Per-step the
    /// probability of any *specific* popular page is tiny, but summed over
    /// a session the popular pages absorb most returns; this is the diffuse
    /// popular-revisit behaviour PB-PPM's special links are built to catch.
    pub jump_home_prob: f64,
    /// Probability that a step visits a freshly minted one-off URL.
    pub new_url_prob: f64,
    /// `ln`-space mean size for fresh one-off documents.
    pub fresh_size_log_mean: f64,
}

impl Default for SessionGenConfig {
    fn default() -> Self {
        Self {
            start_popular_frac: 0.8,
            entry_alpha: 1.0,
            link_skew: 1.2,
            link_skew_level_decay: 1.0,
            base_continue: 0.75,
            continue_decay: 0.9,
            popular_len_boost: 0.12,
            max_len: 25,
            jump_home_prob: 0.0,
            new_url_prob: 0.03,
            fresh_size_log_mean: 8.5,
        }
    }
}

/// Reusable sampler state for one workload generation run.
pub struct SessionGen {
    cfg: SessionGenConfig,
    entry_sampler: ZipfSampler,
    /// One link sampler per `(tier, fan-out)`: `link_samplers[level][n]`.
    link_samplers: Vec<Vec<Option<ZipfSampler>>>,
    fresh_counter: u64,
}

impl SessionGen {
    /// Prepares samplers for walking `site` under `cfg`.
    pub fn new(cfg: SessionGenConfig, site: &SiteModel) -> Self {
        let entry_sampler = ZipfSampler::new(site.entry_count(), cfg.entry_alpha);
        let max_fanout = site.pages.iter().map(|p| p.links.len()).max().unwrap_or(1);
        let levels = site.level_start.len() - 1;
        let mut link_samplers = vec![vec![None; max_fanout + 1]; levels];
        for p in &site.pages {
            let n = p.links.len();
            let l = p.level as usize;
            if n > 0 && link_samplers[l][n].is_none() {
                let skew = cfg.link_skew * cfg.link_skew_level_decay.powi(i32::from(p.level));
                link_samplers[l][n] = Some(ZipfSampler::new(n, skew.max(0.0)));
            }
        }
        Self {
            cfg,
            entry_sampler,
            link_samplers,
            fresh_counter: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SessionGenConfig {
        &self.cfg
    }

    /// Generates one **robot** (crawler) session: a long, systematic,
    /// breadth-first-ish sweep starting at entry page `start_entry`,
    /// visiting up to `max_pages` pages in deterministic link order.
    ///
    /// Robots are what made mid-90s/2000s server logs pathological for
    /// PPM-family models: their sweeps mint enormous numbers of deep paths,
    /// and because popular crawlers (and re-crawls) repeat the *same*
    /// sweeps, those paths pass LRS's repetition filter too. The UCB-CS
    /// trace's extreme LRS growth in the paper's Table 2 is this effect.
    #[allow(clippy::cast_possible_truncation)] // page indices fit u32
    pub fn gen_robot_session(
        &mut self,
        site: &SiteModel,
        start_entry: u32,
        max_pages: usize,
    ) -> Vec<Visit> {
        let mut visits = Vec::with_capacity(max_pages);
        let mut queue = std::collections::VecDeque::new();
        let mut seen = vec![false; site.len()];
        let start = (start_entry as usize % site.entry_count().max(1)) as u32;
        queue.push_back(start);
        seen[start as usize] = true;
        while let Some(page) = queue.pop_front() {
            visits.push(Visit::Page(page));
            if visits.len() >= max_pages.max(1) {
                break;
            }
            for &next in &site.pages[page as usize].links {
                if !seen[next as usize] {
                    seen[next as usize] = true;
                    queue.push_back(next);
                }
            }
        }
        visits
    }

    /// Generates one session's visit sequence. `day` tags fresh one-off
    /// URLs so they are unique across the whole trace.
    pub fn gen_session<R: Rng + ?Sized>(
        &mut self,
        site: &mut SiteModel,
        rng: &mut R,
        day: usize,
    ) -> Vec<Visit> {
        self.gen_session_from(site, rng, day, None)
    }

    /// Like [`SessionGen::gen_session`], but when `start` is given and the
    /// popular-start coin comes up, the session begins at that page instead
    /// of a fresh Zipf draw — this is how per-client favourite entries
    /// (revisit locality) are injected by the workload generator.
    // Page indices fit u32 and the one-off size expression is positive
    // before it is narrowed and floored at 256.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn gen_session_from<R: Rng + ?Sized>(
        &mut self,
        site: &mut SiteModel,
        rng: &mut R,
        day: usize,
        start: Option<u32>,
    ) -> Vec<Visit> {
        let start_popular = rng.gen_bool(self.cfg.start_popular_frac.clamp(0.0, 1.0));
        let mut current: u32 = if start_popular {
            start.unwrap_or_else(|| self.entry_sampler.sample(rng) as u32)
        } else {
            rng.gen_range(0..site.len()) as u32
        };
        // Regularity 2: top-decile entries head longer sessions.
        let boosted = start_popular && (current as usize) < (site.entry_count() / 10).max(1);

        let mut visits = Vec::with_capacity(6);
        loop {
            visits.push(Visit::Page(current));
            if visits.len() >= self.cfg.max_len.max(1) {
                break;
            }
            let level = site.pages[current as usize].level;
            let mut p_cont =
                self.cfg.base_continue * self.cfg.continue_decay.powi(i32::from(level));
            if boosted {
                p_cont += self.cfg.popular_len_boost;
            }
            if !rng.gen_bool(p_cont.clamp(0.0, 0.999)) {
                break;
            }
            if self.cfg.new_url_prob > 0.0 && rng.gen_bool(self.cfg.new_url_prob) {
                // A one-off document (e.g. a fresh news item): visited once,
                // never linked, never repeated.
                self.fresh_counter += 1;
                let n = self.fresh_counter;
                let url = site.urls.intern(&format!("/day{day}/one-off{n}.html"));
                let size =
                    (self.cfg.fresh_size_log_mean.exp() * (0.5 + rng.gen::<f64>() * 1.5)) as u32;
                visits.push(Visit::Fresh(url, size.max(256)));
                if visits.len() >= self.cfg.max_len.max(1) {
                    break;
                }
                // The walk resumes from the page that embedded the one-off.
                if !rng.gen_bool(p_cont.clamp(0.0, 0.999)) {
                    break;
                }
            }
            if self.cfg.jump_home_prob > 0.0
                && level > 0
                && rng.gen_bool(self.cfg.jump_home_prob.clamp(0.0, 1.0))
            {
                current = self.entry_sampler.sample(rng) as u32;
                continue;
            }
            let links = &site.pages[current as usize].links;
            debug_assert!(!links.is_empty());
            let pick = match &self.link_samplers[level as usize][links.len()] {
                Some(s) => s.sample(rng),
                None => 0,
            };
            current = links[pick];
        }
        visits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(cfg: SessionGenConfig) -> (SiteModel, SessionGen, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let site = SiteModel::generate(
            &SiteConfig {
                entry_pages: 10,
                levels: 3,
                branching: 4,
                ..SiteConfig::default()
            },
            &mut rng,
        );
        let gen = SessionGen::new(cfg, &site);
        (site, gen, rng)
    }

    #[test]
    fn sessions_are_nonempty_and_capped() {
        let cfg = SessionGenConfig {
            max_len: 5,
            ..SessionGenConfig::default()
        };
        let (mut site, mut gen, mut rng) = setup(cfg);
        for day in 0..50 {
            let s = gen.gen_session(&mut site, &mut rng, day);
            assert!(!s.is_empty());
            assert!(s.len() <= 5);
        }
    }

    #[test]
    fn visits_follow_site_links() {
        let cfg = SessionGenConfig {
            new_url_prob: 0.0,
            ..SessionGenConfig::default()
        };
        let (mut site, mut gen, mut rng) = setup(cfg);
        for _ in 0..100 {
            let s = gen.gen_session(&mut site, &mut rng, 0);
            for w in s.windows(2) {
                if let (Visit::Page(a), Visit::Page(b)) = (w[0], w[1]) {
                    assert!(
                        site.pages[a as usize].links.contains(&b),
                        "walk must follow links"
                    );
                }
            }
        }
    }

    #[test]
    fn popular_starts_dominate_when_configured() {
        let cfg = SessionGenConfig {
            start_popular_frac: 1.0,
            ..SessionGenConfig::default()
        };
        let (mut site, mut gen, mut rng) = setup(cfg);
        for _ in 0..200 {
            let s = gen.gen_session(&mut site, &mut rng, 0);
            let Visit::Page(first) = s[0] else {
                panic!("fresh first visit")
            };
            assert_eq!(site.pages[first as usize].level, 0);
        }
    }

    #[test]
    fn fresh_urls_are_unique() {
        let cfg = SessionGenConfig {
            new_url_prob: 0.5,
            ..SessionGenConfig::default()
        };
        let (mut site, mut gen, mut rng) = setup(cfg);
        let mut fresh = std::collections::HashSet::new();
        for day in 0..20 {
            for v in gen.gen_session(&mut site, &mut rng, day) {
                if let Visit::Fresh(u, size) = v {
                    assert!(fresh.insert(u), "fresh URL repeated");
                    assert!(size >= 256);
                }
            }
        }
        assert!(!fresh.is_empty(), "expected some fresh URLs at p=0.5");
    }

    #[test]
    fn no_fresh_urls_when_disabled() {
        let cfg = SessionGenConfig {
            new_url_prob: 0.0,
            ..SessionGenConfig::default()
        };
        let (mut site, mut gen, mut rng) = setup(cfg);
        for day in 0..20 {
            for v in gen.gen_session(&mut site, &mut rng, day) {
                assert!(matches!(v, Visit::Page(_)));
            }
        }
    }

    #[test]
    fn continue_decay_shortens_deep_walks() {
        // With heavy decay, sessions starting at the bottom tier are shorter
        // on average than sessions starting at entries.
        let base = SessionGenConfig {
            new_url_prob: 0.0,
            popular_len_boost: 0.0,
            continue_decay: 0.4,
            max_len: 50,
            ..SessionGenConfig::default()
        };
        let (mut site, _, mut rng) = setup(base.clone());
        let mut top = SessionGen::new(
            SessionGenConfig {
                start_popular_frac: 1.0,
                ..base.clone()
            },
            &site,
        );
        let mut anywhere = SessionGen::new(
            SessionGenConfig {
                start_popular_frac: 0.0,
                ..base
            },
            &site,
        );
        let mean = |g: &mut SessionGen, site: &mut SiteModel, rng: &mut StdRng| {
            let total: usize = (0..500).map(|_| g.gen_session(site, rng, 0).len()).sum();
            total as f64 / 500.0
        };
        let m_top = mean(&mut top, &mut site, &mut rng);
        let m_any = mean(&mut anywhere, &mut site, &mut rng);
        assert!(
            m_top > m_any,
            "entry-started sessions should be longer: {m_top} vs {m_any}"
        );
    }

    #[test]
    fn robot_sessions_sweep_systematically() {
        let (mut site, mut gen, _) = setup(SessionGenConfig::default());
        let visits = gen.gen_robot_session(&site, 0, 30);
        assert_eq!(visits.len(), 30);
        // All visits are pages, no duplicates (BFS marks seen).
        let mut seen = std::collections::HashSet::new();
        for v in &visits {
            match v {
                Visit::Page(p) => assert!(seen.insert(*p), "robot revisited {p}"),
                Visit::Fresh(..) => panic!("robots visit real pages only"),
            }
        }
        // Starts at the requested entry.
        assert_eq!(visits[0], Visit::Page(0));
        // Deterministic: same sweep twice.
        let again = gen.gen_robot_session(&site, 0, 30);
        assert_eq!(visits, again);
        // Different seed entry -> different sweep.
        let other = gen.gen_robot_session(&site, 1, 30);
        assert_ne!(visits, other);
        let _ = &mut site;
    }

    #[test]
    fn robot_sweep_capped_by_site_size() {
        let (site, mut gen, _) = setup(SessionGenConfig::default());
        let visits = gen.gen_robot_session(&site, 0, 1_000_000);
        assert!(visits.len() <= site.len());
        assert!(visits.len() > site.len() / 2, "BFS should reach most pages");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SessionGenConfig::default();
        let run = || {
            let mut rng = StdRng::seed_from_u64(123);
            let mut site = SiteModel::generate(&SiteConfig::default(), &mut rng);
            let mut gen = SessionGen::new(cfg.clone(), &site);
            (0..10)
                .map(|d| gen.gen_session(&mut site, &mut rng, d))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
