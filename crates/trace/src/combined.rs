//! NCSA **Combined** Log Format: Common Log Format plus quoted referrer
//! and user-agent fields —
//!
//! ```text
//! host - - [time] "GET /x HTTP/1.0" 200 123 "http://ref/" "Mozilla/4.0"
//! ```
//!
//! The user-agent field is what makes principled **robot detection**
//! possible (the §2.2 request-rate heuristic is the fallback for plain CLF
//! logs, where nothing better exists). [`trace_from_log`] auto-detects the
//! format, so every CLI command works on either.

use crate::clf::{parse_clf_line, ClfParseError, ClfRecord, ClfStats};
use crate::event::{ClientId, DocKind, Request, Trace};

/// One parsed Combined Log Format line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CombinedRecord {
    /// The Common Log Format core.
    pub clf: ClfRecord,
    /// The `Referer` header (`None` when logged as `-`).
    pub referer: Option<String>,
    /// The `User-Agent` header (`None` when logged as `-`).
    pub user_agent: Option<String>,
}

/// Byte ranges of the `"…"` fields in a line.
fn quoted_spans(line: &str) -> Vec<(usize, usize)> {
    let bytes = line.as_bytes();
    let mut spans = Vec::new();
    let mut start = None;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'"' {
            match start.take() {
                None => start = Some(i + 1),
                Some(s) => spans.push((s, i)),
            }
        }
    }
    spans
}

fn dash_to_none(s: &str) -> Option<String> {
    let s = s.trim();
    if s.is_empty() || s == "-" {
        None
    } else {
        Some(s.to_owned())
    }
}

/// Parses one Combined Log Format line.
pub fn parse_combined_line(line: &str) -> Result<CombinedRecord, ClfParseError> {
    let spans = quoted_spans(line);
    if spans.len() < 3 {
        return Err(ClfParseError::Malformed(
            "combined format needs 3 quoted fields",
        ));
    }
    // The CLF core is everything up to (and including) the first quoted
    // field plus the status/size tokens that follow it.
    let referer_span = spans[spans.len() - 2];
    let agent_span = spans[spans.len() - 1];
    let core_end = referer_span.0 - 1; // position of the referer's opening quote
    let clf = parse_clf_line(&line[..core_end])?;
    Ok(CombinedRecord {
        clf,
        referer: dash_to_none(&line[referer_span.0..referer_span.1]),
        user_agent: dash_to_none(&line[agent_span.0..agent_span.1]),
    })
}

/// Formats a record as a Combined Log Format line.
pub fn format_combined_line(r: &CombinedRecord) -> String {
    format!(
        "{} \"{}\" \"{}\"",
        crate::clf::format_clf_line(&r.clf),
        r.referer.as_deref().unwrap_or("-"),
        r.user_agent.as_deref().unwrap_or("-"),
    )
}

/// Substrings (lowercase) that mark a user agent as a robot. The list
/// covers the crawlers that actually appear in late-90s/2000s logs plus
/// the generic conventions still in use.
const ROBOT_MARKERS: &[&str] = &[
    "bot",
    "crawler",
    "spider",
    "slurp",
    "archiver",
    "wget",
    "curl",
    "libwww",
    "harvest",
    "scooter",
    "teleport",
    "webcopier",
    "fetch",
];

/// True when a user-agent string identifies an automated client.
pub fn is_robot_agent(user_agent: &str) -> bool {
    let ua = user_agent.to_ascii_lowercase();
    ROBOT_MARKERS.iter().any(|m| ua.contains(m))
}

/// A web log's on-disk dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Plain Common Log Format (one quoted field).
    Common,
    /// Combined Log Format (request + referrer + user agent).
    Combined,
}

/// Sniffs the dialect from one (parsable) line.
pub fn detect_format(line: &str) -> Option<LogFormat> {
    if parse_combined_line(line).is_ok() {
        Some(LogFormat::Combined)
    } else if parse_clf_line(line).is_ok() {
        Some(LogFormat::Common)
    } else {
        None
    }
}

/// Parse statistics plus per-client robot classification.
#[derive(Debug, Default, Clone)]
pub struct LogIngest {
    /// Accept/filter/malformed counts.
    pub stats: ClfStats,
    /// The detected dialect (`None` when no line ever parsed).
    pub format: Option<LogFormat>,
    /// `robot_clients[client.index()]` — true when any of the client's
    /// requests carried a robot user agent. Empty for plain CLF logs.
    pub robot_clients: Vec<bool>,
}

/// Builds a [`Trace`] from an iterator of log lines in either dialect.
///
/// The dialect is detected from the first parsable line; subsequent lines
/// are parsed in that dialect (mixed-dialect files count the minority as
/// malformed). Filtering matches [`crate::clf::trace_from_clf`]: successful
/// `GET`s only, times rebased to the first accepted request.
pub fn trace_from_log<I, S>(name: &str, lines: I) -> (Trace, LogIngest)
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let _span = pbppm_obs::span!("trace.parse", name = name);
    let mut ingest = LogIngest::default();
    let mut records: Vec<(ClfRecord, Option<String>)> = Vec::new();
    for line in lines {
        let line = line.as_ref();
        if line.trim().is_empty() {
            continue;
        }
        if ingest.format.is_none() {
            ingest.format = detect_format(line);
        }
        let parsed: Result<(ClfRecord, Option<String>), ClfParseError> = match ingest.format {
            Some(LogFormat::Combined) => parse_combined_line(line).map(|r| (r.clf, r.user_agent)),
            _ => parse_clf_line(line).map(|r| (r, None)),
        };
        match parsed {
            Err(_) => ingest.stats.malformed += 1,
            Ok((r, ua)) => {
                let ok_status = (200..300).contains(&r.status) || r.status == 304;
                if r.method != "GET" || !ok_status {
                    ingest.stats.filtered += 1;
                } else {
                    records.push((r, ua));
                }
            }
        }
    }
    records.sort_by_key(|(r, _)| r.time);
    let epoch = records.first().map_or(0, |(r, _)| r.time);
    let mut trace = Trace::new(name);
    for (r, ua) in &records {
        let url = trace.urls.intern(&r.path);
        let client = ClientId(trace.clients.intern(&r.host).0);
        let idx = client.index();
        if idx >= ingest.robot_clients.len() {
            ingest.robot_clients.resize(idx + 1, false);
        }
        if ua.as_deref().is_some_and(is_robot_agent) {
            ingest.robot_clients[idx] = true;
        }
        trace.requests.push(Request {
            time: u64::try_from((r.time - epoch).max(0)).unwrap_or(0),
            client,
            url,
            size: r.size,
            status: r.status,
            kind: DocKind::from_url(&r.path),
        });
        ingest.stats.accepted += 1;
    }
    if pbppm_obs::ENABLED {
        let reg = pbppm_obs::global();
        reg.counter("trace.parse.accepted", "")
            .add(ingest.stats.accepted as u64);
        reg.counter("trace.parse.filtered", "")
            .add(ingest.stats.filtered as u64);
        reg.counter("trace.parse.malformed", "")
            .add(ingest.stats.malformed as u64);
    }
    pbppm_obs::obs_debug!(
        "parsed log {name:?}: {} accepted, {} filtered, {} malformed",
        ingest.stats.accepted,
        ingest.stats.filtered,
        ingest.stats.malformed
    );
    (trace, ingest)
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMBINED: &str = concat!(
        r#"66.249.66.1 - - [01/Jul/2000:10:00:00 -0700] "GET /index.html HTTP/1.0" 200 5120 "#,
        r#""http://www.example.edu/" "Googlebot/2.1 (+http://www.google.com/bot.html)""#
    );

    #[test]
    fn parses_a_combined_line() {
        let r = parse_combined_line(COMBINED).unwrap();
        assert_eq!(r.clf.host, "66.249.66.1");
        assert_eq!(r.clf.path, "/index.html");
        assert_eq!(r.clf.status, 200);
        assert_eq!(r.clf.size, 5120);
        assert_eq!(r.referer.as_deref(), Some("http://www.example.edu/"));
        assert!(r.user_agent.as_deref().unwrap().starts_with("Googlebot"));
    }

    #[test]
    fn dashes_become_none() {
        let line = r#"h - - [01/Jan/1970:00:00:00 +0000] "GET /a.html HTTP/1.0" 200 10 "-" "-""#;
        let r = parse_combined_line(line).unwrap();
        assert_eq!(r.referer, None);
        assert_eq!(r.user_agent, None);
    }

    #[test]
    fn plain_clf_is_not_combined() {
        let line = r#"h - - [01/Jan/1970:00:00:00 +0000] "GET /a.html HTTP/1.0" 200 10"#;
        assert!(parse_combined_line(line).is_err());
        assert_eq!(detect_format(line), Some(LogFormat::Common));
        assert_eq!(detect_format(COMBINED), Some(LogFormat::Combined));
        assert_eq!(detect_format("garbage"), None);
    }

    #[test]
    fn roundtrip() {
        let rec = CombinedRecord {
            clf: ClfRecord {
                host: "10.0.0.1".into(),
                time: 1_000_000,
                method: "GET".into(),
                path: "/a/b.html".into(),
                status: 200,
                size: 42,
            },
            referer: Some("http://r/".into()),
            user_agent: Some("Mozilla/4.0 (compatible)".into()),
        };
        let line = format_combined_line(&rec);
        assert_eq!(parse_combined_line(&line).unwrap(), rec);
        // None fields round-trip through "-".
        let rec2 = CombinedRecord {
            referer: None,
            user_agent: None,
            ..rec
        };
        assert_eq!(
            parse_combined_line(&format_combined_line(&rec2)).unwrap(),
            rec2
        );
    }

    #[test]
    fn robot_agents_detected() {
        for ua in [
            "Googlebot/2.1",
            "Mozilla/5.0 (compatible; YandexBot/3.0)",
            "msnbot/1.0",
            "Wget/1.12",
            "curl/7.1",
            "Teleport Pro/1.29",
            "ia_archiver",
        ] {
            assert!(is_robot_agent(ua), "{ua}");
        }
        for ua in [
            "Mozilla/4.08 [en] (WinNT; U)",
            "Mozilla/5.0 (Macintosh; Intel Mac OS X)",
            "Opera/9.80",
        ] {
            assert!(!is_robot_agent(ua), "{ua}");
        }
    }

    #[test]
    fn trace_from_log_detects_combined_and_flags_robots() {
        let lines = [
            COMBINED.to_owned(),
            concat!(
                r#"10.0.0.9 - - [01/Jul/2000:10:00:05 -0700] "GET /b.html HTTP/1.0" 200 99 "#,
                r#""-" "Mozilla/4.08 [en]""#
            )
            .to_owned(),
        ];
        let (trace, ingest) = trace_from_log("t", &lines);
        assert_eq!(ingest.format, Some(LogFormat::Combined));
        assert_eq!(ingest.stats.accepted, 2);
        assert_eq!(trace.requests.len(), 2);
        let bot = trace.clients.get("66.249.66.1").unwrap();
        let human = trace.clients.get("10.0.0.9").unwrap();
        assert!(ingest.robot_clients[bot.0 as usize]);
        assert!(!ingest.robot_clients[human.0 as usize]);
    }

    #[test]
    fn trace_from_log_falls_back_to_plain_clf() {
        let lines = [
            r#"h1 - - [01/Jul/1995:00:00:01 -0400] "GET /a.html HTTP/1.0" 200 100"#,
            r#"h1 - - [01/Jul/1995:00:00:02 -0400] "GET /b.html HTTP/1.0" 200 100"#,
        ];
        let (trace, ingest) = trace_from_log("t", lines);
        assert_eq!(ingest.format, Some(LogFormat::Common));
        assert_eq!(trace.requests.len(), 2);
        assert!(ingest.robot_clients.iter().all(|&b| !b));
    }

    #[test]
    fn extra_quotes_inside_agent_do_not_break_parsing() {
        // Some agents contain parens/semicolons; quotes inside fields are
        // not legal in the format, but the parser anchors on the LAST two
        // quoted fields, so a path with spaces... must still fail cleanly.
        let weird = r#"h - - [01/Jan/1970:00:00:00 +0000] "GET /x HTTP/1.0" 200 5 "ref" "A "quoted" agent""#;
        // 5 quote spans: parser takes the last two as referer/agent.
        let r = parse_combined_line(weird);
        // Either parses with a truncated agent or errors; must not panic.
        let _ = r;
    }
}
