//! Proxy-vs-browser client classification (§2.2).
//!
//! HTTP logs identify clients only by address, and an address can be a
//! proxy funneling many users. The paper's simulator assumes: "if an address
//! sends requests more than \[N\] per day, it is considered as a proxy,
//! otherwise it is a browser", and assigns a 16 GB disk cache to proxies and
//! a 1 MB cache to browsers.

use crate::event::{ClientId, Request, DAY_SECS};
use serde::{Deserialize, Serialize};

/// What a client address is assumed to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClientClass {
    /// A single user's browser (small cache).
    Browser,
    /// A proxy aggregating many users (large cache).
    Proxy,
}

/// Classification parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassifyConfig {
    /// Mean requests per active day above which an address is a proxy.
    /// See DESIGN.md §4: the paper's OCR reads "more than 1 per day"; 100
    /// per day is the reconstruction used here.
    pub proxy_requests_per_day: f64,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        Self {
            proxy_requests_per_day: 100.0,
        }
    }
}

/// Classifies every client that appears in `requests`.
///
/// Returns a dense vector indexed by [`ClientId`]; clients that never appear
/// are classified as browsers.
pub fn classify_clients(requests: &[Request], cfg: &ClassifyConfig) -> Vec<ClientClass> {
    let max_client = requests
        .iter()
        .map(|r| r.client.0)
        .max()
        .map_or(0, |m| m + 1) as usize;
    let mut counts = vec![0u64; max_client];
    // Active-day tracking per client: days on which the client appeared.
    let mut first_day = vec![u64::MAX; max_client];
    let mut last_day = vec![0u64; max_client];
    for r in requests {
        let c = r.client.index();
        counts[c] += 1;
        let day = r.time / DAY_SECS;
        first_day[c] = first_day[c].min(day);
        last_day[c] = last_day[c].max(day);
    }
    (0..max_client)
        .map(|c| {
            if counts[c] == 0 {
                return ClientClass::Browser;
            }
            let span_days = (last_day[c] - first_day[c] + 1) as f64;
            if counts[c] as f64 / span_days > cfg.proxy_requests_per_day {
                ClientClass::Proxy
            } else {
                ClientClass::Browser
            }
        })
        .collect()
}

/// Convenience lookup that treats out-of-range ids as browsers.
pub fn class_of(classes: &[ClientClass], client: ClientId) -> ClientClass {
    classes
        .get(client.index())
        .copied()
        .unwrap_or(ClientClass::Browser)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DocKind;
    use pbppm_core::UrlId;

    fn req(time: u64, client: u32) -> Request {
        Request {
            time,
            client: ClientId(client),
            url: UrlId(0),
            size: 1,
            status: 200,
            kind: DocKind::Html,
        }
    }

    #[test]
    fn heavy_client_is_a_proxy() {
        let mut reqs = Vec::new();
        for i in 0..200 {
            reqs.push(req(i, 0)); // 200 requests in one day
        }
        reqs.push(req(0, 1)); // a single request
        let classes = classify_clients(&reqs, &ClassifyConfig::default());
        assert_eq!(classes[0], ClientClass::Proxy);
        assert_eq!(classes[1], ClientClass::Browser);
    }

    #[test]
    fn rate_is_per_active_day() {
        // 150 requests spread over 3 days = 50/day: a browser.
        let mut reqs = Vec::new();
        for d in 0..3u64 {
            for i in 0..50 {
                reqs.push(req(d * DAY_SECS + i, 0));
            }
        }
        let classes = classify_clients(&reqs, &ClassifyConfig::default());
        assert_eq!(classes[0], ClientClass::Browser);
        // Same total in a single day: a proxy.
        let reqs: Vec<Request> = (0..150).map(|i| req(i, 0)).collect();
        let classes = classify_clients(&reqs, &ClassifyConfig::default());
        assert_eq!(classes[0], ClientClass::Proxy);
    }

    #[test]
    fn threshold_is_strict() {
        let cfg = ClassifyConfig {
            proxy_requests_per_day: 2.0,
        };
        let reqs: Vec<Request> = (0..2).map(|i| req(i, 0)).collect();
        assert_eq!(classify_clients(&reqs, &cfg)[0], ClientClass::Browser);
        let reqs: Vec<Request> = (0..3).map(|i| req(i, 0)).collect();
        assert_eq!(classify_clients(&reqs, &cfg)[0], ClientClass::Proxy);
    }

    #[test]
    fn empty_input() {
        assert!(classify_clients(&[], &ClassifyConfig::default()).is_empty());
        assert_eq!(class_of(&[], ClientId(5)), ClientClass::Browser);
    }

    #[test]
    fn unseen_client_ids_are_browsers() {
        let reqs = vec![req(0, 2)];
        let classes = classify_clients(&reqs, &ClassifyConfig::default());
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[0], ClientClass::Browser); // id 0 never appeared
    }
}
