//! Multi-day workload presets producing complete [`Trace`]s.
//!
//! Two presets mirror the paper's two traces:
//!
//! * [`WorkloadConfig::nasa_like`] — NASA Kennedy Space Center, July 1995:
//!   strongly hierarchical surfing, Zipf(≈1.0) entry popularity, most
//!   sessions starting at popular entries, popular entries heading long
//!   sessions, stable day-over-day popularity. This is the trace on which
//!   the paper's PB-PPM wins everything.
//! * [`WorkloadConfig::ucb_like`] — UC Berkeley CS department, July 2000:
//!   the paper singles out its "irregularity": "the popularity grades of the
//!   starting URLs are evenly distributed … and some of the popular entries
//!   may not lead to long sessions". The preset therefore flattens the
//!   popularity skew, lowers the popular-start fraction, removes the
//!   popular-length boost, weakens link skew, and mints more one-off URLs.
//!
//! Requests are emitted raw — HTML page requests followed by their embedded
//! image requests a few seconds later — so the §2.2 sessionizer is exercised
//! end to end, exactly as it would be on a real log.

use crate::event::{ClientId, DocKind, Request, Trace, DAY_SECS};
use crate::site::{SiteConfig, SiteModel};
use crate::synth::{SessionGen, SessionGenConfig, Visit};
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Complete description of a synthetic multi-day workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Workload name (used in trace and table labels).
    pub name: String,
    /// Master RNG seed: equal configs generate identical traces.
    pub seed: u64,
    /// Number of simulated days.
    pub days: usize,
    /// Sessions generated per day.
    pub sessions_per_day: usize,
    /// Size of the client (address) pool.
    pub n_clients: usize,
    /// Zipf exponent of client activity — a heavy head makes a few
    /// addresses behave like proxies.
    pub client_alpha: f64,
    /// Site structure.
    pub site: SiteConfig,
    /// Session walk behaviour.
    pub gen: SessionGenConfig,
    /// Mean think time between page views, seconds (exponential).
    pub think_mean_secs: f64,
    /// Embedded image requests arrive within this many seconds of the page.
    pub embedded_delay_max: u64,
    /// At each day boundary, reshuffle the link preferences of pages at
    /// this tier or deeper (`None` = fully stable site). Models the daily
    /// churn of deep content while the popular top stays stable.
    pub daily_reshuffle_min_level: Option<u8>,
    /// Fraction of deep links retargeted (not merely reordered) at each
    /// day boundary; only meaningful with `daily_reshuffle_min_level`.
    pub daily_retarget_frac: f64,
    /// Per-client revisit locality: each client is assigned this many
    /// favourite entry pages (Zipf-drawn at setup) and starts its popular
    /// sessions among them. `0` disables the mechanism (every session draws
    /// a fresh Zipf start).
    pub client_favorites: usize,
    /// Robot (crawler) sweeps per day. Robots request pages in systematic
    /// link order at machine pace; pairs of crawls share a seed so their
    /// sweeps repeat — the traffic that bloats PPM-family trees (and, via
    /// repetition, LRS) on real logs. `0` disables robots.
    pub robot_crawls_per_day: usize,
    /// Pages per robot sweep.
    pub robot_crawl_pages: usize,
}

impl WorkloadConfig {
    /// The NASA-KSC-like preset (see module docs).
    pub fn nasa_like(seed: u64) -> Self {
        Self {
            name: "nasa-like".to_owned(),
            seed,
            days: 8,
            sessions_per_day: 3000,
            n_clients: 1200,
            client_alpha: 0.4,
            site: SiteConfig {
                entry_pages: 30,
                levels: 4,
                branching: 5,
                links_per_page: 6,
                cross_link_prob: 0.08,
                size_log_level_boost: 0.3,
                ..SiteConfig::default()
            },
            gen: SessionGenConfig {
                start_popular_frac: 0.85,
                entry_alpha: 1.0,
                link_skew: 1.7,
                link_skew_level_decay: 0.85,
                base_continue: 0.80,
                continue_decay: 0.90,
                popular_len_boost: 0.12,
                max_len: 25,
                jump_home_prob: 0.15,
                new_url_prob: 0.04,
                fresh_size_log_mean: 8.5,
            },
            think_mean_secs: 40.0,
            embedded_delay_max: 5,
            daily_reshuffle_min_level: Some(1),
            daily_retarget_frac: 0.15,
            client_favorites: 4,
            robot_crawls_per_day: 2,
            robot_crawl_pages: 100,
        }
    }

    /// The UCB-CS-like preset (see module docs).
    pub fn ucb_like(seed: u64) -> Self {
        Self {
            name: "ucb-like".to_owned(),
            seed,
            days: 6,
            sessions_per_day: 3000,
            n_clients: 1500,
            client_alpha: 0.4,
            site: SiteConfig {
                entry_pages: 80,
                levels: 4,
                branching: 5,
                links_per_page: 7,
                cross_link_prob: 0.25,
                size_log_level_boost: 0.15,
                scattered_home_links: true,
                ..SiteConfig::default()
            },
            gen: SessionGenConfig {
                start_popular_frac: 0.45,
                entry_alpha: 0.6,
                link_skew: 1.6,
                link_skew_level_decay: 0.95,
                base_continue: 0.72,
                continue_decay: 0.92,
                popular_len_boost: 0.0,
                max_len: 25,
                jump_home_prob: 0.0,
                new_url_prob: 0.12,
                fresh_size_log_mean: 8.5,
            },
            think_mean_secs: 40.0,
            embedded_delay_max: 5,
            daily_reshuffle_min_level: None,
            daily_retarget_frac: 0.0,
            client_favorites: 1,
            robot_crawls_per_day: 6,
            robot_crawl_pages: 160,
        }
    }

    /// A tiny fast workload for tests.
    pub fn tiny(seed: u64) -> Self {
        let mut cfg = Self::nasa_like(seed);
        cfg.name = "tiny".to_owned();
        cfg.days = 3;
        cfg.sessions_per_day = 120;
        cfg.n_clients = 30;
        cfg.site.entry_pages = 8;
        cfg.site.levels = 3;
        cfg.site.branching = 3;
        cfg.robot_crawls_per_day = 1;
        cfg.robot_crawl_pages = 40;
        cfg
    }

    /// Generates the trace (deterministic in the config, including `seed`).
    // Client/entry indices fit u32 and the exponential think time is
    // positive before it is narrowed and clamped to [8, 900] seconds.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn generate(&self) -> Trace {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut site = SiteModel::generate(&self.site, &mut rng);
        let mut gen = SessionGen::new(self.gen.clone(), &site);
        let client_sampler = ZipfSampler::new(self.n_clients.max(1), self.client_alpha);

        let mut trace = Trace::new(self.name.clone());
        for c in 0..self.n_clients.max(1) {
            trace.clients.intern(&format!("client{c}"));
        }
        // Robot addresses come after the human pool.
        let robot_base = trace.clients.len() as u32;
        for r in 0..self.robot_crawls_per_day {
            trace.clients.intern(&format!("robot{r}"));
        }

        // Per-client favourite entries: the source of revisit locality.
        let entry_sampler = ZipfSampler::new(self.site.entry_pages.max(1), self.gen.entry_alpha);
        let favorites: Vec<Vec<u32>> = (0..self.n_clients.max(1))
            .map(|_| {
                (0..self.client_favorites)
                    .map(|_| entry_sampler.sample(&mut rng) as u32)
                    .collect()
            })
            .collect();

        for day in 0..self.days {
            if day > 0 {
                if let Some(min_level) = self.daily_reshuffle_min_level {
                    site.reshuffle_deep_links(min_level, self.daily_retarget_frac, &mut rng);
                }
            }
            // Robot sweeps: pairs of crawls share a seed entry, so the same
            // systematic path repeats within the day.
            for r in 0..self.robot_crawls_per_day {
                let client = ClientId(robot_base + r as u32);
                // The first two crawls of each day share a seed (their
                // sweeps repeat — LRS keeps them); the rest sweep from
                // distinct seeds (one-shot paths — only the standard model
                // keeps those). Seeds advance day over day, so new content
                // keeps arriving: the growth driver of real-log PPM trees.
                let group = if r < 2 { 0 } else { r };
                let seed_entry = (day * (self.robot_crawls_per_day + 1) + group) as u32;
                let visits = gen.gen_robot_session(&site, seed_entry, self.robot_crawl_pages);
                let mut t = day as u64 * DAY_SECS + rng.gen_range(0..DAY_SECS / 2);
                for visit in visits {
                    if let Visit::Page(idx) = visit {
                        let page = &site.pages[idx as usize];
                        trace.requests.push(Request {
                            time: t,
                            client,
                            url: page.url,
                            size: page.size,
                            status: 200,
                            kind: DocKind::Html,
                        });
                        t += rng.gen_range(1u64..=3);
                    }
                }
            }
            for _ in 0..self.sessions_per_day {
                let client = ClientId(client_sampler.sample(&mut rng) as u32);
                let mut t = day as u64 * DAY_SECS + rng.gen_range(0..DAY_SECS);
                let start = {
                    let favs = &favorites[client.index()];
                    if favs.is_empty() {
                        None
                    } else {
                        Some(favs[rng.gen_range(0..favs.len())])
                    }
                };
                let visits = gen.gen_session_from(&mut site, &mut rng, day, start);
                for visit in visits {
                    match visit {
                        Visit::Page(idx) => {
                            let page = &site.pages[idx as usize];
                            trace.requests.push(Request {
                                time: t,
                                client,
                                url: page.url,
                                size: page.size,
                                status: 200,
                                kind: DocKind::Html,
                            });
                            for &(iu, isz) in &page.embedded {
                                let dt = rng.gen_range(0..=self.embedded_delay_max);
                                trace.requests.push(Request {
                                    time: t + dt,
                                    client,
                                    url: iu,
                                    size: isz,
                                    status: 200,
                                    kind: DocKind::Image,
                                });
                            }
                        }
                        Visit::Fresh(url, size) => {
                            trace.requests.push(Request {
                                time: t,
                                client,
                                url,
                                size,
                                status: 200,
                                kind: DocKind::Html,
                            });
                        }
                    }
                    // Exponential think time, kept below the 30-minute
                    // session gap so a generated session stays one session.
                    let think = -self.think_mean_secs * (1.0 - rng.gen::<f64>()).ln();
                    t += (think as u64).clamp(8, 900);
                }
            }
        }
        trace.urls = site.urls;
        trace.sort();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{sessionize_trace, SessionStats};
    use crate::zipf::empirical_alpha;

    #[test]
    fn tiny_workload_generates_requests_over_all_days() {
        let t = WorkloadConfig::tiny(1).generate();
        assert!(!t.requests.is_empty());
        // Sessions started late on the last day may spill past midnight.
        assert!(t.days() >= 3 && t.days() <= 4, "days = {}", t.days());
        for d in 0..3 {
            assert!(!t.day(d).is_empty(), "day {d} empty");
        }
        // Sorted by time.
        assert!(t.requests.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadConfig::tiny(7).generate();
        let b = WorkloadConfig::tiny(7).generate();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadConfig::tiny(1).generate();
        let b = WorkloadConfig::tiny(2).generate();
        assert_ne!(a.requests, b.requests);
    }

    #[test]
    fn sessions_match_paper_shape() {
        let t = WorkloadConfig::tiny(3).generate();
        let sessions = sessionize_trace(&t);
        let stats = SessionStats::of(&sessions);
        assert!(stats.count > 50);
        // The paper: >95% of sessions have <= 9 clicks. Heavy clients merge
        // overlapping sessions, so allow a little slack on a tiny workload.
        assert!(
            stats.frac_len_le_9 > 0.80,
            "frac_len_le_9 = {}",
            stats.frac_len_le_9
        );
        assert!(stats.mean_len >= 1.0);
    }

    #[test]
    fn url_popularity_is_skewed() {
        let t = WorkloadConfig::tiny(5).generate();
        let mut counts = vec![0u64; t.urls.len()];
        for r in &t.requests {
            if r.kind == DocKind::Html {
                counts[r.url.index()] += 1;
            }
        }
        let alpha = empirical_alpha(&counts).expect("enough URLs");
        assert!(alpha > 0.4, "popularity should be skewed, alpha={alpha}");
    }

    #[test]
    fn embedded_images_follow_their_pages() {
        let t = WorkloadConfig::tiny(9).generate();
        assert!(t.requests.iter().any(|r| r.kind == DocKind::Image));
    }

    #[test]
    fn robot_traffic_is_emitted_and_attributed_to_robot_clients() {
        let cfg = WorkloadConfig::tiny(4);
        let trace = cfg.generate();
        let robot0 = trace.clients.get("robot0").expect("robot client interned");
        let robot_reqs = trace
            .requests
            .iter()
            .filter(|r| r.client.0 == robot0.0)
            .count();
        assert!(robot_reqs > 0, "robots must produce traffic");
        // Robots request pages back-to-back, so they form long sessions.
        let sessions = crate::session::sessionize(&trace.requests, &Default::default());
        let robot_max = sessions
            .iter()
            .filter(|s| s.client.0 == robot0.0)
            .map(|s| s.len())
            .max()
            .unwrap();
        assert!(
            robot_max >= cfg.robot_crawl_pages / 2,
            "robot sessions are long"
        );
    }

    #[test]
    fn nasa_and_ucb_presets_differ_in_shape() {
        let nasa = WorkloadConfig::nasa_like(0);
        let ucb = WorkloadConfig::ucb_like(0);
        assert!(nasa.gen.start_popular_frac > ucb.gen.start_popular_frac);
        assert!(nasa.gen.link_skew > ucb.gen.link_skew);
        assert!(nasa.gen.new_url_prob < ucb.gen.new_url_prob);
        assert!(nasa.gen.popular_len_boost > ucb.gen.popular_len_boost);
    }
}
