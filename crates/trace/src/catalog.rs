//! The document catalog: what the simulated web server knows about each URL.
//!
//! Prefetching needs a size for every document it considers pushing (both
//! thresholds in §4.1/§5 are size thresholds) — the catalog provides it,
//! built from the observed trace exactly as a server would know its own
//! file sizes.

use crate::event::{DocKind, Request};
use pbppm_core::UrlId;

/// Per-URL document information derived from a trace.
#[derive(Debug, Clone, Default)]
pub struct DocCatalog {
    sizes: Vec<u32>,
    kinds: Vec<Option<DocKind>>,
}

impl DocCatalog {
    /// Builds a catalog from requests. For URLs observed with several sizes
    /// (aborted transfers, `304`s logged with size 0, …) the largest
    /// observed size wins — that is the file's real size.
    pub fn from_requests(requests: &[Request]) -> Self {
        let mut cat = Self::default();
        for r in requests {
            cat.observe(r.url, r.size, r.kind);
        }
        cat
    }

    /// Builds a catalog at the *page-view* level: each view's bytes include
    /// its folded embedded images, so a catalogued "document" is a page
    /// together with its embedded files — exactly the unit the paper
    /// records ("we record them with the HTML files", §2.2) and the unit
    /// the prefetcher pushes.
    pub fn from_sessions(sessions: &[crate::session::Session]) -> Self {
        let mut cat = Self::default();
        cat.observe_sessions(sessions);
        cat
    }

    /// Adds more sessions' views to the catalog.
    pub fn observe_sessions(&mut self, sessions: &[crate::session::Session]) {
        for s in sessions {
            for v in &s.views {
                let size = u32::try_from(v.bytes).unwrap_or(u32::MAX);
                self.observe(v.url, size, DocKind::Html);
            }
        }
    }

    /// Records one observation of a document.
    pub fn observe(&mut self, url: UrlId, size: u32, kind: DocKind) {
        let idx = url.index();
        if idx >= self.sizes.len() {
            self.sizes.resize(idx + 1, 0);
            self.kinds.resize(idx + 1, None);
        }
        self.sizes[idx] = self.sizes[idx].max(size);
        self.kinds[idx].get_or_insert(kind);
    }

    /// Size in bytes of `url`, or 0 if unknown.
    #[inline]
    pub fn size(&self, url: UrlId) -> u32 {
        self.sizes.get(url.index()).copied().unwrap_or(0)
    }

    /// Document kind of `url`, if it has ever been observed.
    pub fn kind(&self, url: UrlId) -> Option<DocKind> {
        self.kinds.get(url.index()).copied().flatten()
    }

    /// Number of catalogued URLs (ids with at least one observation).
    pub fn len(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_some()).count()
    }

    /// True if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ClientId;

    fn req(url: u32, size: u32, kind: DocKind) -> Request {
        Request {
            time: 0,
            client: ClientId(0),
            url: UrlId(url),
            size,
            status: 200,
            kind,
        }
    }

    #[test]
    fn builds_from_requests_keeping_max_size() {
        let cat = DocCatalog::from_requests(&[
            req(0, 100, DocKind::Html),
            req(0, 0, DocKind::Html), // a 304
            req(1, 50, DocKind::Image),
        ]);
        assert_eq!(cat.size(UrlId(0)), 100);
        assert_eq!(cat.size(UrlId(1)), 50);
        assert_eq!(cat.kind(UrlId(0)), Some(DocKind::Html));
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn unknown_urls_are_size_zero() {
        let cat = DocCatalog::default();
        assert_eq!(cat.size(UrlId(7)), 0);
        assert_eq!(cat.kind(UrlId(7)), None);
        assert!(cat.is_empty());
    }

    #[test]
    fn first_kind_wins() {
        let mut cat = DocCatalog::default();
        cat.observe(UrlId(0), 10, DocKind::Html);
        cat.observe(UrlId(0), 10, DocKind::Other);
        assert_eq!(cat.kind(UrlId(0)), Some(DocKind::Html));
    }
}
