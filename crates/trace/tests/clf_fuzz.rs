//! Property/fuzz tests for the Common Log Format parser: arbitrary input
//! must never panic, and valid records must round-trip.

use pbppm_trace::clf::{format_clf_line, parse_clf_line, ClfRecord};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser is total: any string either parses or returns an error,
    /// never panics, never loops.
    #[test]
    fn parser_never_panics(line in ".*") {
        let _ = parse_clf_line(&line);
    }

    /// Same, for inputs that *look* like log lines (higher hit rate on the
    /// interesting branches than fully random strings).
    #[test]
    fn parser_never_panics_on_log_shaped_input(
        host in "[a-z0-9.]{1,20}",
        bracket in "[0-9A-Za-z/: +-]{0,30}",
        method in "[A-Z]{0,8}",
        path in "[ -~]{0,40}",
        status in "[0-9a-z-]{0,6}",
        size in "[0-9-]{0,12}",
    ) {
        let line = format!("{host} - - [{bracket}] \"{method} {path}\" {status} {size}");
        let _ = parse_clf_line(&line);
    }

    /// Every structurally valid record survives format -> parse unchanged.
    #[test]
    fn roundtrip_valid_records(
        host in "[a-z0-9.-]{1,30}",
        time in 0i64..4_000_000_000i64,
        path in "/[!-~&&[^\"\\\\]]{0,50}",
        status in 100u16..600,
        size in 0u32..100_000_000,
    ) {
        let rec = ClfRecord {
            host,
            time,
            method: "GET".to_owned(),
            path,
            status,
            size,
        };
        let line = format_clf_line(&rec);
        let parsed = parse_clf_line(&line).expect("formatted line must parse");
        prop_assert_eq!(parsed, rec);
    }
}
