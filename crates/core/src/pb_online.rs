//! An **online** popularity-based PPM: sliding-window retraining.
//!
//! The paper's simulator trains offline ("the models are dynamically
//! maintained and updated based on historical data during a period of
//! time") and notes that "the popularities of different URLs can be ranked
//! by a server dynamically from time to time" (§3.1). This module is that
//! production shape: the model keeps the most recent `window` sessions,
//! and every `rebuild_every` sessions re-ranks popularity over the window
//! and rebuilds the (small — that is the whole point) PB-PPM tree from it.
//!
//! Rebuilding a PB-PPM tree is cheap precisely because of the paper's
//! design: the tree is orders of magnitude smaller than a standard PPM
//! forest, so periodic reconstruction costs milliseconds, while the
//! sliding window keeps the popularity ranking fresh — the stale-grade
//! problem an incremental update of a two-pass model would otherwise have.

use crate::interner::UrlId;
use crate::pb::{PbConfig, PbPpm};
use crate::predictor::{ModelKind, PredictUsage, Prediction, Predictor};
use crate::stats::ModelStats;
use std::collections::VecDeque;

/// Sliding-window online PB-PPM.
pub struct OnlinePbPpm {
    pub(crate) cfg: PbConfig,
    pub(crate) window: VecDeque<Vec<UrlId>>,
    pub(crate) max_window: usize,
    pub(crate) rebuild_every: usize,
    pub(crate) since_rebuild: usize,
    pub(crate) rebuilds: u64,
    pub(crate) model: Option<PbPpm>,
    /// Worker count for rebuilds (`0` = auto via `PBPPM_THREADS`/available
    /// parallelism). Runtime tuning, not model state: deliberately absent
    /// from [`OnlinePbSnapshot`] — rebuilds are deterministic at every
    /// thread count, so this can never change what the model predicts.
    pub(crate) threads: usize,
}

impl OnlinePbPpm {
    /// Creates an online model keeping the last `max_window` sessions and
    /// rebuilding every `rebuild_every` new sessions (both at least 1).
    pub fn new(cfg: PbConfig, max_window: usize, rebuild_every: usize) -> Self {
        Self {
            cfg,
            window: VecDeque::new(),
            max_window: max_window.max(1),
            rebuild_every: rebuild_every.max(1),
            since_rebuild: 0,
            rebuilds: 0,
            model: None,
            threads: 0,
        }
    }

    /// Sets the rebuild worker count (`0` = auto). Rebuilds are
    /// bit-identical at every thread count, so this only changes rebuild
    /// wall time.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// How many times the inner model has been rebuilt.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Sessions currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The current inner model, if one has been built yet.
    pub fn current(&self) -> Option<&PbPpm> {
        self.model.as_ref()
    }

    /// Sessions trained since the last rebuild (0 right after a rebuild).
    pub fn since_rebuild(&self) -> usize {
        self.since_rebuild
    }

    /// Serializes the complete online state: configuration, the sliding
    /// window, the rebuild schedule counters, and the current inner model
    /// (if one has been built). Restoring via
    /// [`OnlinePbPpm::from_snapshot`] resumes exactly where the snapshot
    /// was taken — including a model that is stale with respect to the
    /// window (sessions trained since the last rebuild).
    pub fn to_snapshot(&self) -> OnlinePbSnapshot {
        OnlinePbSnapshot {
            cfg: self.cfg,
            window: self.window.iter().cloned().collect(),
            max_window: self.max_window,
            rebuild_every: self.rebuild_every,
            since_rebuild: self.since_rebuild,
            rebuilds: self.rebuilds,
            model: self.model.as_ref().map(PbPpm::to_snapshot),
        }
    }

    /// Restores an online model from a snapshot.
    pub fn from_snapshot(snap: &OnlinePbSnapshot) -> Result<Self, crate::tree::SnapshotError> {
        let model = match &snap.model {
            Some(m) => Some(PbPpm::from_snapshot(m)?),
            None => None,
        };
        Ok(Self {
            cfg: snap.cfg,
            window: snap.window.iter().cloned().collect(),
            max_window: snap.max_window.max(1),
            rebuild_every: snap.rebuild_every.max(1),
            since_rebuild: snap.since_rebuild,
            rebuilds: snap.rebuilds,
            model,
            threads: 0,
        })
    }

    /// Rebuilds the inner model from the window now.
    ///
    /// Popularity counting and tree training both run on
    /// [`OnlinePbPpm::set_threads`] workers (deterministic: the rebuilt
    /// model is bit-identical at every thread count). Wall time lands in
    /// the `serve.rebuild_ms` histogram so a loadgen p999 spike can be
    /// attributed to a rebuild stall.
    pub fn rebuild(&mut self) {
        let started = std::time::Instant::now();
        let threads = self.threads;
        // One contiguous slice of the window: the partition/merge training
        // path wants `&[Vec<UrlId>]`, and a VecDeque that has wrapped is
        // two slices. Rearranging is O(window) like the rebuild itself.
        let sessions: &[Vec<UrlId>] = self.window.make_contiguous();
        let counts = crate::popularity::PopularityBuilder::count_sessions(sessions, threads);
        let mut model = PbPpm::new(counts.build(), self.cfg);
        model.train_sessions(sessions, threads);
        model.finalize();
        self.model = Some(model);
        self.since_rebuild = 0;
        self.rebuilds += 1;
        if pbppm_obs::ENABLED {
            let ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            let reg = pbppm_obs::global();
            reg.histogram("serve.rebuild_ms", "").observe(ms);
            reg.counter("serve.rebuilds", "").add(1);
            reg.gauge("serve.last_rebuild_ms", "").set(ms);
        }
        // The inner finalize audited the fresh PbPpm; this pass also covers
        // the online wrapper's own window/schedule invariants.
        crate::verify::runtime_audit(
            &crate::verify::ModelRef::OnlinePb(self),
            "OnlinePbPpm::rebuild",
        );
    }
}

/// A serializable image of an [`OnlinePbPpm`]: window, schedule counters,
/// and the current inner model.
#[derive(Debug, Clone)]
pub struct OnlinePbSnapshot {
    /// Construction parameters for the inner PB-PPM.
    pub cfg: PbConfig,
    /// The sliding window of recent sessions, oldest first.
    pub window: Vec<Vec<UrlId>>,
    /// Window capacity in sessions.
    pub max_window: usize,
    /// Rebuild cadence in sessions.
    pub rebuild_every: usize,
    /// Sessions trained since the last rebuild.
    pub since_rebuild: usize,
    /// Lifetime rebuild counter.
    pub rebuilds: u64,
    /// The current inner model, if one was built.
    pub model: Option<crate::pb::PbSnapshot>,
}

impl Predictor for OnlinePbPpm {
    fn kind(&self) -> ModelKind {
        ModelKind::Pb
    }

    fn train_session(&mut self, session: &[UrlId]) {
        if session.is_empty() {
            return;
        }
        if self.window.len() == self.max_window {
            self.window.pop_front();
        }
        self.window.push_back(session.to_vec());
        self.since_rebuild += 1;
        if self.since_rebuild >= self.rebuild_every {
            self.rebuild();
        }
    }

    /// Rebuilds so the model reflects every session seen so far. A no-op
    /// when nothing was trained since the last rebuild: repeating a rebuild
    /// over the unchanged window would waste the work and inflate
    /// [`OnlinePbPpm::rebuild_count`], and on a never-trained model it would
    /// install a useless empty tree. Unlike the offline models, the online
    /// model may keep training after this.
    fn finalize(&mut self) {
        // `since_rebuild == 0` holds in exactly two states: right after a
        // rebuild (model is up to date) or before any training (window is
        // empty) — both are no-ops.
        if self.since_rebuild == 0 {
            return;
        }
        self.rebuild();
    }

    fn predict_ro(&self, context: &[UrlId], out: &mut Vec<Prediction>, usage: &mut PredictUsage) {
        out.clear();
        if let Some(model) = &self.model {
            model.predict_ro(context, out, usage);
        }
    }

    fn apply_usage(&mut self, usage: &PredictUsage) {
        if let Some(model) = &mut self.model {
            model.apply_usage(usage);
        }
    }

    fn frozen(&self) -> Option<&crate::frozen::FrozenTree> {
        self.model.as_ref().and_then(PbPpm::frozen)
    }

    fn match_strategy(&self) -> Option<crate::frozen::MatchStrategy> {
        self.model.as_ref().and_then(Predictor::match_strategy)
    }

    fn node_count(&self) -> usize {
        self.model.as_ref().map_or(0, |m| m.node_count())
    }

    fn stats(&self) -> ModelStats {
        self.model
            .as_ref()
            .map_or_else(ModelStats::default, |m| m.stats())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::cast_sign_loss)] // tiny fixture indices

    use super::*;
    use crate::popularity::PopularityTable;
    use crate::prune::PruneConfig;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    fn cfg() -> PbConfig {
        PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        }
    }

    #[test]
    fn empty_model_predicts_nothing() {
        let mut m = OnlinePbPpm::new(cfg(), 100, 10);
        let mut out = vec![Prediction::new(u(0), 1.0)];
        m.predict(&[u(0)], &mut out);
        assert!(out.is_empty());
        assert_eq!(m.node_count(), 0);
    }

    #[test]
    fn rebuilds_on_schedule() {
        let mut m = OnlinePbPpm::new(cfg(), 100, 3);
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(0), u(1)]);
        assert_eq!(m.rebuild_count(), 0);
        m.train_session(&[u(0), u(1)]);
        assert_eq!(m.rebuild_count(), 1);
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out[0].url, u(1));
    }

    #[test]
    fn matches_offline_model_when_window_covers_everything() {
        let sessions: Vec<Vec<UrlId>> =
            (0..20).map(|i| vec![u(0), u(1 + (i % 3) as u32)]).collect();
        let mut online = OnlinePbPpm::new(cfg(), 1000, 1000);
        let mut counts = PopularityTable::builder();
        for s in &sessions {
            online.train_session(s);
            for &x in s {
                counts.record(x);
            }
        }
        online.finalize();
        let mut offline = PbPpm::new(counts.build(), cfg());
        for s in &sessions {
            offline.train_session(s);
        }
        offline.finalize();

        assert_eq!(online.node_count(), offline.node_count());
        let mut a = Vec::new();
        let mut b = Vec::new();
        online.predict(&[u(0)], &mut a);
        offline.predict(&[u(0)], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn window_forgets_old_behaviour() {
        // First 30 sessions: 0 -> 1. Next 30 (window size): 0 -> 2.
        let mut m = OnlinePbPpm::new(cfg(), 30, 5);
        for _ in 0..30 {
            m.train_session(&[u(0), u(1)]);
        }
        for _ in 0..30 {
            m.train_session(&[u(0), u(2)]);
        }
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out[0].url, u(2));
        assert!(
            out.iter().all(|p| p.url != u(1)),
            "pre-window behaviour must be forgotten: {out:?}"
        );
    }

    #[test]
    fn node_count_stays_bounded_by_the_window() {
        let mut m = OnlinePbPpm::new(cfg(), 20, 10);
        // A stream with ever-new URLs: an offline model would grow forever.
        let mut sizes = Vec::new();
        for i in 0..200u32 {
            m.train_session(&[u(0), u(100 + i), u(200 + i)]);
            if i % 10 == 9 {
                sizes.push(m.node_count());
            }
        }
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().skip(2).min().unwrap();
        assert!(
            max <= 2 * min.max(1),
            "window should bound growth: sizes {sizes:?}"
        );
    }

    #[test]
    fn finalize_on_empty_model_is_a_noop() {
        let mut m = OnlinePbPpm::new(cfg(), 10, 3);
        m.finalize();
        assert_eq!(m.rebuild_count(), 0, "nothing to build from");
        assert!(m.current().is_none(), "no empty model installed");
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn finalize_right_after_a_scheduled_rebuild_does_not_rebuild_again() {
        let mut m = OnlinePbPpm::new(cfg(), 100, 2);
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(0), u(1)]); // triggers the scheduled rebuild
        assert_eq!(m.rebuild_count(), 1);
        m.finalize();
        m.finalize();
        assert_eq!(m.rebuild_count(), 1, "window unchanged: no-op");
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out[0].url, u(1), "the existing model keeps serving");
    }

    #[test]
    fn finalize_still_rebuilds_pending_sessions() {
        let mut m = OnlinePbPpm::new(cfg(), 100, 1000);
        m.train_session(&[u(0), u(1)]);
        assert_eq!(m.rebuild_count(), 0);
        m.finalize();
        assert_eq!(m.rebuild_count(), 1);
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out[0].url, u(1));
    }

    #[test]
    fn snapshot_roundtrip_preserves_state_and_predictions() {
        let mut m = OnlinePbPpm::new(cfg(), 50, 4);
        for i in 0..10u32 {
            m.train_session(&[u(0), u(1 + i % 3), u(4)]);
        }
        // Deliberately leave the model stale: 10 % 4 = 2 pending sessions.
        assert_eq!(m.since_rebuild(), 2);
        let back = OnlinePbPpm::from_snapshot(&m.to_snapshot()).unwrap();
        assert_eq!(back.rebuild_count(), m.rebuild_count());
        assert_eq!(back.window_len(), m.window_len());
        assert_eq!(back.since_rebuild(), m.since_rebuild());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        let mut ua = PredictUsage::default();
        let mut ub = PredictUsage::default();
        m.predict_ro(&[u(0)], &mut a, &mut ua);
        back.predict_ro(&[u(0)], &mut b, &mut ub);
        assert_eq!(a, b, "restored model serves identical predictions");
        // Snapshots compact the tree arena, so byte sizes may shrink;
        // every structural stat must survive the round-trip.
        let (mut sa, mut sb) = (m.stats(), back.stats());
        assert!(sb.memory_bytes <= sa.memory_bytes);
        sa.memory_bytes = 0;
        sb.memory_bytes = 0;
        assert_eq!(sa, sb);

        // Training resumes seamlessly: two more sessions complete the
        // rebuild schedule on both instances alike.
        let mut m2 = back;
        m2.train_session(&[u(0), u(1)]);
        m2.train_session(&[u(0), u(1)]);
        assert_eq!(m2.rebuild_count(), m.rebuild_count() + 1);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let m = OnlinePbPpm::new(cfg(), 10, 2);
        let back = OnlinePbPpm::from_snapshot(&m.to_snapshot()).unwrap();
        assert!(back.current().is_none());
        assert_eq!(back.window_len(), 0);
        assert_eq!(back.rebuild_count(), 0);
    }

    #[test]
    fn training_after_finalize_is_allowed() {
        let mut m = OnlinePbPpm::new(cfg(), 10, 1);
        m.train_session(&[u(0), u(1)]);
        m.finalize();
        m.train_session(&[u(0), u(1)]);
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert!(!out.is_empty());
    }
}
