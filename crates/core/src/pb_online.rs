//! An **online** popularity-based PPM: sliding-window retraining.
//!
//! The paper's simulator trains offline ("the models are dynamically
//! maintained and updated based on historical data during a period of
//! time") and notes that "the popularities of different URLs can be ranked
//! by a server dynamically from time to time" (§3.1). This module is that
//! production shape: the model keeps the most recent `window` sessions,
//! and every `rebuild_every` sessions re-ranks popularity over the window
//! and rebuilds the (small — that is the whole point) PB-PPM tree from it.
//!
//! Rebuilding a PB-PPM tree is cheap precisely because of the paper's
//! design: the tree is orders of magnitude smaller than a standard PPM
//! forest, so periodic reconstruction costs milliseconds, while the
//! sliding window keeps the popularity ranking fresh — the stale-grade
//! problem an incremental update of a two-pass model would otherwise have.

use crate::interner::UrlId;
use crate::pb::{PbConfig, PbPpm};
use crate::popularity::PopularityTable;
use crate::predictor::{ModelKind, PredictUsage, Prediction, Predictor};
use crate::stats::ModelStats;
use std::collections::VecDeque;

/// Sliding-window online PB-PPM.
pub struct OnlinePbPpm {
    cfg: PbConfig,
    window: VecDeque<Vec<UrlId>>,
    max_window: usize,
    rebuild_every: usize,
    since_rebuild: usize,
    rebuilds: u64,
    model: Option<PbPpm>,
}

impl OnlinePbPpm {
    /// Creates an online model keeping the last `max_window` sessions and
    /// rebuilding every `rebuild_every` new sessions (both at least 1).
    pub fn new(cfg: PbConfig, max_window: usize, rebuild_every: usize) -> Self {
        Self {
            cfg,
            window: VecDeque::new(),
            max_window: max_window.max(1),
            rebuild_every: rebuild_every.max(1),
            since_rebuild: 0,
            rebuilds: 0,
            model: None,
        }
    }

    /// How many times the inner model has been rebuilt.
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Sessions currently in the window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The current inner model, if one has been built yet.
    pub fn current(&self) -> Option<&PbPpm> {
        self.model.as_ref()
    }

    /// Rebuilds the inner model from the window now.
    pub fn rebuild(&mut self) {
        let mut counts = PopularityTable::builder();
        for s in &self.window {
            for &u in s {
                counts.record(u);
            }
        }
        let mut model = PbPpm::new(counts.build(), self.cfg);
        for s in &self.window {
            model.train_session(s);
        }
        model.finalize();
        self.model = Some(model);
        self.since_rebuild = 0;
        self.rebuilds += 1;
    }
}

impl Predictor for OnlinePbPpm {
    fn kind(&self) -> ModelKind {
        ModelKind::Pb
    }

    fn train_session(&mut self, session: &[UrlId]) {
        if session.is_empty() {
            return;
        }
        if self.window.len() == self.max_window {
            self.window.pop_front();
        }
        self.window.push_back(session.to_vec());
        self.since_rebuild += 1;
        if self.since_rebuild >= self.rebuild_every {
            self.rebuild();
        }
    }

    /// Forces a rebuild so the model reflects every session seen so far.
    /// Unlike the offline models, the online model may keep training after
    /// this.
    fn finalize(&mut self) {
        self.rebuild();
    }

    fn predict_ro(&self, context: &[UrlId], out: &mut Vec<Prediction>, usage: &mut PredictUsage) {
        out.clear();
        if let Some(model) = &self.model {
            model.predict_ro(context, out, usage);
        }
    }

    fn apply_usage(&mut self, usage: &PredictUsage) {
        if let Some(model) = &mut self.model {
            model.apply_usage(usage);
        }
    }

    fn node_count(&self) -> usize {
        self.model.as_ref().map_or(0, |m| m.node_count())
    }

    fn stats(&self) -> ModelStats {
        self.model
            .as_ref()
            .map_or_else(ModelStats::default, |m| m.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::PruneConfig;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    fn cfg() -> PbConfig {
        PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        }
    }

    #[test]
    fn empty_model_predicts_nothing() {
        let mut m = OnlinePbPpm::new(cfg(), 100, 10);
        let mut out = vec![Prediction::new(u(0), 1.0)];
        m.predict(&[u(0)], &mut out);
        assert!(out.is_empty());
        assert_eq!(m.node_count(), 0);
    }

    #[test]
    fn rebuilds_on_schedule() {
        let mut m = OnlinePbPpm::new(cfg(), 100, 3);
        m.train_session(&[u(0), u(1)]);
        m.train_session(&[u(0), u(1)]);
        assert_eq!(m.rebuild_count(), 0);
        m.train_session(&[u(0), u(1)]);
        assert_eq!(m.rebuild_count(), 1);
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out[0].url, u(1));
    }

    #[test]
    fn matches_offline_model_when_window_covers_everything() {
        let sessions: Vec<Vec<UrlId>> =
            (0..20).map(|i| vec![u(0), u(1 + (i % 3) as u32)]).collect();
        let mut online = OnlinePbPpm::new(cfg(), 1000, 1000);
        let mut counts = PopularityTable::builder();
        for s in &sessions {
            online.train_session(s);
            for &x in s {
                counts.record(x);
            }
        }
        online.finalize();
        let mut offline = PbPpm::new(counts.build(), cfg());
        for s in &sessions {
            offline.train_session(s);
        }
        offline.finalize();

        assert_eq!(online.node_count(), offline.node_count());
        let mut a = Vec::new();
        let mut b = Vec::new();
        online.predict(&[u(0)], &mut a);
        offline.predict(&[u(0)], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn window_forgets_old_behaviour() {
        // First 30 sessions: 0 -> 1. Next 30 (window size): 0 -> 2.
        let mut m = OnlinePbPpm::new(cfg(), 30, 5);
        for _ in 0..30 {
            m.train_session(&[u(0), u(1)]);
        }
        for _ in 0..30 {
            m.train_session(&[u(0), u(2)]);
        }
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert_eq!(out[0].url, u(2));
        assert!(
            out.iter().all(|p| p.url != u(1)),
            "pre-window behaviour must be forgotten: {out:?}"
        );
    }

    #[test]
    fn node_count_stays_bounded_by_the_window() {
        let mut m = OnlinePbPpm::new(cfg(), 20, 10);
        // A stream with ever-new URLs: an offline model would grow forever.
        let mut sizes = Vec::new();
        for i in 0..200u32 {
            m.train_session(&[u(0), u(100 + i), u(200 + i)]);
            if i % 10 == 9 {
                sizes.push(m.node_count());
            }
        }
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().skip(2).min().unwrap();
        assert!(
            max <= 2 * min.max(1),
            "window should bound growth: sizes {sizes:?}"
        );
    }

    #[test]
    fn training_after_finalize_is_allowed() {
        let mut m = OnlinePbPpm::new(cfg(), 10, 1);
        m.train_session(&[u(0), u(1)]);
        m.finalize();
        m.train_session(&[u(0), u(1)]);
        let mut out = Vec::new();
        m.predict(&[u(0)], &mut out);
        assert!(!out.is_empty());
    }
}
