//! URL popularity: relative popularity, log₁₀ grades, and trackers.
//!
//! §3.1 of the paper defines the **relative popularity** of a URL as the
//! number of accesses to it divided by the number of accesses to the most
//! popular URL of the trace, and buckets it into four **grades** on a log₁₀
//! scale:
//!
//! | Grade | Relative popularity `rp` |
//! |-------|--------------------------|
//! | 3     | `rp ≥ 0.1`               |
//! | 2     | `0.01 ≤ rp < 0.1`        |
//! | 1     | `0.001 ≤ rp < 0.01`      |
//! | 0     | `rp < 0.001`             |
//!
//! Grades drive every popularity-based decision in [`crate::pb`]: branch
//! heights, the root-creation rule, and special links.

use crate::interner::UrlId;
use serde::{Deserialize, Serialize};

/// A popularity grade on the paper's four-step log₁₀ scale.
///
/// Ordering follows popularity: `Grade::G0 < Grade::G3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Grade {
    /// Relative popularity below 0.1%.
    G0 = 0,
    /// Relative popularity in `[0.1%, 1%)`.
    G1 = 1,
    /// Relative popularity in `[1%, 10%)`.
    G2 = 2,
    /// Relative popularity of at least 10%.
    G3 = 3,
}

impl Grade {
    /// All grades, least popular first.
    pub const ALL: [Grade; 4] = [Grade::G0, Grade::G1, Grade::G2, Grade::G3];

    /// The highest grade on the scale.
    pub const MAX: Grade = Grade::G3;

    /// Buckets a relative popularity in `[0, 1]` into a grade.
    #[inline]
    pub fn from_relative_popularity(rp: f64) -> Grade {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&rp), "rp out of range: {rp}");
        if rp >= 0.1 {
            Grade::G3
        } else if rp >= 0.01 {
            Grade::G2
        } else if rp >= 0.001 {
            Grade::G1
        } else {
            Grade::G0
        }
    }

    /// The grade as a small integer in `0..=3`.
    #[inline]
    pub fn level(self) -> u8 {
        self as u8
    }

    /// Builds a grade from an integer level, clamping to `0..=3`.
    #[inline]
    pub fn from_level(level: u8) -> Grade {
        match level {
            0 => Grade::G0,
            1 => Grade::G1,
            2 => Grade::G2,
            _ => Grade::G3,
        }
    }
}

/// Accumulates access counts during the first training pass.
///
/// Build one with [`PopularityTable::builder`], feed it every request of the
/// training window via [`PopularityBuilder::record`], and call
/// [`PopularityBuilder::build`] to freeze it into a [`PopularityTable`].
#[derive(Debug, Default, Clone)]
pub struct PopularityBuilder {
    counts: Vec<u64>,
}

impl PopularityBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access to `url`.
    #[inline]
    pub fn record(&mut self, url: UrlId) {
        self.record_n(url, 1);
    }

    /// Records `n` accesses to `url`.
    #[inline]
    pub fn record_n(&mut self, url: UrlId, n: u64) {
        let idx = url.index();
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
    }

    /// Access count recorded so far for `url`.
    pub fn count(&self, url: UrlId) -> u64 {
        self.counts.get(url.index()).copied().unwrap_or(0)
    }

    /// Adds every count accumulated by `other` into `self`.
    ///
    /// Counting is a commutative sum, so partial builders filled by
    /// parallel training workers merge into the same table regardless of
    /// partitioning or merge order.
    pub fn merge(&mut self, other: &PopularityBuilder) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (acc, &c) in self.counts.iter_mut().zip(&other.counts) {
            *acc += c;
        }
    }

    /// Freezes the counts into an immutable table of grades.
    pub fn build(self) -> PopularityTable {
        PopularityTable::from_counts(self.counts)
    }

    /// Counts every URL of every session, in parallel. Counting is a
    /// commutative sum over independent requests, so the result is
    /// identical at every thread count (`0` = auto via
    /// `PBPPM_THREADS`/available parallelism) and equal to recording each
    /// session sequentially.
    pub fn count_sessions<S: AsRef<[UrlId]> + Sync>(sessions: &[S], threads: usize) -> Self {
        let threads = crate::parallel::resolve_threads(threads).min(sessions.len().max(1));
        let count_range = |r: &std::ops::Range<usize>| {
            let mut b = PopularityBuilder::new();
            for s in &sessions[r.clone()] {
                for &url in s.as_ref() {
                    b.record(url);
                }
            }
            b
        };
        if threads <= 1 {
            return count_range(&(0..sessions.len()));
        }
        let ranges = crate::parallel::partition_ranges(sessions.len(), threads);
        let partials = crate::parallel::parallel_map_with(&ranges, threads, count_range);
        let mut acc = PopularityBuilder::new();
        for p in &partials {
            acc.merge(p);
        }
        acc
    }
}

/// Immutable per-URL popularity information for one training window.
///
/// URLs never seen during training get [`Grade::G0`] and zero relative
/// popularity — the paper's trees give unknown documents the least
/// consideration, which this default preserves.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PopularityTable {
    counts: Vec<u64>,
    grades: Vec<Grade>,
    max_count: u64,
    total: u64,
}

impl PopularityTable {
    /// Starts accumulating counts for a new table.
    pub fn builder() -> PopularityBuilder {
        PopularityBuilder::new()
    }

    /// Builds the table directly from a dense per-URL count vector
    /// (`counts[url.index()]` = number of accesses).
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let max_count = counts.iter().copied().max().unwrap_or(0);
        let total = counts.iter().sum();
        let grades = counts
            .iter()
            .map(|&c| {
                if max_count == 0 {
                    Grade::G0
                } else {
                    Grade::from_relative_popularity(c as f64 / max_count as f64)
                }
            })
            .collect();
        Self {
            counts,
            grades,
            max_count,
            total,
        }
    }

    /// Assembles a table from already-separated parts **without** rederiving
    /// grades from the counts. This deliberately permits internally
    /// inconsistent tables — it is the forgery hook the audit crate's
    /// adversarial harness uses to exercise the grade-consistency check in
    /// [`crate::verify`]. Not part of the public API.
    #[doc(hidden)]
    pub fn from_parts_unchecked(
        counts: Vec<u64>,
        grades: Vec<Grade>,
        max_count: u64,
        total: u64,
    ) -> Self {
        Self {
            counts,
            grades,
            max_count,
            total,
        }
    }

    /// The popularity grade of `url` ([`Grade::G0`] if never seen).
    #[inline]
    pub fn grade(&self, url: UrlId) -> Grade {
        self.grades.get(url.index()).copied().unwrap_or(Grade::G0)
    }

    /// Relative popularity of `url`: its access count over the most popular
    /// URL's access count. Zero if never seen or if the table is empty.
    pub fn relative_popularity(&self, url: UrlId) -> f64 {
        if self.max_count == 0 {
            return 0.0;
        }
        self.count(url) as f64 / self.max_count as f64
    }

    /// Raw access count for `url` in the training window.
    #[inline]
    pub fn count(&self, url: UrlId) -> u64 {
        self.counts.get(url.index()).copied().unwrap_or(0)
    }

    /// The dense per-URL count vector (`counts()[url.index()]` accesses).
    ///
    /// Grades, `max_count`, and `total` are all derived from it, so the
    /// vector is the table's complete serializable state:
    /// `PopularityTable::from_counts(t.counts().to_vec())` reproduces `t`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Access count of the most popular URL.
    pub fn max_count(&self) -> u64 {
        self.max_count
    }

    /// Number of URLs with a nonzero count.
    pub fn distinct_urls(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// How many URLs fall into each grade (index = grade level).
    ///
    /// Only URLs with at least one access are counted: an all-zero tail of
    /// ids that were interned but never requested would otherwise inflate G0.
    pub fn grade_histogram(&self) -> [usize; 4] {
        let mut hist = [0usize; 4];
        for (i, &g) in self.grades.iter().enumerate() {
            if self.counts[i] > 0 {
                hist[g.level() as usize] += 1;
            }
        }
        hist
    }

    /// True when `url` counts as a "popular document" in the paper's Figure 2
    /// sense (grade 2 or 3 — the top two log₁₀ buckets).
    #[inline]
    pub fn is_popular(&self, url: UrlId) -> bool {
        self.grade(url) >= Grade::G2
    }
}

/// An *online* popularity tracker: re-grades URLs periodically.
///
/// The paper notes that "the popularities of different URLs can be ranked by
/// a server dynamically from time to time" (§3.1). `PopularityTracker` is that
/// dynamic variant: it accumulates counts continuously and refreshes its
/// frozen [`PopularityTable`] snapshot every `refresh_every` recorded
/// accesses. The PB-PPM ablation benches compare it against the two-pass
/// offline table.
#[derive(Debug, Clone)]
pub struct PopularityTracker {
    builder: PopularityBuilder,
    snapshot: PopularityTable,
    since_refresh: u64,
    refresh_every: u64,
}

impl PopularityTracker {
    /// Creates a tracker that refreshes its grade snapshot every
    /// `refresh_every` recorded accesses (minimum 1).
    pub fn new(refresh_every: u64) -> Self {
        Self {
            builder: PopularityBuilder::new(),
            snapshot: PopularityTable::default(),
            since_refresh: 0,
            refresh_every: refresh_every.max(1),
        }
    }

    /// Records an access and refreshes the snapshot when due.
    pub fn record(&mut self, url: UrlId) {
        self.builder.record(url);
        self.since_refresh += 1;
        if self.since_refresh >= self.refresh_every {
            self.refresh();
        }
    }

    /// Forces a snapshot refresh now.
    pub fn refresh(&mut self) {
        self.snapshot = self.builder.clone().build();
        self.since_refresh = 0;
    }

    /// The current frozen snapshot (possibly stale by up to
    /// `refresh_every - 1` accesses).
    pub fn snapshot(&self) -> &PopularityTable {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(counts: &[u64]) -> PopularityTable {
        PopularityTable::from_counts(counts.to_vec())
    }

    #[test]
    fn grade_boundaries_match_the_log10_scale() {
        assert_eq!(Grade::from_relative_popularity(1.0), Grade::G3);
        assert_eq!(Grade::from_relative_popularity(0.1), Grade::G3);
        assert_eq!(Grade::from_relative_popularity(0.0999), Grade::G2);
        assert_eq!(Grade::from_relative_popularity(0.01), Grade::G2);
        assert_eq!(Grade::from_relative_popularity(0.00999), Grade::G1);
        assert_eq!(Grade::from_relative_popularity(0.001), Grade::G1);
        assert_eq!(Grade::from_relative_popularity(0.000999), Grade::G0);
        assert_eq!(Grade::from_relative_popularity(0.0), Grade::G0);
    }

    #[test]
    fn grades_order_by_popularity() {
        assert!(Grade::G3 > Grade::G2);
        assert!(Grade::G2 > Grade::G1);
        assert!(Grade::G1 > Grade::G0);
    }

    #[test]
    fn level_roundtrip() {
        for g in Grade::ALL {
            assert_eq!(Grade::from_level(g.level()), g);
        }
        assert_eq!(Grade::from_level(200), Grade::G3); // clamped
    }

    #[test]
    fn table_grades_relative_to_the_most_popular_url() {
        // counts: 1000, 100, 10, 1, 0 -> rp 1.0, 0.1, 0.01, 0.001, 0
        let t = table(&[1000, 100, 10, 1, 0]);
        assert_eq!(t.grade(UrlId(0)), Grade::G3);
        assert_eq!(t.grade(UrlId(1)), Grade::G3); // 0.1 is inclusive
        assert_eq!(t.grade(UrlId(2)), Grade::G2);
        assert_eq!(t.grade(UrlId(3)), Grade::G1);
        assert_eq!(t.grade(UrlId(4)), Grade::G0);
        assert_eq!(t.grade(UrlId(5)), Grade::G0); // never interned
    }

    #[test]
    fn builder_accumulates() {
        let mut b = PopularityBuilder::new();
        b.record(UrlId(2));
        b.record_n(UrlId(2), 4);
        b.record(UrlId(0));
        assert_eq!(b.count(UrlId(2)), 5);
        let t = b.build();
        assert_eq!(t.count(UrlId(2)), 5);
        assert_eq!(t.count(UrlId(1)), 0);
        assert_eq!(t.total_accesses(), 6);
        assert_eq!(t.max_count(), 5);
    }

    #[test]
    fn builder_merge_sums_counts() {
        let mut a = PopularityBuilder::new();
        a.record_n(UrlId(0), 3);
        a.record(UrlId(2));
        let mut b = PopularityBuilder::new();
        b.record_n(UrlId(2), 4);
        b.record(UrlId(5)); // longer than `a`: merge must grow it
        a.merge(&b);
        assert_eq!(a.count(UrlId(0)), 3);
        assert_eq!(a.count(UrlId(2)), 5);
        assert_eq!(a.count(UrlId(5)), 1);
        // Merging an empty builder is a no-op.
        a.merge(&PopularityBuilder::new());
        assert_eq!(a.count(UrlId(5)), 1);
    }

    #[test]
    fn empty_table_is_all_g0() {
        let t = PopularityTable::default();
        assert_eq!(t.grade(UrlId(0)), Grade::G0);
        assert_eq!(t.relative_popularity(UrlId(0)), 0.0);
        assert_eq!(t.grade_histogram(), [0, 0, 0, 0]);
    }

    #[test]
    fn histogram_ignores_zero_count_urls() {
        let t = table(&[100, 10, 0, 0]);
        let h = t.grade_histogram();
        assert_eq!(h.iter().sum::<usize>(), 2);
        assert_eq!(h[3], 2); // 100 -> G3; 10 -> rp 0.1 -> G3
    }

    #[test]
    fn popular_means_grade_two_or_higher() {
        let t = table(&[1000, 20, 2, 1]);
        assert!(t.is_popular(UrlId(0)));
        assert!(t.is_popular(UrlId(1))); // rp 0.02 -> G2
        assert!(!t.is_popular(UrlId(2))); // rp 0.002 -> G1
        assert!(!t.is_popular(UrlId(3)));
    }

    #[test]
    fn tracker_refreshes_on_schedule() {
        let mut tr = PopularityTracker::new(3);
        tr.record(UrlId(0));
        tr.record(UrlId(0));
        // Not refreshed yet: snapshot still empty.
        assert_eq!(tr.snapshot().grade(UrlId(0)), Grade::G0);
        tr.record(UrlId(0));
        // Third access triggered a refresh.
        assert_eq!(tr.snapshot().grade(UrlId(0)), Grade::G3);
    }

    #[test]
    fn tracker_manual_refresh() {
        let mut tr = PopularityTracker::new(1_000_000);
        tr.record(UrlId(1));
        assert_eq!(tr.snapshot().grade(UrlId(1)), Grade::G0);
        tr.refresh();
        assert_eq!(tr.snapshot().grade(UrlId(1)), Grade::G3);
    }
}
