//! The arena-allocated Markov prediction trie shared by all PPM models.
//!
//! A prediction *tree* in the paper is really a **forest**: a set of branches,
//! each rooted at a URL, where a node at depth `d` represents "this URL was
//! seen after the `d-1` URLs on the path above it". Every node carries the
//! number of times it was traversed during training; a child's count divided
//! by its parent's count is the conditional probability used for prefetch
//! decisions.
//!
//! ## Representation
//!
//! Nodes live in one contiguous `Vec<Node>` and refer to each other through
//! 4-byte [`NodeId`]s — no per-node allocation, no pointer chasing beyond one
//! index, and trivially compactable after pruning. Children are kept in a
//! `Vec<(UrlId, NodeId)>` sorted by URL id: web-graph fan-out is almost
//! always small, and a branchless binary search over a sorted inline vector
//! beats a per-node hash map in both space and time.
//!
//! ## Bookkeeping for the paper's metrics
//!
//! * `count` — training traversals (drives probabilities and pruning).
//! * `used` — set when the node participates in a prediction (matched context
//!   or emitted prediction); drives the *path utilization* metric of Fig. 2.
//! * `link_dup` — marks PB-PPM's duplicated popular nodes, which count
//!   toward storage but are not root-to-leaf surfing paths.

use crate::fxhash::FxHashMap;
use crate::interner::UrlId;
use serde::{Deserialize, Serialize};

/// Index of a node in a [`Tree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Sentinel for "no node" (used as the parent of roots).
    pub const NONE: NodeId = NodeId(u32::MAX);

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }

    /// True if this id is the [`NodeId::NONE`] sentinel.
    #[inline]
    pub fn is_none(self) -> bool {
        self == Self::NONE
    }
}

/// One URL node of the prediction trie.
#[derive(Debug, Clone)]
pub struct Node {
    /// The URL this node stands for.
    pub url: UrlId,
    /// Number of training traversals through this node.
    pub count: u64,
    /// Parent node, or [`NodeId::NONE`] for branch roots.
    pub parent: NodeId,
    /// Depth within the branch; roots have depth 1.
    pub depth: u8,
    /// Children sorted by URL id.
    pub children: Vec<(UrlId, NodeId)>,
    /// Dead nodes are skipped everywhere and reclaimed by [`Tree::compact`].
    pub alive: bool,
    /// Set when the node participated in a prediction.
    pub used: bool,
    /// True for PB-PPM duplicated popular nodes attached by special links.
    pub link_dup: bool,
}

/// The prediction forest: arena of nodes plus the root index.
#[derive(Debug, Clone, Default)]
pub struct Tree {
    pub(crate) nodes: Vec<Node>,
    pub(crate) roots: FxHashMap<UrlId, NodeId>,
    /// Special links: branch root → duplicated popular nodes (PB-PPM rule 3).
    pub(crate) links: FxHashMap<NodeId, Vec<NodeId>>,
    dead: usize,
    /// Rolling hash of each node's root-to-node path, parallel to `nodes`.
    ///
    /// Empty (or shorter than `nodes`) until [`Tree::rebuild_path_hashes`]
    /// runs; any structural change after that leaves it stale, which
    /// [`Tree::has_path_hashes`] detects by the length mismatch. The hash
    /// chains back the `ContextIndex` fingerprint fast path.
    path_hashes: Vec<u64>,
}

impl Tree {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty forest with arena capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    #[inline]
    fn alloc(&mut self, url: UrlId, parent: NodeId, depth: u8, link_dup: bool) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("tree arena overflow"));
        self.nodes.push(Node {
            url,
            count: 0,
            parent,
            depth,
            children: Vec::new(),
            alive: true,
            used: false,
            link_dup,
        });
        id
    }

    /// Immutable access to a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// The root for `url`, if one exists and is alive.
    pub fn root(&self, url: UrlId) -> Option<NodeId> {
        self.roots
            .get(&url)
            .copied()
            .filter(|&id| self.node(id).alive)
    }

    /// The root for `url`, creating it (with count 0) if absent.
    pub fn root_or_insert(&mut self, url: UrlId) -> NodeId {
        if let Some(&id) = self.roots.get(&url) {
            if self.nodes[id.index()].alive {
                return id;
            }
            // A pruned root can be resurrected by later training.
            self.nodes[id.index()].alive = true;
            self.dead -= 1;
            return id;
        }
        let id = self.alloc(url, NodeId::NONE, 1, false);
        self.roots.insert(url, id);
        id
    }

    /// The alive child of `parent` for `url`, if any.
    #[inline]
    pub fn child(&self, parent: NodeId, url: UrlId) -> Option<NodeId> {
        let kids = &self.node(parent).children;
        kids.binary_search_by_key(&url, |&(u, _)| u)
            .ok()
            .map(|i| kids[i].1)
            .filter(|&id| self.node(id).alive)
    }

    /// The child of `parent` for `url`, creating it if absent.
    ///
    /// The child's depth is `parent.depth + 1`, saturating at `u8::MAX`.
    pub fn child_or_insert(&mut self, parent: NodeId, url: UrlId) -> NodeId {
        let pos = {
            let kids = &self.nodes[parent.index()].children;
            match kids.binary_search_by_key(&url, |&(u, _)| u) {
                Ok(i) => {
                    let id = kids[i].1;
                    if !self.nodes[id.index()].alive {
                        self.nodes[id.index()].alive = true;
                        self.dead -= 1;
                    }
                    return id;
                }
                Err(i) => i,
            }
        };
        let depth = self.nodes[parent.index()].depth.saturating_add(1);
        let id = self.alloc(url, parent, depth, false);
        self.nodes[parent.index()].children.insert(pos, (url, id));
        id
    }

    /// Increments the training count of a node.
    #[inline]
    pub fn bump(&mut self, id: NodeId) {
        self.nodes[id.index()].count += 1;
    }

    /// Adds (or bumps) a PB-PPM special link from branch root `root` to a
    /// duplicated node for `url`, returning the duplicate's id.
    pub fn link_or_insert(&mut self, root: NodeId, url: UrlId) -> NodeId {
        debug_assert!(self.node(root).parent.is_none(), "links hang off roots");
        if let Some(targets) = self.links.get(&root) {
            for &t in targets {
                if self.nodes[t.index()].url == url {
                    if !self.nodes[t.index()].alive {
                        self.nodes[t.index()].alive = true;
                        self.dead -= 1;
                    }
                    return t;
                }
            }
        }
        let id = self.alloc(url, root, 2, true);
        self.links.entry(root).or_default().push(id);
        id
    }

    /// The alive special-link duplicates hanging off `root`.
    pub fn links_of(&self, root: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.links
            .get(&root)
            .into_iter()
            .flatten()
            .copied()
            .filter(|&id| self.node(id).alive)
    }

    /// Follows `path` from its first element (which must be a root),
    /// returning the deepest node if the whole path matches alive nodes.
    pub fn descend(&self, path: &[UrlId]) -> Option<NodeId> {
        let (&first, rest) = path.split_first()?;
        let mut cur = self.root(first)?;
        for &url in rest {
            cur = self.child(cur, url)?;
        }
        Some(cur)
    }

    /// Marks a node as having participated in a prediction.
    #[inline]
    pub fn mark_used(&mut self, id: NodeId) {
        self.nodes[id.index()].used = true;
    }

    /// Flags every alive child of `id` as used — the expansion of a
    /// [`crate::PredictUsage::used_child_rows`] record.
    pub fn mark_children_used(&mut self, id: NodeId) {
        for i in 0..self.nodes[id.index()].children.len() {
            let (_, child) = self.nodes[id.index()].children[i];
            if self.nodes[child.index()].alive {
                self.nodes[child.index()].used = true;
            }
        }
    }

    /// Kills `id` and its whole subtree (tombstoned until [`Tree::compact`]).
    pub fn kill_subtree(&mut self, id: NodeId) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if self.nodes[n.index()].alive {
                self.nodes[n.index()].alive = false;
                self.dead += 1;
            }
            stack.extend(self.nodes[n.index()].children.iter().map(|&(_, c)| c));
            if let Some(targets) = self.links.get(&n) {
                stack.extend(targets.iter().copied());
            }
        }
    }

    /// Number of alive nodes — the paper's "space in number of nodes"
    /// (branch nodes plus PB's duplicated link nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.dead
    }

    /// Total arena slots, including tombstoned nodes.
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of parent→child edges between alive nodes: every alive
    /// non-root node contributes exactly one (duplicated link nodes hang
    /// off their root the same way, so they count too).
    pub fn edge_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive && !n.parent.is_none())
            .count()
    }

    /// Number of alive PB-PPM special-link (duplicated popular) nodes.
    pub fn link_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive && n.link_dup).count()
    }

    /// Number of alive branch roots.
    pub fn root_count(&self) -> usize {
        self.roots
            .values()
            .filter(|&&id| self.node(id).alive)
            .count()
    }

    /// Iterates over the ids of all alive nodes.
    #[allow(clippy::cast_possible_truncation)] // the arena refuses to grow past u32 ids
    pub fn iter_alive(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Iterates over alive root node ids.
    pub fn iter_roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.roots
            .values()
            .copied()
            .filter(move |&id| self.node(id).alive)
    }

    /// Depth of the deepest alive node (0 for an empty forest).
    pub fn max_depth(&self) -> u8 {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.depth)
            .max()
            .unwrap_or(0)
    }

    /// Alive children of `id` (url, child id, child count).
    pub fn children_of(&self, id: NodeId) -> impl Iterator<Item = (UrlId, NodeId, u64)> + '_ {
        self.node(id)
            .children
            .iter()
            .filter(|&&(_, c)| self.node(c).alive)
            .map(|&(u, c)| (u, c, self.node(c).count))
    }

    /// True if `id` has no alive children (an "ending leaf" in the paper's
    /// path terminology). Link duplicates are excluded from path accounting.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        let n = self.node(id);
        n.alive && !n.link_dup && n.children.iter().all(|&(_, c)| !self.node(c).alive)
    }

    /// Counts `(total_paths, used_paths)` where a *path* is a root-to-leaf
    /// URL sequence and a path is *used* if its leaf participated in a
    /// prediction (Fig. 2, right).
    pub fn path_usage(&self) -> (usize, usize) {
        let mut total = 0;
        let mut used = 0;
        for id in self.iter_alive() {
            if self.is_leaf(id) {
                total += 1;
                if self.node(id).used {
                    used += 1;
                }
            }
        }
        (total, used)
    }

    /// Rebuilds the arena without tombstoned nodes, remapping all ids.
    ///
    /// Call after pruning to release memory; all previously returned
    /// [`NodeId`]s are invalidated.
    pub fn compact(&mut self) {
        if self.dead == 0 {
            return;
        }
        let mut remap: Vec<NodeId> = vec![NodeId::NONE; self.nodes.len()];
        let mut new_nodes: Vec<Node> = Vec::with_capacity(self.node_count());
        for (i, n) in self.nodes.iter().enumerate() {
            if n.alive {
                // Compaction only shrinks, so the new index fits u32 too.
                #[allow(clippy::cast_possible_truncation)]
                let new_id = NodeId(new_nodes.len() as u32);
                remap[i] = new_id;
                new_nodes.push(n.clone());
            }
        }
        for n in &mut new_nodes {
            if !n.parent.is_none() {
                n.parent = remap[n.parent.index()];
            }
            n.children.retain(|&(_, c)| !remap[c.index()].is_none());
            for entry in &mut n.children {
                entry.1 = remap[entry.1.index()];
            }
        }
        let mut new_roots = FxHashMap::default();
        for (&url, &id) in &self.roots {
            let nid = remap[id.index()];
            if !nid.is_none() {
                new_roots.insert(url, nid);
            }
        }
        let mut new_links: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        for (&root, targets) in &self.links {
            let nroot = remap[root.index()];
            if nroot.is_none() {
                continue;
            }
            let mapped: Vec<NodeId> = targets
                .iter()
                .map(|&t| remap[t.index()])
                .filter(|t| !t.is_none())
                .collect();
            if !mapped.is_empty() {
                new_links.insert(nroot, mapped);
            }
        }
        self.nodes = new_nodes;
        self.roots = new_roots;
        self.links = new_links;
        self.dead = 0;
        // Ids were remapped: drop the hash chain rather than leave it lying.
        self.path_hashes.clear();
        // A heavy prune can shrink the forest by orders of magnitude; do
        // not keep the arena or the freshly rebuilt maps at the training
        // high-water capacity.
        self.nodes.shrink_to_fit();
        for n in &mut self.nodes {
            n.children.shrink_to_fit();
        }
        self.roots.shrink_to_fit();
        self.links.shrink_to_fit();
        for targets in self.links.values_mut() {
            targets.shrink_to_fit();
        }
        self.path_hashes.shrink_to_fit();
    }

    /// Compiles the forest into its read-only [`FrozenTree`] form.
    ///
    /// Compacts first (freezing only makes sense for a finalized model), so
    /// frozen index `i` equals [`NodeId`]`(i)` afterwards — usage records
    /// and fingerprint-index ids stay valid against the pointer arena.
    /// `pop` supplies PB-PPM's popularity grades; baselines pass `None`.
    ///
    /// [`FrozenTree`]: crate::frozen::FrozenTree
    pub fn freeze(
        &mut self,
        pop: Option<&crate::popularity::PopularityTable>,
    ) -> crate::frozen::FrozenTree {
        self.compact();
        crate::frozen::FrozenTree::from_tree(self, pop)
    }

    /// Serializes the forest into a self-contained [`TreeSnapshot`].
    ///
    /// Tombstoned nodes are dropped (the snapshot is taken from a compacted
    /// copy), so loading it back yields an arena with `node_count ==
    /// arena_len`.
    pub fn to_snapshot(&self) -> TreeSnapshot {
        let mut compacted = self.clone();
        compacted.compact();
        let nodes = compacted
            .nodes
            .iter()
            .map(|n| NodeSnapshot {
                url: n.url.0,
                count: n.count,
                parent: n.parent.0,
                depth: n.depth,
                children: n.children.iter().map(|&(u, c)| (u.0, c.0)).collect(),
                link_dup: n.link_dup,
            })
            .collect();
        let mut roots: Vec<(u32, u32)> = compacted
            .roots
            .iter()
            .map(|(&u, &id)| (u.0, id.0))
            .collect();
        roots.sort_unstable();
        let mut links: Vec<(u32, Vec<u32>)> = compacted
            .links
            .iter()
            .map(|(&root, targets)| (root.0, targets.iter().map(|t| t.0).collect()))
            .collect();
        links.sort_unstable();
        TreeSnapshot {
            nodes,
            roots,
            links,
        }
    }

    /// Reconstructs a forest from a snapshot, validating its internal
    /// references.
    pub fn from_snapshot(snap: &TreeSnapshot) -> Result<Tree, SnapshotError> {
        let n = snap.nodes.len();
        let check = |id: u32| -> Result<NodeId, SnapshotError> {
            if (id as usize) < n {
                Ok(NodeId(id))
            } else {
                Err(SnapshotError::BadNodeId(id))
            }
        };
        let mut nodes = Vec::with_capacity(n);
        for s in &snap.nodes {
            let parent = if s.parent == u32::MAX {
                NodeId::NONE
            } else {
                check(s.parent)?
            };
            let mut children = Vec::with_capacity(s.children.len());
            for &(u, c) in &s.children {
                children.push((UrlId(u), check(c)?));
            }
            if !children.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(SnapshotError::UnsortedChildren);
            }
            nodes.push(Node {
                url: UrlId(s.url),
                count: s.count,
                parent,
                depth: s.depth,
                children,
                alive: true,
                used: false,
                link_dup: s.link_dup,
            });
        }
        // Reject parent cycles before anything walks parent chains: a
        // malformed (but checksum-valid) snapshot with `a.parent == b` and
        // `b.parent == a` would otherwise send `rebuild_path_hashes` and
        // every ancestor walk into an infinite loop. Each node is visited
        // once across all chain walks, so this is O(n).
        {
            // 0 = unvisited, 1 = on the current chain, 2 = known acyclic.
            let mut state = vec![0u8; n];
            let mut chain: Vec<usize> = Vec::new();
            for start in 0..n {
                let mut cur = start;
                loop {
                    match state[cur] {
                        2 => break,
                        1 => {
                            return Err(SnapshotError::ParentCycle(
                                u32::try_from(cur).unwrap_or(u32::MAX),
                            ))
                        }
                        _ => {}
                    }
                    state[cur] = 1;
                    chain.push(cur);
                    let parent = nodes[cur].parent;
                    if parent.is_none() {
                        break;
                    }
                    cur = parent.index();
                }
                for &i in &chain {
                    state[i] = 2;
                }
                chain.clear();
            }
        }
        let mut roots = FxHashMap::default();
        for &(u, id) in &snap.roots {
            let id = check(id)?;
            if nodes[id.index()].url != UrlId(u) || !nodes[id.index()].parent.is_none() {
                return Err(SnapshotError::BadRoot(u));
            }
            roots.insert(UrlId(u), id);
        }
        let mut links: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
        for (root, targets) in &snap.links {
            let root = check(*root)?;
            let mapped: Result<Vec<NodeId>, _> = targets.iter().map(|&t| check(t)).collect();
            links.insert(root, mapped?);
        }
        Ok(Tree {
            nodes,
            roots,
            links,
            dead: 0,
            path_hashes: Vec::new(),
        })
    }

    /// Approximate resident bytes of the arena (for storage reporting):
    /// the node vector, every child vector, and the root/link maps — all
    /// at *capacity*, so memory parked by a prune shows up until
    /// [`Tree::compact`] releases it.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(UrlId, NodeId)>())
                .sum::<usize>()
            + self.roots.capacity() * std::mem::size_of::<(UrlId, NodeId)>()
            + self.links.capacity() * std::mem::size_of::<(NodeId, Vec<NodeId>)>()
            + self
                .links
                .values()
                .map(|t| t.capacity() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }

    /// Recomputes the per-node rolling path-hash chain.
    ///
    /// `P(root) = h(url)`, `P(child) = P(parent)·B + h(url)` with wrapping
    /// arithmetic ([`crate::context_index::HASH_BASE`]), covering dead slots
    /// too so ids index directly. The pass is a single forward sweep in the
    /// common case (the arena allocates parents before children); a chain
    /// walk handles out-of-order parents (possible only for hand-crafted
    /// snapshots), so the result never depends on arena order.
    pub fn rebuild_path_hashes(&mut self) {
        use crate::context_index::{hash_url, HASH_BASE};
        let n = self.nodes.len();
        let mut hashes = vec![0u64; n];
        let mut done = vec![false; n];
        let mut chain: Vec<usize> = Vec::new();
        for start in 0..n {
            // Ascend to the nearest already-hashed ancestor (or a root)...
            let mut cur = start;
            while !done[cur] {
                chain.push(cur);
                let parent = self.nodes[cur].parent;
                if parent.is_none() {
                    break;
                }
                cur = parent.index();
            }
            // ...then fill hashes back down the collected chain.
            while let Some(i) = chain.pop() {
                let h = hash_url(self.nodes[i].url);
                let parent = self.nodes[i].parent;
                hashes[i] = if parent.is_none() {
                    h
                } else {
                    hashes[parent.index()]
                        .wrapping_mul(HASH_BASE)
                        .wrapping_add(h)
                };
                done[i] = true;
            }
        }
        self.path_hashes = hashes;
    }

    /// True when the path-hash chain is in sync with the arena.
    #[inline]
    pub fn has_path_hashes(&self) -> bool {
        self.path_hashes.len() == self.nodes.len()
    }

    /// The rolling hash of `id`'s root-to-node path.
    ///
    /// Only valid after [`Tree::rebuild_path_hashes`] with no structural
    /// change since (see [`Tree::has_path_hashes`]).
    #[inline]
    pub fn path_hash(&self, id: NodeId) -> u64 {
        debug_assert!(self.has_path_hashes(), "path hashes are stale");
        self.path_hashes[id.index()]
    }

    /// Longest-suffix context match (the paper's "longest matching method").
    ///
    /// Tries suffixes of `context` from the longest (at most `max_order`
    /// URLs) down to the single current URL, returning the deepest node of
    /// the first suffix that matches a stored branch in full.
    pub fn longest_match(&self, context: &[UrlId], max_order: usize) -> Option<NodeId> {
        let len = context.len();
        let longest = len.min(max_order).min(usize::from(u8::MAX));
        for k in (1..=longest).rev() {
            if let Some(node) = self.descend(&context[len - k..]) {
                return Some(node);
            }
        }
        None
    }

    /// Like [`Tree::longest_match`], but skips matches that cannot produce a
    /// prediction: the returned node is the deepest suffix match that has at
    /// least one alive child. This implements the models' fallback from a
    /// matched *leaf* (nothing below it to predict) to a shorter context.
    pub fn longest_predictive_match(&self, context: &[UrlId], max_order: usize) -> Option<NodeId> {
        let len = context.len();
        let longest = len.min(max_order).min(usize::from(u8::MAX));
        for k in (1..=longest).rev() {
            if let Some(node) = self.descend(&context[len - k..]) {
                if self.children_of(node).next().is_some() {
                    return Some(node);
                }
            }
        }
        None
    }

    /// Marks `id` and all its ancestors as used for a prediction.
    pub fn mark_path_used(&mut self, id: NodeId) {
        let mut cur = id;
        loop {
            let node = &mut self.nodes[cur.index()];
            node.used = true;
            if node.parent.is_none() {
                break;
            }
            cur = node.parent;
        }
    }

    /// Merges a partial forest built by a training worker into `self` by
    /// structural count-sum: every alive donor node is located (or created)
    /// at the same structural position here and its count added.
    ///
    /// **Determinism contract.** Training decisions in every model depend
    /// only on the session being inserted (plus, for PB-PPM, the frozen
    /// popularity table) — never on what the tree already contains — so a
    /// donor trained on a *contiguous* partition of the session list
    /// allocates its arena in exactly the order sequential training would
    /// first encounter those nodes. Donor ids are replayed ascending, and
    /// nodes already present in `self` are reused rather than re-allocated;
    /// merging donors **in partition order** therefore reproduces the
    /// sequential arena allocation order exactly, and with it byte-identical
    /// [`Tree::to_snapshot`] output. This is what lets `train_sessions` be
    /// property-tested bit-identical to a sequential `train_session` loop at
    /// every thread count.
    ///
    /// Requires the donor's arena to allocate parents before children (true
    /// for any tree built through the insertion API; checked in debug
    /// builds). Dead donor nodes are skipped.
    pub fn merge_from(&mut self, donor: &Tree) {
        let mut remap: Vec<NodeId> = vec![NodeId::NONE; donor.nodes.len()];
        for (i, n) in donor.nodes.iter().enumerate() {
            if !n.alive {
                continue;
            }
            let here = if n.parent.is_none() {
                self.root_or_insert(n.url)
            } else {
                debug_assert!(
                    n.parent.index() < i,
                    "donor arena must allocate parents before children"
                );
                let parent = remap[n.parent.index()];
                if parent.is_none() {
                    continue; // parent was dead: the whole subtree is dropped
                }
                if n.link_dup {
                    self.link_or_insert(parent, n.url)
                } else {
                    self.child_or_insert(parent, n.url)
                }
            };
            remap[i] = here;
            self.nodes[here.index()].count += n.count;
            self.nodes[here.index()].used |= n.used;
        }
    }

    /// Inserts the URL sequence `path` starting a branch at `path[0]`,
    /// bumping every node's count, limited to `max_height` nodes.
    ///
    /// This is the shared "add one branch" primitive used by the standard
    /// and LRS models; PB-PPM has its own insertion logic.
    pub fn insert_path(&mut self, path: &[UrlId], max_height: usize) {
        let mut iter = path.iter().take(max_height);
        let Some(&first) = iter.next() else { return };
        let mut cur = self.root_or_insert(first);
        self.bump(cur);
        for &url in iter {
            cur = self.child_or_insert(cur, url);
            self.bump(cur);
        }
    }
}

/// A serializable, self-contained image of a [`Tree`] (alive nodes only).
///
/// Produced by [`Tree::to_snapshot`]; consumed by [`Tree::from_snapshot`].
/// The `used` flags are deliberately not persisted — path-utilization
/// bookkeeping belongs to one evaluation run, not to the model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeSnapshot {
    /// All nodes of the (compacted) arena.
    pub nodes: Vec<NodeSnapshot>,
    /// `(url, node id)` root registrations, sorted by URL id.
    pub roots: Vec<(u32, u32)>,
    /// `(root id, target ids)` special-link lists, sorted by root id.
    pub links: Vec<(u32, Vec<u32>)>,
}

impl TreeSnapshot {
    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// One node of a [`TreeSnapshot`], with raw `u32` references.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Interned URL id.
    pub url: u32,
    /// Training traversal count.
    pub count: u64,
    /// Parent node id, or `u32::MAX` for roots.
    pub parent: u32,
    /// Depth within the branch (roots are 1).
    pub depth: u8,
    /// `(url, child id)` entries sorted by URL id.
    pub children: Vec<(u32, u32)>,
    /// True for PB-PPM duplicated popular nodes.
    pub link_dup: bool,
}

/// Why a [`TreeSnapshot`] failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A node reference points outside the snapshot's arena.
    BadNodeId(u32),
    /// A root entry does not point at a parentless node with that URL.
    BadRoot(u32),
    /// A node's child list is not strictly sorted by URL id.
    UnsortedChildren,
    /// A node's parent chain loops back on itself instead of reaching a
    /// root; the payload would hang every ancestor walk.
    ParentCycle(u32),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadNodeId(id) => write!(f, "snapshot references unknown node {id}"),
            SnapshotError::BadRoot(url) => write!(f, "invalid root entry for url {url}"),
            SnapshotError::UnsortedChildren => write!(f, "child list not sorted"),
            SnapshotError::ParentCycle(id) => {
                write!(f, "parent chain of node {id} is cyclic")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn empty_tree() {
        let t = Tree::new();
        assert_eq!(t.node_count(), 0);
        assert_eq!(t.root_count(), 0);
        assert_eq!(t.max_depth(), 0);
        assert_eq!(t.path_usage(), (0, 0));
    }

    #[test]
    fn insert_path_builds_a_chain() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.root_count(), 1);
        assert_eq!(t.max_depth(), 3);
        let n = t.descend(&[u(1), u(2), u(3)]).unwrap();
        assert_eq!(t.node(n).count, 1);
        assert_eq!(t.node(n).depth, 3);
    }

    #[test]
    fn insert_path_respects_max_height() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3), u(4)], 2);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.max_depth(), 2);
        assert!(t.descend(&[u(1), u(2), u(3)]).is_none());
    }

    #[test]
    fn counts_accumulate_on_reinsert() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        t.insert_path(&[u(1), u(3)], usize::MAX);
        t.insert_path(&[u(1), u(2)], usize::MAX);
        let root = t.root(u(1)).unwrap();
        assert_eq!(t.node(root).count, 3);
        let b = t.descend(&[u(1), u(2)]).unwrap();
        assert_eq!(t.node(b).count, 2);
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn children_stay_sorted() {
        let mut t = Tree::new();
        let r = t.root_or_insert(u(0));
        for id in [5u32, 1, 9, 3, 7] {
            t.child_or_insert(r, u(id));
        }
        let urls: Vec<u32> = t.node(r).children.iter().map(|&(url, _)| url.0).collect();
        assert_eq!(urls, vec![1, 3, 5, 7, 9]);
        // binary-search lookup works for each
        for id in [1u32, 3, 5, 7, 9] {
            assert!(t.child(r, u(id)).is_some());
        }
        assert!(t.child(r, u(2)).is_none());
    }

    #[test]
    fn descend_requires_full_match() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        assert!(t.descend(&[u(1), u(2)]).is_some());
        assert!(t.descend(&[u(2), u(3)]).is_none()); // 2 is not a root
        assert!(t.descend(&[]).is_none());
    }

    #[test]
    fn kill_subtree_tombstones_descendants() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        t.insert_path(&[u(1), u(4)], usize::MAX);
        let b = t.descend(&[u(1), u(2)]).unwrap();
        t.kill_subtree(b);
        assert_eq!(t.node_count(), 2); // root + child 4
        assert!(t.child(t.root(u(1)).unwrap(), u(2)).is_none());
        assert!(t.descend(&[u(1), u(2), u(3)]).is_none());
        assert!(t.descend(&[u(1), u(4)]).is_some());
    }

    #[test]
    fn compact_preserves_structure_and_counts() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        t.insert_path(&[u(1), u(4), u(5)], usize::MAX);
        t.insert_path(&[u(6), u(7)], usize::MAX);
        let b = t.descend(&[u(1), u(2)]).unwrap();
        t.kill_subtree(b);
        t.compact();
        assert_eq!(t.arena_len(), t.node_count());
        assert_eq!(t.node_count(), 5);
        // Both surviving branches remain walkable with their counts.
        let n = t.descend(&[u(1), u(4), u(5)]).unwrap();
        assert_eq!(t.node(n).count, 1);
        assert!(t.descend(&[u(6), u(7)]).is_some());
        assert!(t.descend(&[u(1), u(2)]).is_none());
        // Parents were remapped consistently.
        for id in t.iter_alive() {
            let n = t.node(id);
            if !n.parent.is_none() {
                assert!(t.node(n.parent).alive);
                assert!(t
                    .node(n.parent)
                    .children
                    .iter()
                    .any(|&(url, c)| url == n.url && c == id));
            }
        }
    }

    #[test]
    fn compact_on_clean_tree_is_a_noop() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        let before = t.arena_len();
        t.compact();
        assert_eq!(t.arena_len(), before);
    }

    #[test]
    fn links_attach_and_enumerate() {
        let mut t = Tree::new();
        let r = t.root_or_insert(u(1));
        let l1 = t.link_or_insert(r, u(9));
        let l1b = t.link_or_insert(r, u(9));
        assert_eq!(l1, l1b, "same (root, url) link is deduplicated");
        t.bump(l1);
        t.bump(l1);
        let links: Vec<NodeId> = t.links_of(r).collect();
        assert_eq!(links, vec![l1]);
        assert_eq!(t.node(l1).count, 2);
        assert!(t.node(l1).link_dup);
        assert_eq!(t.node_count(), 2); // link dups count toward storage
    }

    #[test]
    fn link_dups_do_not_count_as_paths() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        let r = t.root(u(1)).unwrap();
        t.link_or_insert(r, u(9));
        let (total, _) = t.path_usage();
        assert_eq!(total, 1); // only the 1->2 leaf path
    }

    #[test]
    fn path_usage_tracks_used_leaves() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        t.insert_path(&[u(1), u(3)], usize::MAX);
        assert_eq!(t.path_usage(), (2, 0));
        let leaf = t.descend(&[u(1), u(2)]).unwrap();
        t.mark_used(leaf);
        assert_eq!(t.path_usage(), (2, 1));
    }

    #[test]
    fn killing_a_link_root_kills_the_dup() {
        let mut t = Tree::new();
        let r = t.root_or_insert(u(1));
        t.link_or_insert(r, u(9));
        t.kill_subtree(r);
        assert_eq!(t.node_count(), 0);
        t.compact();
        assert_eq!(t.arena_len(), 0);
    }

    #[test]
    fn compact_remaps_links() {
        let mut t = Tree::new();
        t.insert_path(&[u(0), u(5)], usize::MAX); // will die
        let r = t.root_or_insert(u(1));
        t.bump(r);
        let l = t.link_or_insert(r, u(9));
        t.bump(l);
        t.kill_subtree(t.root(u(0)).unwrap());
        t.compact();
        let r = t.root(u(1)).unwrap();
        let links: Vec<NodeId> = t.links_of(r).collect();
        assert_eq!(links.len(), 1);
        assert_eq!(t.node(links[0]).url, u(9));
        assert_eq!(t.node(links[0]).count, 1);
    }

    #[test]
    fn resurrecting_a_killed_child_revives_it() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        let c = t.descend(&[u(1), u(2)]).unwrap();
        t.kill_subtree(c);
        assert_eq!(t.node_count(), 1);
        t.insert_path(&[u(1), u(2)], usize::MAX);
        assert_eq!(t.node_count(), 2);
        let c = t.descend(&[u(1), u(2)]).unwrap();
        assert_eq!(t.node(c).count, 2); // counts survive the tombstone
    }

    #[test]
    fn snapshot_roundtrip_preserves_structure() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        t.insert_path(&[u(1), u(4)], usize::MAX);
        t.insert_path(&[u(6), u(7)], usize::MAX);
        let r = t.root(u(1)).unwrap();
        let l = t.link_or_insert(r, u(9));
        t.bump(l);
        // Kill something so the snapshot must compact.
        t.kill_subtree(t.descend(&[u(6), u(7)]).unwrap());

        let snap = t.to_snapshot();
        assert_eq!(snap.len(), t.node_count());
        let back = Tree::from_snapshot(&snap).unwrap();
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.root_count(), t.root_count());
        let n = back.descend(&[u(1), u(2), u(3)]).unwrap();
        assert_eq!(back.node(n).count, 1);
        assert!(back.descend(&[u(6), u(7)]).is_none());
        let root = back.root(u(1)).unwrap();
        let links: Vec<UrlId> = back.links_of(root).map(|id| back.node(id).url).collect();
        assert_eq!(links, vec![u(9)]);
        // Snapshot of the reloaded tree is identical (canonical form).
        assert_eq!(back.to_snapshot(), snap);
    }

    #[test]
    fn snapshot_rejects_corrupt_references() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        let mut snap = t.to_snapshot();
        snap.roots.push((7, 99)); // node 99 does not exist
        assert_eq!(
            Tree::from_snapshot(&snap).unwrap_err(),
            SnapshotError::BadNodeId(99)
        );
        let mut snap2 = t.to_snapshot();
        snap2.roots.push((7, 1)); // node 1 exists but is not a root for url 7
        assert_eq!(
            Tree::from_snapshot(&snap2).unwrap_err(),
            SnapshotError::BadRoot(7)
        );
    }

    #[test]
    fn snapshot_rejects_parent_cycles() {
        // Two nodes each claiming the other as parent: must error, not hang
        // (rebuild_path_hashes would otherwise loop forever).
        let cyclic = |url: u32, parent: u32| NodeSnapshot {
            url,
            count: 1,
            parent,
            depth: 2,
            children: Vec::new(),
            link_dup: false,
        };
        let snap = TreeSnapshot {
            nodes: vec![cyclic(0, 1), cyclic(1, 0)],
            roots: Vec::new(),
            links: Vec::new(),
        };
        assert!(matches!(
            Tree::from_snapshot(&snap).unwrap_err(),
            SnapshotError::ParentCycle(_)
        ));
        // A self-loop is the degenerate case.
        let snap = TreeSnapshot {
            nodes: vec![cyclic(0, 0)],
            roots: Vec::new(),
            links: Vec::new(),
        };
        assert!(matches!(
            Tree::from_snapshot(&snap).unwrap_err(),
            SnapshotError::ParentCycle(0)
        ));
    }

    #[test]
    fn snapshot_does_not_persist_used_flags() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2)], usize::MAX);
        let leaf = t.descend(&[u(1), u(2)]).unwrap();
        t.mark_used(leaf);
        let back = Tree::from_snapshot(&t.to_snapshot()).unwrap();
        assert_eq!(back.path_usage(), (1, 0));
    }

    #[test]
    fn compact_releases_high_water_capacity() {
        // Grow a wide forest (many roots → large hash maps and arena), then
        // prune almost everything: the reported storage bytes must drop once
        // compact has run, i.e. compaction shrinks capacities instead of
        // keeping the maps and vectors at their training high-water mark.
        let mut t = Tree::new();
        for r in 0..2000u32 {
            t.insert_path(&[u(r), u(r + 10_000), u(r + 20_000)], usize::MAX);
        }
        let before = t.memory_bytes();
        for r in 1..2000u32 {
            let root = t.root(u(r)).unwrap();
            t.kill_subtree(root);
        }
        t.compact();
        let after = t.memory_bytes();
        assert_eq!(t.node_count(), 3);
        assert!(
            after * 10 < before,
            "storage bytes must collapse after a heavy prune: {before} -> {after}"
        );
        // The surviving branch is intact.
        assert!(t.descend(&[u(0), u(10_000), u(20_000)]).is_some());
    }

    #[test]
    fn freeze_compacts_and_mirrors_counts() {
        let mut t = Tree::new();
        t.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        t.insert_path(&[u(4), u(5)], usize::MAX);
        t.kill_subtree(t.root(u(4)).unwrap());
        let frozen = t.freeze(None);
        assert_eq!(t.arena_len(), t.node_count(), "freeze must compact");
        assert_eq!(frozen.len(), t.node_count());
        let n = t.descend(&[u(1), u(2), u(3)]).unwrap();
        assert_eq!(frozen.count(n.0), t.node(n).count);
        assert!(frozen.root(u(4)).is_none());
    }

    #[test]
    fn merge_from_sums_counts_structurally() {
        let mut a = Tree::new();
        a.insert_path(&[u(1), u(2), u(3)], usize::MAX);
        a.insert_path(&[u(1), u(4)], usize::MAX);
        let mut b = Tree::new();
        b.insert_path(&[u(1), u(2)], usize::MAX);
        b.insert_path(&[u(6), u(7)], usize::MAX);
        let rb = b.root(u(6)).unwrap();
        let lb = b.link_or_insert(rb, u(9));
        b.bump(lb);

        a.merge_from(&b);
        assert_eq!(a.node(a.root(u(1)).unwrap()).count, 3);
        assert_eq!(a.node(a.descend(&[u(1), u(2)]).unwrap()).count, 2);
        assert_eq!(a.node(a.descend(&[u(1), u(2), u(3)]).unwrap()).count, 1);
        assert_eq!(a.node(a.descend(&[u(6), u(7)]).unwrap()).count, 1);
        let ra = a.root(u(6)).unwrap();
        let links: Vec<(UrlId, u64)> = a
            .links_of(ra)
            .map(|id| (a.node(id).url, a.node(id).count))
            .collect();
        assert_eq!(links, vec![(u(9), 1)]);
    }

    #[test]
    fn merge_in_partition_order_matches_sequential_insertion() {
        // The determinism contract merge_from documents: splitting the
        // session list into contiguous partitions, training each into its
        // own tree, and merging in partition order yields a byte-identical
        // snapshot to inserting every session sequentially.
        let sessions: Vec<Vec<UrlId>> = vec![
            vec![u(1), u(2), u(3)],
            vec![u(1), u(5)],
            vec![u(4), u(2), u(1)],
            vec![u(1), u(2), u(6)],
            vec![u(7)],
        ];
        let mut seq = Tree::new();
        for s in &sessions {
            seq.insert_path(s, usize::MAX);
        }
        for split in 1..sessions.len() {
            let mut left = Tree::new();
            for s in &sessions[..split] {
                left.insert_path(s, usize::MAX);
            }
            let mut right = Tree::new();
            for s in &sessions[split..] {
                right.insert_path(s, usize::MAX);
            }
            left.merge_from(&right);
            assert_eq!(
                left.to_snapshot(),
                seq.to_snapshot(),
                "split at {split} diverged"
            );
        }
    }

    #[test]
    fn merge_from_skips_dead_donor_subtrees() {
        let mut a = Tree::new();
        a.insert_path(&[u(1)], usize::MAX);
        let mut b = Tree::new();
        b.insert_path(&[u(2), u(3)], usize::MAX);
        b.kill_subtree(b.root(u(2)).unwrap());
        a.merge_from(&b);
        assert_eq!(a.node_count(), 1);
        assert!(a.root(u(2)).is_none());
    }

    #[test]
    fn depth_saturates_instead_of_overflowing() {
        let mut t = Tree::new();
        let mut cur = t.root_or_insert(u(0));
        for i in 1..300u32 {
            cur = t.child_or_insert(cur, u(i));
        }
        assert_eq!(t.node(cur).depth, u8::MAX);
    }
}
