//! ASCII rendering of prediction trees (Figure 1 and debugging).
//!
//! Produces the box-drawing layout conventional for trees:
//!
//! ```text
//! /index.html/3
//! ├── /docs/2
//! │   └── /docs/faq/1
//! └── ~> /news/2          (special link to a duplicated node)
//! ```
//!
//! Node labels are `url/count`, matching the `A/1 B/1 …` annotations of the
//! paper's Figure 1. Output is deterministic: roots and children are ordered
//! by URL id.

use crate::interner::{Interner, UrlId};
use crate::tree::{NodeId, Tree};
use std::fmt::Write as _;

/// Renders the whole forest. When `names` is given, URLs print as their
/// interned strings; otherwise as `u<id>`.
pub fn render_tree(tree: &Tree, names: Option<&Interner>) -> String {
    let mut out = String::new();
    let mut roots: Vec<NodeId> = tree.iter_roots().collect();
    roots.sort_by_key(|&id| tree.node(id).url);
    for root in roots {
        render_node(tree, root, names, "", "", &mut out);
    }
    out
}

fn label(tree: &Tree, id: NodeId, names: Option<&Interner>) -> String {
    let node = tree.node(id);
    let name = url_label(node.url, names);
    format!("{name}/{}", node.count)
}

fn url_label(url: UrlId, names: Option<&Interner>) -> String {
    match names.and_then(|n| n.resolve(url)) {
        Some(s) => s.to_owned(),
        None => url.to_string(),
    }
}

fn render_node(
    tree: &Tree,
    id: NodeId,
    names: Option<&Interner>,
    prefix: &str,
    child_prefix: &str,
    out: &mut String,
) {
    let _ = writeln!(out, "{prefix}{}", label(tree, id, names));
    let mut kids: Vec<NodeId> = tree.children_of(id).map(|(_, c, _)| c).collect();
    kids.sort_by_key(|&c| tree.node(c).url);
    let links: Vec<NodeId> = {
        let mut l: Vec<NodeId> = tree.links_of(id).collect();
        l.sort_by_key(|&c| tree.node(c).url);
        l
    };
    let last_index = kids.len() + links.len();
    let mut i = 0;
    for &kid in &kids {
        i += 1;
        let (branch, cont) = if i == last_index {
            ("└── ", "    ")
        } else {
            ("├── ", "│   ")
        };
        render_node(
            tree,
            kid,
            names,
            &format!("{child_prefix}{branch}"),
            &format!("{child_prefix}{cont}"),
            out,
        );
    }
    for &link in &links {
        i += 1;
        let branch = if i == last_index {
            "└── "
        } else {
            "├── "
        };
        let _ = writeln!(out, "{child_prefix}{branch}~> {}", label(tree, link, names));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn renders_empty_tree_as_empty_string() {
        assert_eq!(render_tree(&Tree::new(), None), "");
    }

    #[test]
    fn renders_simple_chain() {
        let mut t = Tree::new();
        t.insert_path(&[u(0), u(1), u(2)], usize::MAX);
        let s = render_tree(&t, None);
        assert_eq!(s, "u0/1\n└── u1/1\n    └── u2/1\n");
    }

    #[test]
    fn renders_siblings_with_tee_and_elbow() {
        let mut t = Tree::new();
        t.insert_path(&[u(0), u(1)], usize::MAX);
        t.insert_path(&[u(0), u(2)], usize::MAX);
        let s = render_tree(&t, None);
        assert_eq!(s, "u0/2\n├── u1/1\n└── u2/1\n");
    }

    #[test]
    fn renders_links_with_arrow() {
        let mut t = Tree::new();
        let r = t.root_or_insert(u(0));
        t.bump(r);
        let l = t.link_or_insert(r, u(9));
        t.bump(l);
        let s = render_tree(&t, None);
        assert!(s.contains("~> u9/1"), "got: {s}");
    }

    #[test]
    fn uses_interned_names_when_available() {
        let mut names = Interner::new();
        let a = names.intern("/index.html");
        let mut t = Tree::new();
        let r = t.root_or_insert(a);
        t.bump(r);
        let s = render_tree(&t, Some(&names));
        assert_eq!(s, "/index.html/1\n");
    }

    #[test]
    fn roots_render_in_url_order() {
        let mut t = Tree::new();
        t.insert_path(&[u(5)], usize::MAX);
        t.insert_path(&[u(1)], usize::MAX);
        let s = render_tree(&t, None);
        let first = s.lines().next().unwrap();
        assert_eq!(first, "u1/1");
    }
}
