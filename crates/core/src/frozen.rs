//! Frozen struct-of-arrays / CSR arena: the cache-conscious read-only form
//! a finalized model serves from.
//!
//! The pointer arena ([`crate::tree::Tree`]) is built for *growth*: each
//! node owns a heap-allocated child vector, roots and special links live in
//! hash maps, and every predict-time hop chases a pointer into cold memory.
//! Once a model is finalized its shape never changes again, so
//! [`Tree::freeze`] compiles the forest into this contiguous
//! struct-of-arrays layout:
//!
//! * parallel `u32`-indexed arrays for `url`, `count`, `depth`, `parent`
//!   and popularity `grade` (one cache line covers eight nodes' counts);
//! * a CSR `child_offsets`/`child_entries` pair — all children of a node
//!   are adjacent, so the child-vote loop is a linear scan instead of a
//!   binary search through a per-node heap vector;
//! * special links flattened into a second CSR pair parallel to the sorted
//!   root table, plus a direct-indexed `root_lookup` table (URL ids are
//!   dense interner ids) that answers "is the current click a root?" in
//!   one array load;
//! * the mutable `used` tracking stays behind on the pointer tree (the
//!   [`crate::predictor::PredictUsage`] side channel), so every frozen
//!   read path takes `&self`.
//!
//! Freezing happens after compaction, so frozen index `i` **is**
//! [`NodeId`]`(i)`: usage bookkeeping, the occurrence index, and the
//! fingerprint index all keep working against frozen indices unchanged.
//!
//! [`MatchStrategy`] + [`choose_strategy`] implement the adaptive selector:
//! a model picks the fingerprint index only when the measured bucket
//! occupancy predicts the precomputed aggregates actually pay for the
//! hashing, and serves straight frozen descents otherwise.
//!
//! [`Tree`]: crate::tree::Tree
//! [`Tree::freeze`]: crate::tree::Tree::freeze
//! [`NodeId`]: crate::tree::NodeId

use crate::context_index::IndexOccupancy;
use crate::interner::UrlId;
use crate::popularity::PopularityTable;
use crate::tree::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// Sentinel for "no node" in the `u32` index space (mirrors
/// [`NodeId::NONE`]).
pub const NO_NODE: u32 = u32::MAX;

/// Child lists at most this long are scanned linearly; longer ones are
/// binary-searched. CSR entries are adjacent, so the scan stays within one
/// or two cache lines.
const LINEAR_SCAN_MAX: usize = 16;

#[inline]
fn ix(i: u32) -> usize {
    i as usize
}

/// How a finalized model matches a context against its frozen arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchStrategy {
    /// Direct suffix descent / occurrence scan over the frozen arrays. No
    /// hashing, no per-call allocation.
    FrozenScan,
    /// The hashed [`crate::context_index::ContextIndex`] fast path, with
    /// frozen-array verification walks.
    FingerprintIndex,
}

impl MatchStrategy {
    /// Stable lower-case label for telemetry (flight-recorder lines,
    /// metric label values).
    pub fn label(self) -> &'static str {
        match self {
            MatchStrategy::FrozenScan => "frozen-scan",
            MatchStrategy::FingerprintIndex => "fingerprint-index",
        }
    }
}

/// Picks the serving strategy from measured fingerprint-index occupancy.
///
/// The index only wins when its buckets aggregate *several* stored nodes
/// per distinct context — then one probe replaces a whole occurrence scan
/// (PB-PPM's windows mode: 5.4× measured). When occupancy is ~one entry
/// per bucket (standard/LRS full-path mode: trie paths are unique), the
/// probe answers nothing a direct descent would not, and the per-query
/// hashing plus hash-map cache misses made the "fast" path *slower* than
/// the reference scan (0.92× for standard PPM in the committed baseline).
/// This selector is what removes that regression honestly.
pub fn choose_strategy(entries: usize, occ: IndexOccupancy) -> MatchStrategy {
    if occ.buckets == 0 {
        return MatchStrategy::FrozenScan;
    }
    // Aggregation wins when buckets hold ≥1.5 entries on average (integer
    // form: 2·entries ≥ 3·buckets) or any single bucket folds 4+ nodes.
    if entries.saturating_mul(2) >= occ.buckets.saturating_mul(3) || occ.max_bucket >= 4 {
        MatchStrategy::FingerprintIndex
    } else {
        MatchStrategy::FrozenScan
    }
}

/// The frozen struct-of-arrays / CSR image of a compacted [`Tree`].
///
/// All arrays are indexed by the node's arena position (identical to its
/// [`NodeId`] — freezing compacts first). Immutable by construction: every
/// accessor takes `&self`.
///
/// [`Tree`]: crate::tree::Tree
/// [`NodeId`]: crate::tree::NodeId
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrozenTree {
    /// `urls[i]`: URL of node `i`.
    pub(crate) urls: Vec<UrlId>,
    /// `counts[i]`: transition count of node `i`.
    pub(crate) counts: Vec<u64>,
    /// `depths[i]`: branch depth of node `i` (root = 1).
    pub(crate) depths: Vec<u8>,
    /// `parents[i]`: parent index, [`NO_NODE`] for roots.
    pub(crate) parents: Vec<u32>,
    /// `grades[i]`: popularity grade level of node `i`'s URL (0 for model
    /// families without a popularity table).
    pub(crate) grades: Vec<u8>,
    /// Bitset: bit `i` set when node `i` is a duplicated special-link node.
    pub(crate) dup_bits: Vec<u64>,
    /// CSR row offsets into `child_entries`; length `n + 1`.
    pub(crate) child_offsets: Vec<u32>,
    /// CSR child entries `(url, child index)`, sorted by URL per node.
    pub(crate) child_entries: Vec<(UrlId, u32)>,
    /// Root table `(url, node index)`, sorted by URL.
    pub(crate) roots: Vec<(UrlId, u32)>,
    /// Direct index: `root_lookup[url.0]` is the slot in `roots` (or
    /// [`NO_NODE`]). URL ids are dense, so this stays small.
    pub(crate) root_lookup: Vec<u32>,
    /// CSR row offsets into `link_entries`, parallel to `roots`; length
    /// `roots.len() + 1`.
    pub(crate) link_offsets: Vec<u32>,
    /// Special-link targets (duplicated nodes), flattened.
    pub(crate) link_entries: Vec<u32>,
}

/// Raw decoded pieces of a [`FrozenTree`], as read by the snapshot codec.
/// [`FrozenTree::from_parts`] validates them into an arena.
pub(crate) struct FrozenParts {
    pub urls: Vec<UrlId>,
    pub counts: Vec<u64>,
    pub depths: Vec<u8>,
    pub parents: Vec<u32>,
    pub grades: Vec<u8>,
    pub dup_bits: Vec<u64>,
    pub child_offsets: Vec<u32>,
    pub child_entries: Vec<(UrlId, u32)>,
    pub roots: Vec<(UrlId, u32)>,
    pub link_offsets: Vec<u32>,
    pub link_entries: Vec<u32>,
}

fn build_root_lookup(roots: &[(UrlId, u32)]) -> Vec<u32> {
    let width = roots.iter().map(|&(u, _)| ix(u.0) + 1).max().unwrap_or(0);
    let mut lookup = vec![NO_NODE; width];
    for (slot, &(url, _)) in roots.iter().enumerate() {
        // Slots are root-table positions; the table is bounded by the node
        // count, which the arena caps below u32::MAX.
        lookup[ix(url.0)] = u32::try_from(slot).unwrap_or(NO_NODE);
    }
    lookup
}

impl FrozenTree {
    /// Compiles a compacted tree (`node_count == arena_len`) into the
    /// frozen form. `pop` supplies the per-URL popularity grades for
    /// PB-PPM; baselines pass `None` and get zero grades.
    pub(crate) fn from_tree(tree: &Tree, pop: Option<&PopularityTable>) -> Self {
        debug_assert_eq!(
            tree.node_count(),
            tree.arena_len(),
            "freeze requires a compacted arena"
        );
        let n = tree.nodes.len();
        let mut urls = Vec::with_capacity(n);
        let mut counts = Vec::with_capacity(n);
        let mut depths = Vec::with_capacity(n);
        let mut parents = Vec::with_capacity(n);
        let mut grades = Vec::with_capacity(n);
        let mut dup_bits = vec![0u64; n.div_ceil(64)];
        let mut child_offsets = Vec::with_capacity(n + 1);
        let mut child_entries = Vec::new();
        child_offsets.push(0u32);
        for (i, node) in tree.nodes.iter().enumerate() {
            urls.push(node.url);
            counts.push(node.count);
            depths.push(node.depth);
            parents.push(node.parent.0);
            grades.push(pop.map_or(0, |p| p.grade(node.url).level()));
            if node.link_dup {
                dup_bits[i / 64] |= 1u64 << (i % 64);
            }
            for &(url, child) in &node.children {
                child_entries.push((url, child.0));
            }
            // Every entry names a distinct node, so the total fits u32 like
            // the arena ids themselves do.
            child_offsets.push(u32::try_from(child_entries.len()).unwrap_or(NO_NODE));
        }
        let mut roots: Vec<(UrlId, u32)> = tree.roots.iter().map(|(&u, &id)| (u, id.0)).collect();
        roots.sort_unstable_by_key(|&(u, _)| u);
        let root_lookup = build_root_lookup(&roots);
        let mut link_offsets = Vec::with_capacity(roots.len() + 1);
        let mut link_entries = Vec::new();
        link_offsets.push(0u32);
        for &(_, root) in &roots {
            if let Some(targets) = tree.links.get(&NodeId(root)) {
                for &t in targets {
                    if tree.nodes[t.index()].alive {
                        link_entries.push(t.0);
                    }
                }
            }
            link_offsets.push(u32::try_from(link_entries.len()).unwrap_or(NO_NODE));
        }
        let mut frozen = Self {
            urls,
            counts,
            depths,
            parents,
            grades,
            dup_bits,
            child_offsets,
            child_entries,
            roots,
            root_lookup,
            link_offsets,
            link_entries,
        };
        frozen.shrink();
        frozen
    }

    fn shrink(&mut self) {
        self.urls.shrink_to_fit();
        self.counts.shrink_to_fit();
        self.depths.shrink_to_fit();
        self.parents.shrink_to_fit();
        self.grades.shrink_to_fit();
        self.dup_bits.shrink_to_fit();
        self.child_offsets.shrink_to_fit();
        self.child_entries.shrink_to_fit();
        self.roots.shrink_to_fit();
        self.root_lookup.shrink_to_fit();
        self.link_offsets.shrink_to_fit();
        self.link_entries.shrink_to_fit();
    }

    /// Validates raw decoded parts into a frozen arena: array-length
    /// parity, CSR well-formedness (monotone in-bounds offsets, per-node
    /// URL-sorted children), in-bounds parent and link references, and a
    /// sorted root table. The codec maps the error text into
    /// [`crate::snapshot::CodecError::Invalid`].
    pub(crate) fn from_parts(parts: FrozenParts) -> Result<Self, &'static str> {
        let FrozenParts {
            urls,
            counts,
            depths,
            parents,
            grades,
            dup_bits,
            child_offsets,
            child_entries,
            roots,
            link_offsets,
            link_entries,
        } = parts;
        let n = urls.len();
        if counts.len() != n || depths.len() != n || parents.len() != n || grades.len() != n {
            return Err("frozen arrays disagree on length");
        }
        if dup_bits.len() != n.div_ceil(64) {
            return Err("frozen dup bitset has the wrong width");
        }
        if child_offsets.len() != n + 1 || child_offsets.first() != Some(&0) {
            return Err("frozen child offsets malformed");
        }
        for w in child_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("frozen child offsets not monotone");
            }
        }
        if ix(*child_offsets.last().unwrap_or(&0)) != child_entries.len() {
            return Err("frozen child offsets disagree with entry count");
        }
        for (i, w) in child_offsets.windows(2).enumerate() {
            let row = &child_entries[ix(w[0])..ix(w[1])];
            for pair in row.windows(2) {
                if pair[0].0 >= pair[1].0 {
                    return Err("frozen child entries not sorted by url");
                }
            }
            for &(_, c) in row {
                if ix(c) >= n {
                    return Err("frozen child entry out of bounds");
                }
                if ix(c) == i {
                    return Err("frozen child entry references its own node");
                }
            }
        }
        for &p in &parents {
            if p != NO_NODE && ix(p) >= n {
                return Err("frozen parent out of bounds");
            }
        }
        for pair in roots.windows(2) {
            if pair[0].0 >= pair[1].0 {
                return Err("frozen root table not sorted by url");
            }
        }
        for &(_, id) in &roots {
            if ix(id) >= n {
                return Err("frozen root out of bounds");
            }
        }
        if link_offsets.len() != roots.len() + 1 || link_offsets.first() != Some(&0) {
            return Err("frozen link offsets malformed");
        }
        for w in link_offsets.windows(2) {
            if w[0] > w[1] {
                return Err("frozen link offsets not monotone");
            }
        }
        if ix(*link_offsets.last().unwrap_or(&0)) != link_entries.len() {
            return Err("frozen link offsets disagree with entry count");
        }
        for &t in &link_entries {
            if ix(t) >= n {
                return Err("frozen link entry out of bounds");
            }
        }
        let root_lookup = build_root_lookup(&roots);
        Ok(Self {
            urls,
            counts,
            depths,
            parents,
            grades,
            dup_bits,
            child_offsets,
            child_entries,
            roots,
            root_lookup,
            link_offsets,
            link_entries,
        })
    }

    /// Number of nodes in the arena.
    #[must_use]
    pub fn len(&self) -> usize {
        self.urls.len()
    }

    /// True when the arena holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.urls.is_empty()
    }

    /// URL of node `i`.
    #[inline]
    #[must_use]
    pub fn url(&self, i: u32) -> UrlId {
        self.urls[ix(i)]
    }

    /// Transition count of node `i`.
    #[inline]
    #[must_use]
    pub fn count(&self, i: u32) -> u64 {
        self.counts[ix(i)]
    }

    /// Branch depth of node `i` (roots are depth 1).
    #[inline]
    #[must_use]
    pub fn depth(&self, i: u32) -> u8 {
        self.depths[ix(i)]
    }

    /// Popularity grade level of node `i`'s URL.
    #[inline]
    #[must_use]
    pub fn grade(&self, i: u32) -> u8 {
        self.grades[ix(i)]
    }

    /// Parent index of node `i`, [`NO_NODE`] for roots.
    #[inline]
    #[must_use]
    pub fn parent(&self, i: u32) -> u32 {
        self.parents[ix(i)]
    }

    /// True when node `i` is a duplicated special-link node.
    #[inline]
    #[must_use]
    pub fn is_link_dup(&self, i: u32) -> bool {
        (self.dup_bits[ix(i) / 64] >> (ix(i) % 64)) & 1 == 1
    }

    /// The children of node `i`: adjacent `(url, child)` entries sorted by
    /// URL.
    #[inline]
    #[must_use]
    pub fn children(&self, i: u32) -> &[(UrlId, u32)] {
        &self.child_entries[ix(self.child_offsets[ix(i)])..ix(self.child_offsets[ix(i) + 1])]
    }

    /// True when node `i` has at least one child (one offset subtraction —
    /// no pointer chase).
    #[inline]
    #[must_use]
    pub fn has_children(&self, i: u32) -> bool {
        self.child_offsets[ix(i)] < self.child_offsets[ix(i) + 1]
    }

    /// The child of node `i` carrying `url`, if any. Short rows are a
    /// linear scan over the adjacent entries; long rows binary-search.
    #[inline]
    #[must_use]
    pub fn child(&self, i: u32, url: UrlId) -> Option<u32> {
        let row = self.children(i);
        if row.len() <= LINEAR_SCAN_MAX {
            for &(u, c) in row {
                if u == url {
                    return Some(c);
                }
                if u > url {
                    return None;
                }
            }
            None
        } else {
            row.binary_search_by_key(&url, |&(u, _)| u)
                .ok()
                .map(|pos| row[pos].1)
        }
    }

    /// Slot of `url` in the sorted root table, via the direct-index lookup.
    #[inline]
    fn root_slot(&self, url: UrlId) -> Option<usize> {
        let slot = *self.root_lookup.get(ix(url.0))?;
        (slot != NO_NODE).then(|| ix(slot))
    }

    /// The branch root for `url`, if one exists.
    #[inline]
    #[must_use]
    pub fn root(&self, url: UrlId) -> Option<u32> {
        self.root_slot(url).map(|slot| self.roots[slot].1)
    }

    /// Special-link targets (duplicated nodes) hanging off `url`'s root.
    #[inline]
    #[must_use]
    pub fn links_of(&self, url: UrlId) -> &[u32] {
        match self.root_slot(url) {
            Some(slot) => {
                &self.link_entries[ix(self.link_offsets[slot])..ix(self.link_offsets[slot + 1])]
            }
            None => &[],
        }
    }

    /// Walks `path` down from a root, returning the node spelling the whole
    /// path.
    #[must_use]
    pub fn descend(&self, path: &[UrlId]) -> Option<u32> {
        let (&first, rest) = path.split_first()?;
        let mut cur = self.root(first)?;
        for &url in rest {
            cur = self.child(cur, url)?;
        }
        Some(cur)
    }

    /// Frozen mirror of [`Tree::longest_predictive_match`]: the deepest
    /// suffix match (longest first, at most `max_order` URLs) that has at
    /// least one child. No hashing and no allocation — this *is* the
    /// frozen-scan strategy for the suffix-forest models.
    ///
    /// [`Tree::longest_predictive_match`]: crate::tree::Tree::longest_predictive_match
    #[must_use]
    pub fn longest_predictive(&self, context: &[UrlId], max_order: usize) -> Option<u32> {
        let len = context.len();
        let longest = len.min(max_order).min(usize::from(u8::MAX));
        for k in (1..=longest).rev() {
            if let Some(node) = self.descend(&context[len - k..]) {
                if self.has_children(node) {
                    return Some(node);
                }
            }
        }
        None
    }

    /// Frozen mirror of [`crate::context_index::match_top`]: verifies the
    /// upward path ending at `node` spells `suffix`, returning the topmost
    /// matched node.
    #[must_use]
    pub fn match_top(&self, node: u32, suffix: &[UrlId]) -> Option<u32> {
        let mut cur = node;
        let mut iter = suffix.iter().rev();
        let &last = iter.next()?;
        if self.url(cur) != last {
            return None;
        }
        for &url in iter {
            let parent = self.parent(cur);
            if parent == NO_NODE {
                return None; // stored path is shorter than the suffix
            }
            cur = parent;
            if self.url(cur) != url {
                return None;
            }
        }
        Some(cur)
    }

    /// Frozen mirror of PB-PPM's `match_len`: length of the longest context
    /// suffix matching the upward path ending at `node`, capped at
    /// `max_order`.
    #[must_use]
    pub fn match_len(&self, node: u32, context: &[UrlId], max_order: usize) -> usize {
        let mut len = 0;
        let mut cur = node;
        for &url in context.iter().rev().take(max_order) {
            if self.url(cur) != url {
                break;
            }
            len += 1;
            let parent = self.parent(cur);
            if parent == NO_NODE {
                break;
            }
            cur = parent;
        }
        len
    }

    /// Resident heap bytes of the frozen arena (all backing arrays at
    /// capacity). The bench reports this against the pointer arena's
    /// [`Tree::memory_bytes`].
    ///
    /// [`Tree::memory_bytes`]: crate::tree::Tree::memory_bytes
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.urls.capacity() * size_of::<UrlId>()
            + self.counts.capacity() * size_of::<u64>()
            + self.depths.capacity()
            + self.parents.capacity() * size_of::<u32>()
            + self.grades.capacity()
            + self.dup_bits.capacity() * size_of::<u64>()
            + self.child_offsets.capacity() * size_of::<u32>()
            + self.child_entries.capacity() * size_of::<(UrlId, u32)>()
            + self.roots.capacity() * size_of::<(UrlId, u32)>()
            + self.root_lookup.capacity() * size_of::<u32>()
            + self.link_offsets.capacity() * size_of::<u32>()
            + self.link_entries.capacity() * size_of::<u32>()
    }

    /// Corruption hook for the audit adversarial harness: bumps one node's
    /// frozen count so it diverges from the pointer arena. Returns false on
    /// an empty arena. Not part of the public API.
    #[doc(hidden)]
    pub fn skew_count_for_audit(&mut self) -> bool {
        match self.counts.first_mut() {
            Some(c) => {
                *c += 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lrs::LrsPpm;
    use crate::pb::{PbConfig, PbPpm};
    use crate::popularity::PopularityBuilder;
    use crate::predictor::Predictor;
    use crate::prune::PruneConfig;
    use crate::standard::StandardPpm;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    fn trained_standard() -> StandardPpm {
        let mut m = StandardPpm::unbounded();
        m.train_session(&[u(0), u(1), u(2), u(3)]);
        m.train_session(&[u(0), u(1), u(4)]);
        m.train_session(&[u(2), u(3), u(1)]);
        m.finalize();
        m
    }

    fn trained_pb() -> PbPpm {
        let mut b = PopularityBuilder::new();
        b.record_n(u(0), 1000);
        b.record_n(u(1), 50);
        b.record_n(u(2), 5);
        b.record_n(u(3), 1000);
        let cfg = PbConfig {
            prune: PruneConfig::disabled(),
            ..PbConfig::default()
        };
        let mut m = PbPpm::new(b.build(), cfg);
        for _ in 0..3 {
            m.train_session(&[u(0), u(1), u(2), u(3), u(1), u(2)]);
        }
        m.train_session(&[u(3), u(1), u(2), u(0)]);
        m.finalize();
        m
    }

    #[test]
    fn freeze_is_identity_mapped_and_field_faithful() {
        let m = trained_standard();
        let frozen = m.frozen().expect("finalize froze");
        let tree = m.tree();
        assert_eq!(frozen.len(), tree.arena_len());
        for id in tree.iter_alive() {
            let node = &tree.nodes[id.index()];
            let i = id.0;
            assert_eq!(frozen.url(i), node.url);
            assert_eq!(frozen.count(i), node.count);
            assert_eq!(frozen.depth(i), node.depth);
            assert_eq!(frozen.parent(i), node.parent.0);
            assert_eq!(frozen.is_link_dup(i), node.link_dup);
            let kids: Vec<(UrlId, u32)> = node.children.iter().map(|&(u, c)| (u, c.0)).collect();
            assert_eq!(frozen.children(i), kids.as_slice());
        }
    }

    #[test]
    fn frozen_lookups_mirror_pointer_lookups() {
        let m = trained_standard();
        let frozen = m.frozen().expect("finalize froze");
        let tree = m.tree();
        for url in 0..6 {
            assert_eq!(
                frozen.root(u(url)),
                tree.root(u(url)).map(|id| id.0),
                "root({url})"
            );
        }
        let probes: Vec<Vec<UrlId>> = vec![
            vec![u(0)],
            vec![u(0), u(1)],
            vec![u(0), u(1), u(2)],
            vec![u(0), u(1), u(2), u(3)],
            vec![u(9), u(0), u(1)],
            vec![u(2), u(3)],
            vec![u(5)],
            vec![],
        ];
        for ctx in &probes {
            assert_eq!(
                frozen.longest_predictive(ctx, 255),
                tree.longest_predictive_match(ctx, 255).map(|id| id.0),
                "context {ctx:?}"
            );
            assert_eq!(
                frozen.descend(ctx),
                tree.descend(ctx).map(|id| id.0),
                "descend {ctx:?}"
            );
        }
    }

    #[test]
    fn frozen_links_and_grades_mirror_pb() {
        let m = trained_pb();
        let frozen = m.frozen().expect("finalize froze");
        let tree = m.tree();
        for url in 0..5 {
            let mut want: Vec<u32> = tree
                .root(u(url))
                .map(|root| tree.links_of(root).map(|id| id.0).collect())
                .unwrap_or_default();
            let mut got = frozen.links_of(u(url)).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "links_of({url})");
        }
        for id in tree.iter_alive() {
            let node = tree.node(id);
            assert_eq!(
                frozen.grade(id.0),
                m.popularity().grade(node.url).level(),
                "grade of node {}",
                id.0
            );
        }
    }

    #[test]
    fn match_len_and_match_top_mirror_pointer_walks() {
        let m = trained_pb();
        let frozen = m.frozen().expect("finalize froze");
        let tree = m.tree();
        let contexts = [
            vec![u(0)],
            vec![u(0), u(1)],
            vec![u(1), u(2)],
            vec![u(9), u(1), u(2)],
            vec![u(0), u(1), u(2), u(3)],
        ];
        for id in tree.iter_alive() {
            for ctx in &contexts {
                assert_eq!(
                    frozen.match_top(id.0, ctx),
                    crate::context_index::match_top(tree, id, ctx).map(|t| t.0),
                    "match_top node {} ctx {ctx:?}",
                    id.0
                );
            }
        }
    }

    #[test]
    fn frozen_arena_is_smaller_than_pointer_arena() {
        let m = trained_standard();
        let frozen = m.frozen().expect("finalize froze");
        assert!(
            frozen.heap_bytes() < m.tree().memory_bytes(),
            "frozen {} bytes vs pointer {} bytes",
            frozen.heap_bytes(),
            m.tree().memory_bytes()
        );
    }

    #[test]
    fn from_parts_accepts_a_faithful_roundtrip() {
        let m = trained_pb();
        let f = m.frozen().expect("finalize froze").clone();
        let parts = FrozenParts {
            urls: f.urls.clone(),
            counts: f.counts.clone(),
            depths: f.depths.clone(),
            parents: f.parents.clone(),
            grades: f.grades.clone(),
            dup_bits: f.dup_bits.clone(),
            child_offsets: f.child_offsets.clone(),
            child_entries: f.child_entries.clone(),
            roots: f.roots.clone(),
            link_offsets: f.link_offsets.clone(),
            link_entries: f.link_entries.clone(),
        };
        let back = FrozenTree::from_parts(parts).expect("faithful parts validate");
        assert_eq!(back, f);
    }

    #[test]
    fn from_parts_rejects_malformed_structure() {
        let m = trained_pb();
        let f = m.frozen().expect("finalize froze");
        let parts = |mutate: &dyn Fn(&mut FrozenParts)| {
            let mut p = FrozenParts {
                urls: f.urls.clone(),
                counts: f.counts.clone(),
                depths: f.depths.clone(),
                parents: f.parents.clone(),
                grades: f.grades.clone(),
                dup_bits: f.dup_bits.clone(),
                child_offsets: f.child_offsets.clone(),
                child_entries: f.child_entries.clone(),
                roots: f.roots.clone(),
                link_offsets: f.link_offsets.clone(),
                link_entries: f.link_entries.clone(),
            };
            mutate(&mut p);
            p
        };
        // Length disagreement.
        assert!(FrozenTree::from_parts(parts(&|p| {
            p.counts.pop();
        }))
        .is_err());
        // Non-monotone child offsets.
        assert!(FrozenTree::from_parts(parts(&|p| {
            if p.child_offsets.len() > 2 {
                p.child_offsets[1] = u32::MAX - 1;
            }
        }))
        .is_err());
        // Out-of-bounds child entry.
        assert!(FrozenTree::from_parts(parts(&|p| {
            if let Some(e) = p.child_entries.first_mut() {
                e.1 = u32::MAX - 1;
            }
        }))
        .is_err());
        // Unsorted root table.
        assert!(
            FrozenTree::from_parts(parts(&|p| {
                p.roots.reverse();
            }))
            .is_err()
                || f.roots.len() < 2
        );
        // Link offsets disagreeing with entries.
        assert!(FrozenTree::from_parts(parts(&|p| {
            p.link_entries.push(0);
        }))
        .is_err());
    }

    #[test]
    fn strategy_selector_prefers_scan_for_sparse_buckets() {
        let sparse = IndexOccupancy {
            buckets: 1000,
            max_bucket: 1,
            dirty_groups: 0,
        };
        assert_eq!(choose_strategy(1000, sparse), MatchStrategy::FrozenScan);
        let dense = IndexOccupancy {
            buckets: 1000,
            max_bucket: 2,
            dirty_groups: 0,
        };
        assert_eq!(
            choose_strategy(2500, dense),
            MatchStrategy::FingerprintIndex
        );
        let skewed = IndexOccupancy {
            buckets: 1000,
            max_bucket: 64,
            dirty_groups: 0,
        };
        assert_eq!(
            choose_strategy(1100, skewed),
            MatchStrategy::FingerprintIndex
        );
        let empty = IndexOccupancy {
            buckets: 0,
            max_bucket: 0,
            dirty_groups: 0,
        };
        assert_eq!(choose_strategy(0, empty), MatchStrategy::FrozenScan);
    }

    #[test]
    fn lrs_freeze_survives_prune_and_compact() {
        let mut m = LrsPpm::new();
        for _ in 0..3 {
            m.train_session(&[u(0), u(1), u(2)]);
        }
        m.train_session(&[u(3), u(4)]); // below min_support: pruned away
        m.finalize();
        let frozen = m.frozen().expect("finalize froze");
        assert_eq!(frozen.len(), m.tree().node_count());
        assert!(frozen.root(u(3)).is_none(), "pruned root must not survive");
        assert!(frozen.descend(&[u(0), u(1), u(2)]).is_some());
    }
}
