//! Hashed context matching — the fingerprint fast path shared by all trees.
//!
//! The PPM models answer one question on every click: *which stored branch
//! nodes spell the last `ℓ` URLs of the live context?* The baseline answers
//! it by walking candidate nodes upward one URL at a time ([`Tree::descend`]
//! for the suffix-rooted models, an occurrence scan for PB-PPM). This module
//! replaces that scan with a rolling-hash fingerprint index:
//!
//! * every node carries a polynomial **path hash** of its root-to-node URL
//!   sequence, `P(node) = P(parent)·B + h(url)` (wrapping arithmetic,
//!   see [`Tree::rebuild_path_hashes`]);
//! * the hash of any *window* of `ℓ` URLs ending at a node is recovered in
//!   O(1) from two path hashes: `W = P(node) − P(ancestor_ℓ)·B^ℓ`;
//! * the live context's suffix hashes obey the same recurrence
//!   ([`ContextHashes`]), so "which nodes match the last `ℓ` clicks?"
//!   becomes one bucket lookup keyed by `(ℓ, W)`.
//!
//! Hash-bucket collisions are possible (64-bit fingerprints, no chaining of
//! URL ids), so every candidate is **verified** with the original upward
//! walk before it is used ([`match_top`]). The fast path is therefore
//! bit-identical to the scan it replaces — the property tests in
//! `tests/model_properties.rs` pin exactly that.
//!
//! For the windows mode the index goes one step further: a popular URL's
//! length-1 bucket holds *every* occurrence of that URL, so answering a
//! one-click context by iterating the bucket would be the very occurrence
//! scan the index exists to replace. [`ContextIndex::windows`] therefore
//! precomputes a [`WindowGroup`] per bucket — the summed parent count and
//! per-successor vote totals of all members, sub-totalled by the URL each
//! member's stored path *extends* with above the window. A clean bucket is
//! verified against the query with a single representative walk, and
//! PB-PPM's maximality exclusion becomes one subtraction instead of a
//! per-member filter. Buckets whose members genuinely disagree about the
//! window's content (a real 64-bit collision, detected at build time) are
//! flagged dirty and answered member by member as before.

use crate::fxhash::FxHashMap;
use crate::interner::UrlId;
use crate::tree::{NodeId, Tree};

/// Base of the rolling polynomial hash. Odd, so multiplication by it is a
/// bijection modulo 2^64 and windows of different content rarely collide.
pub const HASH_BASE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixes a URL id into a 64-bit digit for the polynomial hash
/// (splitmix64 finisher — consecutive interner ids must not hash close).
#[inline]
pub fn hash_url(url: UrlId) -> u64 {
    let mut z = u64::from(url.0).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds the window length into the fingerprint so a length-2 window never
/// shares a bucket with a length-3 window of the same rolling hash.
#[inline]
pub(crate) fn bucket_key(len: usize, hash: u64) -> u64 {
    hash ^ (len as u64).wrapping_mul(0xA24B_AED4_963E_E407)
}

/// Rolling hashes of the suffixes of a live context, reusable across calls.
///
/// After [`ContextHashes::compute`], `suffix_hash(ℓ)` equals the path hash
/// a tree branch spelling the last `ℓ` context URLs would carry.
#[derive(Debug, Clone, Default)]
pub struct ContextHashes {
    suffix: Vec<u64>,
}

impl ContextHashes {
    /// Creates an empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the hashes of the suffixes of `context` up to `max_len`
    /// URLs, replacing any previous contents.
    pub fn compute(&mut self, context: &[UrlId], max_len: usize) {
        self.suffix.clear();
        let mut h = 0u64;
        let mut pow = 1u64;
        for &url in context.iter().rev().take(max_len) {
            h = h.wrapping_add(hash_url(url).wrapping_mul(pow));
            pow = pow.wrapping_mul(HASH_BASE);
            self.suffix.push(h);
        }
    }

    /// Longest suffix length available (≤ the `max_len` given to `compute`).
    pub fn max_len(&self) -> usize {
        self.suffix.len()
    }

    /// The rolling hash of the last `len` context URLs (`1 ≤ len ≤ max_len`).
    #[inline]
    pub fn suffix_hash(&self, len: usize) -> u64 {
        self.suffix[len - 1]
    }
}

/// Verifies that the upward path ending at `node` spells `suffix` (oldest
/// URL topmost), returning the topmost matched node on success.
///
/// This is the collision check that keeps the hashed fast path bit-identical
/// to the original walk: a bucket hit is only a *candidate* until this
/// passes.
pub fn match_top(tree: &Tree, node: NodeId, suffix: &[UrlId]) -> Option<NodeId> {
    let mut cur = node;
    let mut iter = suffix.iter().rev();
    let &last = iter.next()?;
    if tree.node(cur).url != last {
        return None;
    }
    for &url in iter {
        let parent = tree.node(cur).parent;
        if parent.is_none() {
            return None; // stored path is shorter than the suffix
        }
        cur = parent;
        if tree.node(cur).url != url {
            return None;
        }
    }
    Some(cur)
}

/// Precomputed vote aggregates for one windows-mode bucket.
///
/// All members of a clean bucket spell the same window of URLs, so the
/// answer to "the context's longest match is this window — what do its
/// occurrences predict?" is the same for every query and can be summed
/// once at build time. Members are sub-grouped by their **extension** —
/// the URL their stored path continues with *above* the window (`None`
/// when the window already starts at a branch root) — because PB-PPM's
/// grouping excludes members whose match would extend to a longer context
/// suffix: at query time that exclusion is a subtraction of one sub-group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowGroup {
    /// Representative member: one upward walk against it verifies the
    /// whole bucket's content against the query suffix.
    pub(crate) rep: NodeId,
    /// Build-time hash collision: members disagree about the window's
    /// content, so queries must verify and aggregate member by member.
    pub(crate) dirty: bool,
    /// Summed count of all members that have alive children (the group's
    /// vote denominator when nothing is excluded).
    pub(crate) total: u64,
    /// Per-successor vote totals over all voting members, sorted by URL.
    pub(crate) votes: Vec<(UrlId, u64)>,
    /// Sub-aggregates per extension URL, sorted by extension.
    pub(crate) subs: Vec<SubGroup>,
}

/// The slice of a [`WindowGroup`] contributed by members sharing one
/// extension URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SubGroup {
    /// URL the members' stored paths continue with above the window;
    /// `None` when the window starts at a branch root (never excluded).
    pub(crate) ext: Option<UrlId>,
    /// Summed count of this sub-group's voting members.
    pub(crate) total: u64,
    /// Per-successor vote totals, sorted by URL (a subset of the group's).
    pub(crate) votes: Vec<(UrlId, u64)>,
    /// The voting members themselves (for deferred used-path marking).
    pub(crate) voters: Vec<NodeId>,
    /// Their alive children (for deferred used-node marking).
    pub(crate) children: Vec<NodeId>,
}

impl WindowGroup {
    /// The sub-group whose members extend the window with `ext`, if any.
    #[inline]
    pub(crate) fn sub_for(&self, ext: UrlId) -> Option<&SubGroup> {
        self.subs
            .binary_search_by_key(&Some(ext), |s| s.ext)
            .ok()
            .map(|i| &self.subs[i])
    }
}

/// True when the length-`len` windows ending at `a` and `b` spell the same
/// URLs. Both nodes must be at depth ≥ `len` (guaranteed for filed window
/// entries).
fn same_window(tree: &Tree, a: NodeId, b: NodeId, len: usize) -> bool {
    let (mut x, mut y) = (a, b);
    for step in 0..len {
        if tree.node(x).url != tree.node(y).url {
            return false;
        }
        if step + 1 < len {
            x = tree.node(x).parent;
            y = tree.node(y).parent;
        }
    }
    true
}

/// Fingerprint → node-bucket index over a [`Tree`], keyed by
/// `(window length, rolling window hash)`.
///
/// Two build modes cover the two matching disciplines the models use:
///
/// * [`ContextIndex::full_paths`] — one entry per node, keyed by its full
///   root-to-node path. Standard and LRS PPM store every suffix as its own
///   branch, so a context can only ever match a *complete* root path; this
///   mode makes [`ContextIndex::longest_predictive`] a drop-in replacement
///   for [`Tree::longest_predictive_match`].
/// * [`ContextIndex::windows`] — one entry per node per window length up to
///   `max_order`. PB-PPM saves the suffix duplication (rule 4), so its
///   longest context match must be sought at interior nodes; this mode
///   replaces its linear occurrence scan.
///
/// Both builders rebuild the tree's path hashes first, so they want `&mut
/// Tree`; afterwards the index is immutable and lookups take `&self`, which
/// is what lets the evaluation engine share one model across worker threads.
/// Bucket-occupancy summary of a [`ContextIndex`]
/// (see [`ContextIndex::occupancy`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexOccupancy {
    /// Distinct `(window length, hash)` buckets.
    pub buckets: usize,
    /// Entries in the fullest bucket.
    pub max_bucket: usize,
    /// Windows-mode groups whose members collided (queried member by
    /// member instead of via the precomputed aggregate).
    pub dirty_groups: usize,
}

/// A windows-mode bucket under construction: the window length plus every
/// member node with its extension URL (`None` for window-terminal nodes).
type RawBucket = (usize, Vec<(NodeId, Option<UrlId>)>);

#[derive(Debug, Clone, Default)]
pub struct ContextIndex {
    pub(crate) buckets: FxHashMap<u64, Vec<NodeId>>,
    /// Windows mode only: precomputed aggregates per bucket, same keys as
    /// `buckets`. Empty in full-paths mode.
    pub(crate) groups: FxHashMap<u64, WindowGroup>,
    pub(crate) entries: usize,
}

impl ContextIndex {
    /// Builds the full-root-path index (standard/LRS matching discipline).
    pub fn full_paths(tree: &mut Tree) -> Self {
        tree.rebuild_path_hashes();
        let mut index = ContextIndex::default();
        for id in tree.iter_alive() {
            let node = tree.node(id);
            if node.link_dup {
                continue; // never reachable by descending from a root
            }
            index.insert(usize::from(node.depth), tree.path_hash(id), id);
        }
        index
    }

    /// Builds the all-windows index (PB-PPM matching discipline): every
    /// alive branch node is filed under each suffix window of its upward
    /// path, up to `max_order` URLs, and every bucket gets its
    /// [`WindowGroup`] vote aggregates precomputed.
    pub fn windows(tree: &mut Tree, max_order: usize) -> Self {
        tree.rebuild_path_hashes();
        let mut index = ContextIndex::default();
        // Phase 1: file every (node, window) entry, remembering the window
        // length and the member's extension URL per bucket.
        let mut raw: FxHashMap<u64, RawBucket> = FxHashMap::default();
        for id in tree.iter_alive() {
            let node = tree.node(id);
            if node.link_dup {
                continue;
            }
            let p_node = tree.path_hash(id);
            let max_len = usize::from(node.depth).min(max_order);
            let mut anc = id;
            let mut pow = 1u64;
            for len in 1..=max_len {
                pow = pow.wrapping_mul(HASH_BASE);
                let parent = tree.node(anc).parent;
                let above = if parent.is_none() {
                    0
                } else {
                    tree.path_hash(parent)
                };
                let hash = p_node.wrapping_sub(above.wrapping_mul(pow));
                let ext = if parent.is_none() {
                    None
                } else {
                    Some(tree.node(parent).url)
                };
                let entry = raw
                    .entry(bucket_key(len, hash))
                    .or_insert_with(|| (len, Vec::new()));
                entry.1.push((id, ext));
                if parent.is_none() {
                    break;
                }
                anc = parent;
            }
        }
        // Phase 2: aggregate each bucket into its WindowGroup.
        for (key, (len, members)) in raw {
            index.entries += members.len();
            let rep = members[0].0;
            let dirty = members
                .iter()
                .skip(1)
                .any(|&(m, _)| !same_window(tree, rep, m, len));
            let mut group = WindowGroup {
                rep,
                dirty,
                total: 0,
                votes: Vec::new(),
                subs: Vec::new(),
            };
            if !dirty {
                for &(m, ext) in &members {
                    let mut kids = tree.children_of(m).peekable();
                    if kids.peek().is_none() {
                        continue; // leaves never vote
                    }
                    let count = tree.node(m).count;
                    group.total += count;
                    let pos = match group.subs.iter().position(|s| s.ext == ext) {
                        Some(p) => p,
                        None => {
                            group.subs.push(SubGroup {
                                ext,
                                total: 0,
                                votes: Vec::new(),
                                voters: Vec::new(),
                                children: Vec::new(),
                            });
                            group.subs.len() - 1
                        }
                    };
                    let sub = &mut group.subs[pos];
                    sub.total += count;
                    sub.voters.push(m);
                    for (url, child, ccount) in kids {
                        sub.children.push(child);
                        match sub.votes.iter().position(|v| v.0 == url) {
                            Some(i) => sub.votes[i].1 += ccount,
                            None => sub.votes.push((url, ccount)),
                        }
                    }
                }
                group.subs.sort_by_key(|s| s.ext);
                let mut votes: Vec<(UrlId, u64)> = Vec::new();
                for sub in &mut group.subs {
                    sub.votes.sort_unstable_by_key(|v| v.0);
                    for &(url, count) in &sub.votes {
                        match votes.iter().position(|v| v.0 == url) {
                            Some(i) => votes[i].1 += count,
                            None => votes.push((url, count)),
                        }
                    }
                }
                votes.sort_unstable_by_key(|v| v.0);
                group.votes = votes;
            }
            index
                .buckets
                .insert(key, members.into_iter().map(|(m, _)| m).collect());
            index.groups.insert(key, group);
        }
        index
    }

    fn insert(&mut self, len: usize, hash: u64, id: NodeId) {
        self.buckets
            .entry(bucket_key(len, hash))
            .or_default()
            .push(id);
        self.entries += 1;
    }

    /// Unverified candidates whose window of length `len` hashes to `hash`.
    #[inline]
    pub fn candidates(&self, len: usize, hash: u64) -> &[NodeId] {
        self.buckets
            .get(&bucket_key(len, hash))
            .map_or(&[], Vec::as_slice)
    }

    /// The precomputed aggregate for the `(len, hash)` bucket, with the
    /// bucket key it is filed under (windows mode only).
    #[inline]
    pub(crate) fn group(&self, len: usize, hash: u64) -> Option<(u64, &WindowGroup)> {
        let key = bucket_key(len, hash);
        self.groups.get(&key).map(|g| (key, g))
    }

    /// Resolves a bucket key recorded in a
    /// [`crate::predictor::PredictUsage`] back to its aggregate.
    #[inline]
    pub(crate) fn group_by_key(&self, key: u64) -> Option<&WindowGroup> {
        self.groups.get(&key)
    }

    /// Test hook: flags every windows-mode group dirty, forcing queries
    /// down the per-member fallback path.
    #[cfg(test)]
    pub(crate) fn force_dirty(&mut self) {
        for g in self.groups.values_mut() {
            g.dirty = true;
        }
    }

    /// Total (node, window) entries filed.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Approximate resident bytes (for storage reporting alongside
    /// [`Tree::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<(u64, Vec<NodeId>)>()
            + self
                .buckets
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
            + self.groups.capacity() * std::mem::size_of::<(u64, WindowGroup)>()
            + self
                .groups
                .values()
                .map(|g| {
                    g.votes.capacity() * std::mem::size_of::<(UrlId, u64)>()
                        + g.subs.capacity() * std::mem::size_of::<SubGroup>()
                        + g.subs
                            .iter()
                            .map(|s| {
                                s.votes.capacity() * std::mem::size_of::<(UrlId, u64)>()
                                    + (s.voters.capacity() + s.children.capacity())
                                        * std::mem::size_of::<NodeId>()
                            })
                            .sum::<usize>()
                })
                .sum::<usize>()
    }

    /// Bucket occupancy for storage/telemetry gauges: `(buckets,
    /// largest bucket, dirty windows-mode groups)`. A dirty group fell back
    /// to per-member verification at query time, so the dirty count is the
    /// structural ceiling on slow-bucket lookups.
    pub fn occupancy(&self) -> IndexOccupancy {
        IndexOccupancy {
            buckets: self.buckets.len(),
            max_bucket: self.buckets.values().map(Vec::len).max().unwrap_or(0),
            dirty_groups: self.groups.values().filter(|g| g.dirty).count(),
        }
    }

    /// Hashed drop-in for [`Tree::longest_predictive_match`]: the deepest
    /// full-root-path suffix match of `context` that has at least one alive
    /// child. Only meaningful over a [`ContextIndex::full_paths`] index.
    pub fn longest_predictive(
        &self,
        tree: &Tree,
        context: &[UrlId],
        max_order: usize,
        hashes: &mut ContextHashes,
    ) -> Option<NodeId> {
        let len = context.len();
        let longest = len.min(max_order).min(usize::from(u8::MAX));
        hashes.compute(context, longest);
        for k in (1..=longest).rev() {
            let suffix = &context[len - k..];
            for &id in self.candidates(k, hashes.suffix_hash(k)) {
                let node = tree.node(id);
                if !node.alive || usize::from(node.depth) != k {
                    continue;
                }
                if match_top(tree, id, suffix).is_none() {
                    continue; // bucket collision
                }
                if tree.children_of(id).next().is_some() {
                    return Some(id);
                }
                // The verified node is unique for a full path (the tree is a
                // trie); a leaf match falls back to a shorter suffix.
                break;
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    fn chain_tree(paths: &[&[u32]]) -> Tree {
        let mut t = Tree::new();
        for p in paths {
            let path: Vec<UrlId> = p.iter().map(|&n| u(n)).collect();
            t.insert_path(&path, usize::MAX);
        }
        t
    }

    #[test]
    fn suffix_hash_matches_path_hash_of_equal_branch() {
        // A branch spelling [7, 3, 9] must carry the same hash as the
        // length-3 suffix of any context ending in ... 7 3 9.
        let mut t = chain_tree(&[&[7, 3, 9]]);
        t.rebuild_path_hashes();
        let node = t.descend(&[u(7), u(3), u(9)]).unwrap();
        let mut h = ContextHashes::new();
        h.compute(&[u(1), u(7), u(3), u(9)], 3);
        assert_eq!(h.suffix_hash(3), t.path_hash(node));
    }

    #[test]
    fn window_entries_cover_interior_suffixes() {
        let mut t = chain_tree(&[&[1, 2, 3]]);
        let idx = ContextIndex::windows(&mut t, 8);
        // Node "3" is indexed under windows [3], [2,3], [1,2,3].
        let mut h = ContextHashes::new();
        h.compute(&[u(2), u(3)], 2);
        let node3 = t.descend(&[u(1), u(2), u(3)]).unwrap();
        assert!(idx.candidates(2, h.suffix_hash(2)).contains(&node3));
        h.compute(&[u(3)], 1);
        assert!(idx.candidates(1, h.suffix_hash(1)).contains(&node3));
        assert_eq!(idx.len(), 1 + 2 + 3);
    }

    #[test]
    fn window_groups_aggregate_votes_by_extension() {
        // Two branches share the interior window [2, 3]; its group sums
        // both "3" nodes and keeps one sub-aggregate per extension URL.
        let mut t = chain_tree(&[&[1, 2, 3, 4], &[5, 2, 3, 6]]);
        let idx = ContextIndex::windows(&mut t, 8);
        let mut h = ContextHashes::new();
        h.compute(&[u(2), u(3)], 2);
        let (_, g) = idx.group(2, h.suffix_hash(2)).unwrap();
        assert!(!g.dirty);
        assert_eq!(g.total, 2);
        assert_eq!(g.votes, vec![(u(4), 1), (u(6), 1)]);
        assert_eq!(g.subs.len(), 2);
        let s1 = g.sub_for(u(1)).unwrap();
        assert_eq!((s1.total, s1.votes.clone()), (1, vec![(u(4), 1)]));
        assert_eq!(s1.voters.len(), 1);
        assert_eq!(s1.children.len(), 1);
        assert!(g.sub_for(u(9)).is_none());
        // A window starting at a branch root has no extension.
        h.compute(&[u(1), u(2)], 2);
        let (_, g) = idx.group(2, h.suffix_hash(2)).unwrap();
        assert_eq!(g.subs.len(), 1);
        assert_eq!(g.subs[0].ext, None);
        // Leaves are members but never voters: the length-1 bucket of "4".
        h.compute(&[u(4)], 1);
        let (_, g) = idx.group(1, h.suffix_hash(1)).unwrap();
        assert_eq!(g.total, 0);
        assert!(g.votes.is_empty());
        assert_eq!(idx.candidates(1, h.suffix_hash(1)).len(), 1);
    }

    #[test]
    fn match_top_rejects_wrong_paths() {
        let t = {
            let mut t = chain_tree(&[&[1, 2, 3]]);
            t.rebuild_path_hashes();
            t
        };
        let node = t.descend(&[u(1), u(2), u(3)]).unwrap();
        assert!(match_top(&t, node, &[u(2), u(3)]).is_some());
        assert!(match_top(&t, node, &[u(9), u(3)]).is_none());
        assert!(match_top(&t, node, &[u(3)]).is_some());
        // Suffix longer than the stored path: no match.
        assert!(match_top(&t, node, &[u(0), u(1), u(2), u(3)]).is_none());
        assert!(match_top(&t, node, &[]).is_none());
    }

    #[test]
    fn longest_predictive_agrees_with_tree_walk() {
        let mut t = chain_tree(&[&[1, 2, 3], &[2, 3, 4], &[3, 4], &[5]]);
        let idx = ContextIndex::full_paths(&mut t);
        let mut h = ContextHashes::new();
        for ctx in [
            vec![u(1), u(2)],
            vec![u(2), u(3)],
            vec![u(9), u(2), u(3)],
            vec![u(3)],
            vec![u(5)], // leaf-only root: must fall through to None
            vec![u(99)],
            vec![],
        ] {
            for order in [1usize, 2, 8] {
                assert_eq!(
                    idx.longest_predictive(&t, &ctx, order, &mut h),
                    t.longest_predictive_match(&ctx, order),
                    "ctx {ctx:?} order {order}"
                );
            }
        }
    }
}
