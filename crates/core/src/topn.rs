//! The **Top-N** baseline — Markatos & Chronaki's "Top-10 approach to
//! prefetching on the Web" (ICS-FORTH TR-173), cited in the paper's related
//! work: "Web servers regularly push their most popular documents to Web
//! proxies, and proxies then push those documents to the active clients."
//!
//! The model ignores context entirely: it always predicts the server's N
//! most popular documents, with probabilities proportional to their share
//! of training accesses. It is the purest popularity-only strategy, and
//! bounding PB-PPM against it separates how much of PB-PPM's win comes from
//! *popularity* alone versus from the Markov structure.

use crate::interner::UrlId;
use crate::predictor::{ModelKind, PredictUsage, Prediction, Predictor};
use crate::stats::ModelStats;

/// Top-N popular-documents prediction model.
#[derive(Debug, Clone)]
pub struct TopN {
    n: usize,
    counts: Vec<u64>,
    total: u64,
    /// `(url, count)` of the N most popular documents, best first.
    top: Vec<(UrlId, u64)>,
    used: bool,
    finalized: bool,
}

impl TopN {
    /// Creates a Top-N model (Markatos's paper used N = 10).
    pub fn new(n: usize) -> Self {
        Self {
            n: n.max(1),
            counts: Vec::new(),
            total: 0,
            top: Vec::new(),
            used: false,
            finalized: false,
        }
    }

    /// The classic Top-10 configuration.
    pub fn top10() -> Self {
        Self::new(10)
    }

    /// The current top list (after [`TopN::finalize`]), best first.
    pub fn top_list(&self) -> &[(UrlId, u64)] {
        &self.top
    }
}

impl Predictor for TopN {
    fn kind(&self) -> ModelKind {
        ModelKind::TopN { n: self.n }
    }

    fn train_session(&mut self, session: &[UrlId]) {
        debug_assert!(!self.finalized, "train_session after finalize");
        for &url in session {
            let idx = url.index();
            if idx >= self.counts.len() {
                self.counts.resize(idx + 1, 0);
            }
            self.counts[idx] += 1;
            self.total += 1;
        }
    }

    #[allow(clippy::cast_possible_truncation)] // `counts` is indexed by u32 ids
    fn finalize(&mut self) {
        debug_assert!(!self.finalized, "finalize called twice");
        let mut ranked: Vec<(UrlId, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (UrlId(i as u32), c))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(self.n);
        self.top = ranked;
        self.finalized = true;
    }

    fn predict_ro(&self, context: &[UrlId], out: &mut Vec<Prediction>, usage: &mut PredictUsage) {
        debug_assert!(self.finalized, "predict before finalize");
        out.clear();
        let Some(&current) = context.last() else {
            return;
        };
        if self.total == 0 {
            return;
        }
        usage.touched = true;
        for &(url, count) in &self.top {
            if url != current {
                out.push(Prediction::new(url, count as f64 / self.total as f64));
            }
        }
    }

    fn apply_usage(&mut self, usage: &PredictUsage) {
        self.used |= usage.touched;
    }

    /// Storage: one node per remembered top document.
    fn node_count(&self) -> usize {
        self.top.len()
    }

    fn stats(&self) -> ModelStats {
        ModelStats {
            nodes: self.top.len(),
            roots: self.top.len(),
            max_depth: u8::from(!self.top.is_empty()),
            total_paths: self.top.len(),
            used_paths: if self.used { self.top.len() } else { 0 },
            memory_bytes: self.top.capacity() * std::mem::size_of::<(UrlId, u64)>()
                + self.counts.capacity() * std::mem::size_of::<u64>(),
            ..ModelStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    #[test]
    fn ranks_by_count() {
        let mut m = TopN::new(2);
        m.train_session(&[u(0), u(1), u(1), u(2), u(2), u(2)]);
        m.finalize();
        assert_eq!(m.top_list(), &[(u(2), 3), (u(1), 2)]);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn predictions_are_popularity_shares_and_skip_current() {
        let mut m = TopN::new(3);
        m.train_session(&[u(0), u(0), u(0), u(1)]);
        m.finalize();
        let mut out = Vec::new();
        m.predict(&[u(9)], &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].url, u(0));
        assert!((out[0].prob - 0.75).abs() < 1e-12);
        // The current document itself is never suggested.
        m.predict(&[u(0)], &mut out);
        assert!(out.iter().all(|p| p.url != u(0)));
    }

    #[test]
    fn context_does_not_matter() {
        let mut m = TopN::top10();
        m.train_session(&[u(0), u(1), u(2)]);
        m.finalize();
        let mut a = Vec::new();
        let mut b = Vec::new();
        m.predict(&[u(5), u(6), u(7)], &mut a);
        m.predict(&[u(7)], &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut m = TopN::new(2);
        m.train_session(&[u(3), u(1), u(2)]);
        m.finalize();
        assert_eq!(m.top_list(), &[(u(1), 1), (u(2), 1)]);
    }

    #[test]
    fn empty_training_is_safe() {
        let mut m = TopN::top10();
        m.finalize();
        let mut out = vec![Prediction::new(u(0), 1.0)];
        m.predict(&[u(0)], &mut out);
        assert!(out.is_empty());
        assert_eq!(m.node_count(), 0);
    }
}
