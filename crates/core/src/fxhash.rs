//! A small, fast, non-cryptographic hasher (the rustc "Fx" hash).
//!
//! The default `SipHash 1-3` of `std::collections::HashMap` provides HashDoS
//! resistance this workload does not need: keys are internally assigned
//! `u32` ids, not attacker-controlled strings. The Fx multiply-rotate hash
//! is the standard high-performance replacement (see the Rust Performance
//! Book, "Hashing"); it is tiny, so we implement it here rather than pull in
//! an extra dependency.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hash.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc multiply-rotate hasher.
///
/// Quality is low compared to SipHash but throughput is far higher,
/// especially for the 4-byte integer keys (URL ids, client ids, node ids)
/// that dominate this crate.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_to_hash(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            self.add_to_hash(u64::from(u16::from_le_bytes(
                bytes[..2].try_into().unwrap(),
            )));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"/index.html"), hash_bytes(b"/index.html"));
    }

    #[test]
    fn distinguishes_close_inputs() {
        assert_ne!(hash_bytes(b"/a"), hash_bytes(b"/b"));
        assert_ne!(hash_bytes(b"\x01"), hash_bytes(b"\x02"));
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ba"));
    }

    #[test]
    fn integer_writes_differ_from_each_other() {
        let mut a = FxHasher::default();
        a.write_u32(7);
        let mut b = FxHasher::default();
        b.write_u32(8);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn multi_word_write_covers_tail_lengths() {
        // 8-, 4-, 2- and 1-byte tails must all contribute to the hash.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=17 {
            let bytes = vec![0xabu8; len];
            assert!(seen.insert(hash_bytes(&bytes)), "collision at len {len}");
        }
    }
}
