//! Deterministic parallelism helpers shared by training, evaluation, and
//! ingestion.
//!
//! Everything parallel in this workspace follows one discipline: inputs are
//! borrowed immutably, work is split into **contiguous** partitions (or
//! pulled dynamically from an atomic counter when costs vary wildly), and
//! results are merged back **in partition order** so the outcome is
//! bit-identical at every thread count. The thread-count knobs
//! (`--threads` flags, [`THREADS_ENV`]) therefore only change wall time,
//! never results.
//!
//! These helpers lived in `pbppm-sim::sweep` while only the figure sweeps
//! and the eval engine were parallel; the parallel training path in
//! [`crate::pb`]/[`crate::standard`]/[`crate::lrs`] and the chunked
//! ingestion in `pbppm-trace` pulled them down into the core crate
//! (`pbppm-sim` re-exports them unchanged).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count wherever a thread count
/// of `0` ("auto") is in effect. CLI `--threads` flags and explicit config
/// fields take precedence over it.
pub const THREADS_ENV: &str = "PBPPM_THREADS";

/// Parses a `PBPPM_THREADS`-style worker count: a positive integer.
/// Rejects zero, negatives, and non-numeric input with a message naming
/// the variable and the offending value.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => Err(format!(
            "invalid {THREADS_ENV} value \"0\": expected a positive worker count \
             (unset the variable for auto parallelism)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "invalid {THREADS_ENV} value {trimmed:?}: expected a positive integer"
        )),
    }
}

/// Reads and validates `PBPPM_THREADS`. `Ok(None)` when unset; `Err` with a
/// clear message when set to anything but a positive integer. Binaries call
/// this at startup so a typo fails loudly instead of silently running on
/// the wrong worker count.
pub fn threads_from_env() -> Result<Option<usize>, String> {
    match std::env::var(THREADS_ENV) {
        Ok(raw) => parse_threads(&raw).map(Some),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(format!("invalid {THREADS_ENV} value: not valid UTF-8"))
        }
    }
}

/// Resolves a requested worker count: `0` means auto — `PBPPM_THREADS` if
/// set to a positive integer, otherwise the machine's available
/// parallelism (serial execution if even that is unknown). An invalid
/// `PBPPM_THREADS` is reported (never a panic) and auto parallelism is
/// used; front-ends reject it earlier via [`threads_from_env`].
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    match threads_from_env() {
        Ok(Some(n)) => return n,
        Ok(None) => {}
        Err(msg) => pbppm_obs::obs_error!("{msg}; falling back to auto parallelism"),
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `0..len` into at most `parts` contiguous, near-equal ranges in
/// order. Partitioned-then-merged parallel work depends on contiguity:
/// partition `k` holds exactly the items sequential processing would reach
/// after partitions `0..k`, which is what makes merge-in-partition-order
/// reproduce the sequential outcome.
pub fn partition_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output, and reports completion counts: `progress(n)` is called after
/// the `n`-th item (in completion order, 1-based) finishes. Callers use
/// it for "k/total done" logging without owning an atomic counter of
/// their own — cross-thread coordination stays confined to this module.
pub fn parallel_map_progress<T, R, F, P>(items: &[T], threads: usize, f: F, progress: P) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    P: Fn(usize) + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = resolve_threads(threads).min(items.len());

    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = f(item);
                progress(i + 1);
                r
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Relaxed: the counters order nothing — `next` only hands
                // out distinct indices and `done` only counts completions;
                // the scope join is the synchronization point for results.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("sweep slot poisoned") = Some(r);
                // Relaxed: pure completion count, no ordering obligation.
                progress(done.fetch_add(1, Ordering::Relaxed) + 1);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("sweep slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Applies `f` to every item, in parallel, preserving input order in the
/// output. `threads == 0` (the default entry point [`parallel_map`]) uses
/// [`resolve_threads`]: `PBPPM_THREADS` or the available parallelism.
pub fn parallel_map_with<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_progress(items, threads, f, |_| {})
}

/// [`parallel_map_with`] with an auto-resolved worker count.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, 0, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], |&x: &u64| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_item() {
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map_with(&items, 8, |&x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn progress_reports_every_completion_once() {
        let items: Vec<u64> = (0..40).collect();
        for threads in [1, 4] {
            let seen = Mutex::new(Vec::new());
            let out = parallel_map_progress(
                &items,
                threads,
                |&x| x + 1,
                |n| seen.lock().unwrap().push(n),
            );
            assert_eq!(out.len(), 40, "threads={threads}");
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            // Completion counts are 1..=len, each reported exactly once.
            assert_eq!(seen, (1..=40).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn explicit_thread_counts() {
        let items: Vec<u64> = (0..20).collect();
        for threads in [1, 2, 3, 16, 100] {
            let out = parallel_map_with(&items, threads, |&x| x * x);
            assert_eq!(out[19], 361, "threads={threads}");
        }
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads("16"), Ok(16));
        assert_eq!(parse_threads(" 8 "), Ok(8), "whitespace is tolerated");
    }

    #[test]
    fn parse_threads_rejects_garbage_with_a_clear_message() {
        for bad in ["", "zero", "3.5", "-2", "0x10", "8 threads"] {
            let err = parse_threads(bad).unwrap_err();
            assert!(
                err.contains(THREADS_ENV) && err.contains("positive integer"),
                "unhelpful error for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn parse_threads_rejects_zero_explicitly() {
        let err = parse_threads("0").unwrap_err();
        assert!(err.contains("unset the variable"), "{err}");
    }

    #[test]
    fn explicit_count_wins_over_auto() {
        // Non-zero counts pass through untouched; zero resolves to >= 1.
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn partition_ranges_cover_exactly_once_in_order() {
        for (len, parts) in [(0, 4), (1, 4), (7, 3), (8, 3), (100, 7), (5, 1), (3, 100)] {
            let ranges = partition_ranges(len, parts);
            let mut covered = Vec::new();
            for r in &ranges {
                assert!(!r.is_empty(), "len={len} parts={parts}: empty range");
                covered.extend(r.clone());
            }
            assert_eq!(
                covered,
                (0..len).collect::<Vec<_>>(),
                "len={len} parts={parts}"
            );
            assert!(ranges.len() <= parts.max(1));
            // Near-equal: sizes differ by at most one.
            if let (Some(max), Some(min)) = (
                ranges.iter().map(ExactSizeIterator::len).max(),
                ranges.iter().map(ExactSizeIterator::len).min(),
            ) {
                assert!(max - min <= 1, "len={len} parts={parts}: {ranges:?}");
            }
        }
    }
}
