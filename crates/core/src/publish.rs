//! Epoch publication: single-writer, many-reader snapshot handoff.
//!
//! The sharded serving core pairs one writer (an [`crate::OnlinePbPpm`]
//! training and rebuilding) with many readers that must keep answering
//! predictions while a rebuild is in flight. The classic answer is the
//! epoch / arc-swap pattern: the writer clones the freshly rebuilt model
//! into an immutable [`Arc`] and publishes it atomically; readers hold on
//! to whichever `Arc` they last saw and only refresh when the epoch
//! counter tells them something new exists.
//!
//! The implementation here stays inside safe Rust (`#![forbid(unsafe_code)]`
//! is workspace law): the published slot is a `Mutex<Arc<T>>`, and the
//! epoch counter is an `AtomicU64` bumped *inside* the lock. Readers pay
//! one atomic load per request on the steady-state path — the lock is only
//! touched in the instant after a publish, to clone the new `Arc` into the
//! reader's local cache. Readers therefore never observe a torn value:
//! every [`EpochReader::current`] yields exactly one fully-published
//! snapshot, either the previous epoch's or the new one.
//!
//! The same module carries the client-shard router ([`shard_of`]): the
//! deterministic hash that assigns a client to a model shard, shared by
//! the serving core and its tests so routing can be pinned
//! thread-count-invariant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Shared state between one [`EpochPublisher`] and its readers.
struct EpochShared<T> {
    /// Publication counter; starts at 0 for the initial value and is
    /// incremented (inside the slot lock) on every publish.
    epoch: AtomicU64,
    /// The current snapshot. Swapped wholesale under the lock, so a reader
    /// cloning out of it always gets one consistent `Arc`.
    slot: Mutex<Arc<T>>,
}

/// Ignores mutex poisoning: the slot only ever holds a fully-constructed
/// `Arc`, so a panic on another thread cannot leave it torn.
fn lock_slot<T>(slot: &Mutex<Arc<T>>) -> std::sync::MutexGuard<'_, Arc<T>> {
    slot.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The single writer's handle: owns the right to publish new snapshots.
pub struct EpochPublisher<T> {
    shared: Arc<EpochShared<T>>,
}

impl<T> EpochPublisher<T> {
    /// Creates a publisher whose readers start out seeing `initial`
    /// (epoch 0).
    pub fn new(initial: T) -> Self {
        Self {
            shared: Arc::new(EpochShared {
                epoch: AtomicU64::new(0),
                slot: Mutex::new(Arc::new(initial)),
            }),
        }
    }

    /// Atomically replaces the published snapshot and returns the new
    /// epoch. Readers that already cloned the old `Arc` keep serving from
    /// it until they next check the epoch; nobody ever sees a mix.
    pub fn publish(&self, value: T) -> u64 {
        let mut guard = lock_slot(&self.shared.slot);
        *guard = Arc::new(value);
        // Bumped inside the lock so (epoch, slot) move together; Release
        // pairs with the readers' Acquire load.
        self.shared.epoch.fetch_add(1, Ordering::Release) + 1
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The currently published snapshot (takes the lock briefly).
    pub fn current(&self) -> Arc<T> {
        lock_slot(&self.shared.slot).clone()
    }

    /// A new reader handle, pre-warmed with the current snapshot.
    pub fn reader(&self) -> EpochReader<T> {
        let guard = lock_slot(&self.shared.slot);
        let cached = guard.clone();
        let seen = self.shared.epoch.load(Ordering::Acquire);
        drop(guard);
        EpochReader {
            shared: Arc::clone(&self.shared),
            seen,
            cached,
        }
    }
}

/// A reader's handle: caches the last snapshot it saw and refreshes it
/// only when the publisher's epoch moves. Cheap to clone — every reader
/// thread should own one.
pub struct EpochReader<T> {
    shared: Arc<EpochShared<T>>,
    seen: u64,
    cached: Arc<T>,
}

impl<T> Clone for EpochReader<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
            seen: self.seen,
            cached: Arc::clone(&self.cached),
        }
    }
}

impl<T> EpochReader<T> {
    /// The snapshot to answer from right now. Steady state (no publish
    /// since the last call) is one atomic load; after a publish the slot
    /// lock is taken once to clone the new `Arc` into the local cache.
    pub fn current(&mut self) -> &Arc<T> {
        if self.shared.epoch.load(Ordering::Acquire) != self.seen {
            let guard = lock_slot(&self.shared.slot);
            self.cached = guard.clone();
            // Read inside the lock: publishes bump the epoch while holding
            // it, so this pairing is exact.
            self.seen = self.shared.epoch.load(Ordering::Acquire);
        }
        &self.cached
    }

    /// The epoch of the snapshot [`EpochReader::current`] would return
    /// without refreshing (tests / telemetry).
    pub fn epoch_seen(&self) -> u64 {
        self.seen
    }
}

/// Deterministic client-to-shard assignment: Fx hash of the client name,
/// reduced modulo the shard count. Stable across runs, platforms and
/// thread counts — the same scheme (hash the client, nothing else) the
/// eval engine's client sharding relies on for its thread-count-invariant
/// merge.
pub fn shard_of(client: &str, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    use std::hash::Hasher;
    let mut h = crate::fxhash::FxHasher::default();
    h.write(client.as_bytes());
    usize::try_from(h.finish() % shards as u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_value_is_epoch_zero() {
        let p = EpochPublisher::new(41);
        assert_eq!(p.epoch(), 0);
        assert_eq!(*p.current(), 41);
        let mut r = p.reader();
        assert_eq!(**r.current(), 41);
        assert_eq!(r.epoch_seen(), 0);
    }

    #[test]
    fn publish_bumps_epoch_and_reaches_readers() {
        let p = EpochPublisher::new(0u64);
        let mut r = p.reader();
        assert_eq!(p.publish(7), 1);
        assert_eq!(p.publish(8), 2);
        assert_eq!(**r.current(), 8);
        assert_eq!(r.epoch_seen(), 2);
    }

    #[test]
    fn stale_readers_keep_their_snapshot_until_they_look() {
        let p = EpochPublisher::new(1u64);
        let mut r = p.reader();
        let before = Arc::clone(r.current());
        p.publish(2);
        // The old Arc stays valid and unchanged for as long as anyone
        // holds it — that is the whole point of the pattern.
        assert_eq!(*before, 1);
        assert_eq!(**r.current(), 2);
    }

    #[test]
    fn readers_never_observe_a_torn_snapshot() {
        // The published value is a pair with an invariant (a == b); a torn
        // read would break it. Four readers hammer the handle while the
        // writer publishes a thousand epochs.
        let p = EpochPublisher::new((0u64, 0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let mut r = p.reader();
                scope.spawn(move || {
                    let mut last_epoch = 0;
                    for _ in 0..10_000 {
                        let snap = r.current();
                        assert_eq!(snap.0, snap.1, "torn snapshot observed");
                        let e = r.epoch_seen();
                        assert!(e >= last_epoch, "epoch went backwards");
                        last_epoch = e;
                    }
                });
            }
            scope.spawn(|| {
                for k in 1..=1_000u64 {
                    p.publish((k, k));
                }
            });
        });
        assert_eq!(p.epoch(), 1_000);
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for shards in 1..=16 {
            for client in ["", "c0", "c1", "client-xyz", "/weird id"] {
                let s = shard_of(client, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(client, shards), "unstable assignment");
            }
        }
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    fn shard_of_spreads_clients() {
        // Not a statistical guarantee, just a sanity check that the hash
        // reduction is not degenerate for the ids loadgen generates.
        let shards = 8;
        let mut seen = vec![0usize; shards];
        for i in 0..256 {
            seen[shard_of(&format!("c{i}"), shards)] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "every shard gets some client: {seen:?}"
        );
    }
}
