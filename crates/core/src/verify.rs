//! Structural invariant verification for every model family.
//!
//! The paper's whole contribution is structural surgery on the prediction
//! tree — grade-capped branch heights (§3.4 rule 1/2), special links to
//! duplicated popular nodes (rule 3), root admission on popularity ascents
//! (rule 4), and the two post-build prunes (§3.4). Four independent
//! producers build or reshape that structure (offline training, the online
//! rebuild loop, pruning, and the binary snapshot codec), so this module
//! encodes *once* what a valid model is and lets everything else check
//! against it:
//!
//! * [`verify_model`] walks a model and returns an [`AuditReport`] of typed
//!   [`Violation`]s, each carrying the offending node's root-to-node URL
//!   path where one exists.
//! * [`runtime_audit`] is the `debug_assertions`-gated (and
//!   `PBPPM_AUDIT=1`-forced) hook every build/prune/rebuild site calls; it
//!   panics with the formatted report on the first violation.
//! * The `pbppm-audit` crate re-exports this API and adds snapshot-level
//!   entry points plus the adversarial corruption harness.
//!
//! One paper rule is deliberately *not* re-checked post hoc: rule 4 (root
//! admission) is a statement about the training stream — any URL may
//! legally head a branch because every session head roots one — so a
//! finished tree cannot falsify it. The checker instead verifies the root
//! *registry* is structurally sound in both directions.

use crate::context_index::ContextIndex;
use crate::interner::UrlId;
use crate::lrs::LrsPpm;
use crate::order1::Order1Markov;
use crate::pb::PbPpm;
use crate::pb_online::OnlinePbPpm;
use crate::popularity::{Grade, PopularityTable};
use crate::standard::StandardPpm;
use crate::tree::{NodeId, Tree};
use std::fmt;
use std::sync::OnceLock;

/// A borrowed view of any model the checker understands.
///
/// [`crate::predictor::ModelKind`] is a tag without data, so the audit API
/// takes this explicit by-reference enum instead.
pub enum ModelRef<'a> {
    /// The paper's popularity-based model.
    Pb(&'a PbPpm),
    /// Classic suffix-forest PPM.
    Standard(&'a StandardPpm),
    /// Longest-repeating-subsequence PPM.
    Lrs(&'a LrsPpm),
    /// Sliding-window online PB-PPM.
    OnlinePb(&'a OnlinePbPpm),
    /// First-order Markov baseline.
    Order1(&'a Order1Markov),
}

impl ModelRef<'_> {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ModelRef::Pb(_) => "pb",
            ModelRef::Standard(_) => "standard",
            ModelRef::Lrs(_) => "lrs",
            ModelRef::OnlinePb(_) => "online-pb",
            ModelRef::Order1(_) => "order1",
        }
    }
}

/// One structural invariant violation, with enough context to locate it.
///
/// `path` fields hold the offending node's root-to-node URL-id sequence.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A child entry's URL key differs from the child node's own URL.
    ChildUrlMismatch {
        /// Root-to-parent URL path.
        path: Vec<u32>,
        /// URL key under which the child is filed.
        entry_url: u32,
        /// URL the child node actually carries.
        child_url: u32,
    },
    /// A child's parent pointer does not point back at its parent.
    ChildParentMismatch {
        /// Root-to-parent URL path.
        path: Vec<u32>,
        /// URL of the child whose back-pointer is wrong.
        child_url: u32,
    },
    /// A child's stored depth is not its parent's depth plus one.
    ChildDepthMismatch {
        /// Root-to-child URL path.
        path: Vec<u32>,
        /// Depth the child should have.
        expected: u8,
        /// Depth the child carries.
        found: u8,
    },
    /// An alive non-root node is missing from its parent's child list.
    ChildNotLinked {
        /// Root-to-node URL path.
        path: Vec<u32>,
    },
    /// An alive node hangs off a dead parent.
    OrphanNode {
        /// Root-to-node URL path.
        path: Vec<u32>,
    },
    /// The summed counts of a node's alive children exceed its own count
    /// (training bumps every ancestor at least as often as any child, and
    /// pruning only removes counts — the sum can never exceed the parent).
    ChildCountExceedsParent {
        /// Root-to-parent URL path.
        path: Vec<u32>,
        /// The parent's transition count.
        parent_count: u64,
        /// Sum of the alive children's counts.
        children_sum: u64,
    },
    /// An alive parentless branch node is not in the root registry.
    RootNotRegistered {
        /// The node's URL.
        url: u32,
    },
    /// A root-registry entry points at a node that is not a depth-1
    /// parentless branch node for that URL.
    RootRegistrationInvalid {
        /// The registry key.
        url: u32,
    },
    /// A branch grows deeper than its cap — for PB-PPM the grade→height
    /// cap of the heading URL (§3.4 rules 1/2), for the bounded baselines
    /// their fixed height limit.
    HeightExceedsCap {
        /// Root-to-offending-node URL path.
        path: Vec<u32>,
        /// Heading URL's popularity grade, when the cap is grade-derived.
        grade: Option<u8>,
        /// The height cap in nodes.
        cap: u8,
        /// Actual walk depth of the offending node.
        depth: u8,
    },
    /// A special-link list hangs off a node that is not a branch root.
    LinkFromNonRoot {
        /// URL of the non-root link head.
        url: u32,
    },
    /// A special link points at a node not marked as a duplicated popular
    /// node.
    LinkTargetNotDup {
        /// URL of the branch head.
        head_url: u32,
        /// URL of the bad target.
        target_url: u32,
    },
    /// A special-link target is not attached directly under its root at
    /// depth 2.
    LinkTargetDetached {
        /// URL of the branch head.
        head_url: u32,
        /// URL of the detached target.
        target_url: u32,
    },
    /// A special link points back at the branch head's own URL.
    LinkSelf {
        /// URL of the branch head.
        head_url: u32,
    },
    /// A special-link target's grade neither exceeds the head's grade nor
    /// is the maximum grade (§3.4 rule 3).
    LinkGradeRule {
        /// URL of the branch head.
        head_url: u32,
        /// Grade of the branch head.
        head_grade: u8,
        /// URL of the duplicated node.
        target_url: u32,
        /// Grade of the duplicated node.
        target_grade: u8,
    },
    /// An alive duplicated node is not reachable through the link map of
    /// an alive root (dangling after prune/compact).
    LinkDupOrphaned {
        /// URL of the orphaned duplicate.
        url: u32,
    },
    /// A duplicated link node appears in a child list — duplicates hang
    /// off roots through the link map only.
    LinkDupMisplaced {
        /// Root-to-parent URL path of the child list it appears in.
        path: Vec<u32>,
    },
    /// A model family that never creates special links carries one.
    UnexpectedSpecialLink {
        /// URL of the offending node.
        url: u32,
    },
    /// A node references a URL id beyond the interner's symbol table.
    SymbolUnresolved {
        /// The unresolvable URL id.
        url: u32,
        /// Number of interned symbols.
        url_count: u64,
    },
    /// A stored popularity grade differs from the grade rederived from the
    /// count vector (§3.1's log₁₀ bucketing).
    GradeMismatch {
        /// The URL id with the forged grade.
        url: u32,
        /// Grade the table stores.
        stored: u8,
        /// Grade rederived from the counts.
        derived: u8,
    },
    /// A popularity table's derived scalars (max count, total accesses)
    /// disagree with its count vector.
    PopularityTotalsInconsistent {
        /// Which scalar disagrees.
        what: &'static str,
    },
    /// A finalized LRS tree keeps a node below the support threshold.
    SupportBelowThreshold {
        /// Root-to-node URL path.
        path: Vec<u32>,
        /// The node's count.
        count: u64,
        /// The model's threshold.
        min_support: u64,
    },
    /// An order-1 row's total differs from the sum of its successor counts.
    Order1RowTotalMismatch {
        /// The row's source URL.
        url: u32,
        /// Stored row total.
        total: u64,
        /// Actual sum over successors.
        sum: u64,
    },
    /// The fingerprint index's bucket structure diverges from a fresh
    /// rebuild over the same tree.
    IndexShapeDiverges {
        /// Human-readable description of the divergence.
        detail: String,
    },
    /// A fingerprint bucket's precomputed vote aggregate differs from a
    /// fresh reference recomputation — a stale index.
    IndexAggregateStale {
        /// Human-readable description of the stale aggregate.
        detail: String,
    },
    /// PB-PPM's URL→occurrences index diverges from a fresh scan.
    OccurrenceIndexDiverges {
        /// The URL whose occurrence list is wrong.
        url: u32,
    },
    /// The online wrapper's rebuild schedule counters are impossible.
    ScheduleInconsistent {
        /// Human-readable description.
        detail: String,
    },
    /// The online wrapper holds more sessions than its window capacity.
    WindowOverflow {
        /// Sessions held.
        len: u64,
        /// Window capacity.
        max: u64,
    },
    /// A snapshot payload failed to decode into a model at all.
    SnapshotRejected {
        /// The decoder's error message.
        detail: String,
    },
    /// The frozen arena's CSR structure is malformed (array length parity,
    /// offset monotonicity, index bounds, or per-row ordering).
    FrozenCsrMalformed {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// A frozen-arena field disagrees with the pointer tree it freezes
    /// (or with the rebuilt arena, for persisted copies).
    FrozenMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
    /// A frozen-arena aggregate (total mass, root table, link table)
    /// disagrees with the pointer tree's.
    FrozenAggregateMismatch {
        /// Human-readable description of the disagreement.
        detail: String,
    },
}

impl Violation {
    /// Stable kebab-case identifier of the violation class.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::ChildUrlMismatch { .. } => "child-url-mismatch",
            Violation::ChildParentMismatch { .. } => "child-parent-mismatch",
            Violation::ChildDepthMismatch { .. } => "child-depth-mismatch",
            Violation::ChildNotLinked { .. } => "child-not-linked",
            Violation::OrphanNode { .. } => "orphan-node",
            Violation::ChildCountExceedsParent { .. } => "child-count-exceeds-parent",
            Violation::RootNotRegistered { .. } => "root-not-registered",
            Violation::RootRegistrationInvalid { .. } => "root-registration-invalid",
            Violation::HeightExceedsCap { .. } => "height-exceeds-cap",
            Violation::LinkFromNonRoot { .. } => "link-from-non-root",
            Violation::LinkTargetNotDup { .. } => "link-target-not-dup",
            Violation::LinkTargetDetached { .. } => "link-target-detached",
            Violation::LinkSelf { .. } => "link-self",
            Violation::LinkGradeRule { .. } => "link-grade-rule",
            Violation::LinkDupOrphaned { .. } => "link-dup-orphaned",
            Violation::LinkDupMisplaced { .. } => "link-dup-misplaced",
            Violation::UnexpectedSpecialLink { .. } => "unexpected-special-link",
            Violation::SymbolUnresolved { .. } => "symbol-unresolved",
            Violation::GradeMismatch { .. } => "grade-mismatch",
            Violation::PopularityTotalsInconsistent { .. } => "popularity-totals-inconsistent",
            Violation::SupportBelowThreshold { .. } => "support-below-threshold",
            Violation::Order1RowTotalMismatch { .. } => "order1-row-total-mismatch",
            Violation::IndexShapeDiverges { .. } => "index-shape-diverges",
            Violation::IndexAggregateStale { .. } => "index-aggregate-stale",
            Violation::OccurrenceIndexDiverges { .. } => "occurrence-index-diverges",
            Violation::ScheduleInconsistent { .. } => "schedule-inconsistent",
            Violation::WindowOverflow { .. } => "window-overflow",
            Violation::SnapshotRejected { .. } => "snapshot-rejected",
            Violation::FrozenCsrMalformed { .. } => "frozen-csr-malformed",
            Violation::FrozenMismatch { .. } => "frozen-mismatch",
            Violation::FrozenAggregateMismatch { .. } => "frozen-aggregate-mismatch",
        }
    }

    /// The offending node's root-to-node URL path, when the violation is
    /// anchored at a tree node.
    #[must_use]
    pub fn path(&self) -> Option<&[u32]> {
        match self {
            Violation::ChildUrlMismatch { path, .. }
            | Violation::ChildParentMismatch { path, .. }
            | Violation::ChildDepthMismatch { path, .. }
            | Violation::ChildNotLinked { path }
            | Violation::OrphanNode { path }
            | Violation::ChildCountExceedsParent { path, .. }
            | Violation::HeightExceedsCap { path, .. }
            | Violation::LinkDupMisplaced { path }
            | Violation::SupportBelowThreshold { path, .. } => Some(path),
            _ => None,
        }
    }
}

fn fmt_path(path: &[u32]) -> String {
    let mut s = String::new();
    for (i, url) in path.iter().enumerate() {
        if i > 0 {
            s.push_str("->");
        }
        s.push_str(&url.to_string());
    }
    s
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ChildUrlMismatch {
                path,
                entry_url,
                child_url,
            } => write!(
                f,
                "child entry under [{}] filed as url {entry_url} but node carries url {child_url}",
                fmt_path(path)
            ),
            Violation::ChildParentMismatch { path, child_url } => write!(
                f,
                "child {child_url} of [{}] does not point back at its parent",
                fmt_path(path)
            ),
            Violation::ChildDepthMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "node [{}] stores depth {found}, expected {expected}",
                fmt_path(path)
            ),
            Violation::ChildNotLinked { path } => write!(
                f,
                "alive node [{}] is missing from its parent's child list",
                fmt_path(path)
            ),
            Violation::OrphanNode { path } => {
                write!(f, "alive node [{}] hangs off a dead parent", fmt_path(path))
            }
            Violation::ChildCountExceedsParent {
                path,
                parent_count,
                children_sum,
            } => write!(
                f,
                "children of [{}] sum to {children_sum} transitions, parent has only {parent_count}",
                fmt_path(path)
            ),
            Violation::RootNotRegistered { url } => {
                write!(f, "alive parentless node for url {url} is not a registered root")
            }
            Violation::RootRegistrationInvalid { url } => {
                write!(f, "root registry entry for url {url} is not a valid root node")
            }
            Violation::HeightExceedsCap {
                path,
                grade,
                cap,
                depth,
            } => match grade {
                Some(g) => write!(
                    f,
                    "branch [{}] reaches depth {depth}, over the grade-{g} cap of {cap}",
                    fmt_path(path)
                ),
                None => write!(
                    f,
                    "branch [{}] reaches depth {depth}, over the height cap of {cap}",
                    fmt_path(path)
                ),
            },
            Violation::LinkFromNonRoot { url } => {
                write!(f, "special links hang off non-root node for url {url}")
            }
            Violation::LinkTargetNotDup {
                head_url,
                target_url,
            } => write!(
                f,
                "special link {head_url} ~> {target_url} targets a non-duplicated node"
            ),
            Violation::LinkTargetDetached {
                head_url,
                target_url,
            } => write!(
                f,
                "special-link duplicate {target_url} of root {head_url} is not attached under it at depth 2"
            ),
            Violation::LinkSelf { head_url } => {
                write!(f, "root {head_url} links to a duplicate of itself")
            }
            Violation::LinkGradeRule {
                head_url,
                head_grade,
                target_url,
                target_grade,
            } => write!(
                f,
                "special link {head_url} (grade {head_grade}) ~> {target_url} (grade {target_grade}) breaks rule 3: target grade must exceed the head's or be maximal"
            ),
            Violation::LinkDupOrphaned { url } => write!(
                f,
                "duplicated node for url {url} dangles: no alive root links to it"
            ),
            Violation::LinkDupMisplaced { path } => write!(
                f,
                "duplicated link node appears in the child list of [{}]",
                fmt_path(path)
            ),
            Violation::UnexpectedSpecialLink { url } => write!(
                f,
                "model family never creates special links, yet url {url} carries one"
            ),
            Violation::SymbolUnresolved { url, url_count } => write!(
                f,
                "url id {url} does not resolve ({url_count} interned symbols)"
            ),
            Violation::GradeMismatch {
                url,
                stored,
                derived,
            } => write!(
                f,
                "url {url} stores grade {stored}, counts rederive grade {derived}"
            ),
            Violation::PopularityTotalsInconsistent { what } => {
                write!(f, "popularity table {what} disagrees with its count vector")
            }
            Violation::SupportBelowThreshold {
                path,
                count,
                min_support,
            } => write!(
                f,
                "finalized LRS node [{}] has count {count} < support threshold {min_support}",
                fmt_path(path)
            ),
            Violation::Order1RowTotalMismatch { url, total, sum } => write!(
                f,
                "order-1 row {url} stores total {total}, successors sum to {sum}"
            ),
            Violation::IndexShapeDiverges { detail } => {
                write!(f, "fingerprint index shape diverges from rebuild: {detail}")
            }
            Violation::IndexAggregateStale { detail } => {
                write!(f, "fingerprint index aggregate is stale: {detail}")
            }
            Violation::OccurrenceIndexDiverges { url } => write!(
                f,
                "occurrence index for url {url} diverges from a fresh scan"
            ),
            Violation::ScheduleInconsistent { detail } => {
                write!(f, "online rebuild schedule inconsistent: {detail}")
            }
            Violation::WindowOverflow { len, max } => {
                write!(f, "online window holds {len} sessions, capacity {max}")
            }
            Violation::SnapshotRejected { detail } => {
                write!(f, "snapshot payload failed to decode: {detail}")
            }
            Violation::FrozenCsrMalformed { detail } => {
                write!(f, "frozen arena CSR is malformed: {detail}")
            }
            Violation::FrozenMismatch { detail } => {
                write!(f, "frozen arena diverges from the pointer tree: {detail}")
            }
            Violation::FrozenAggregateMismatch { detail } => {
                write!(f, "frozen arena aggregate diverges: {detail}")
            }
        }
    }
}

/// Outcome of a [`verify_model`] run.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "an audit report is only useful if its violations are inspected"]
pub struct AuditReport {
    /// Which model family was audited.
    pub model: &'static str,
    /// Number of individual invariant checks performed.
    pub checks: u64,
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// An empty report for `model`.
    pub fn new(model: &'static str) -> Self {
        Self {
            model,
            checks: 0,
            violations: Vec::new(),
        }
    }

    /// A report for a payload that failed to decode at all.
    pub fn rejected(model: &'static str, detail: String) -> Self {
        Self {
            model,
            checks: 1,
            violations: vec![Violation::SnapshotRejected { detail }],
        }
    }

    /// True when no invariant was violated.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// True when a violation of the given [`Violation::kind`] is present.
    #[must_use]
    pub fn has(&self, kind: &str) -> bool {
        self.violations.iter().any(|v| v.kind() == kind)
    }

    #[inline]
    fn tick(&mut self) {
        self.checks += 1;
    }

    /// Serializes the report as a single JSON object (hand-rolled: the
    /// report must stay printable even when serde integration is what
    /// broke).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128 + self.violations.len() * 96);
        s.push_str("{\"model\":\"");
        s.push_str(self.model);
        s.push_str("\",\"checks\":");
        s.push_str(&self.checks.to_string());
        s.push_str(",\"clean\":");
        s.push_str(if self.is_clean() { "true" } else { "false" });
        s.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"kind\":\"");
            s.push_str(v.kind());
            s.push_str("\",\"message\":\"");
            json_escape_into(&v.to_string(), &mut s);
            s.push('"');
            if let Some(path) = v.path() {
                s.push_str(",\"path\":[");
                for (j, url) in path.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    s.push_str(&url.to_string());
                }
                s.push(']');
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "audit of {}: {} checks, {} violation(s)",
            self.model,
            self.checks,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  [{}] {v}", v.kind())?;
        }
        Ok(())
    }
}

fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                let hex = b"0123456789abcdef";
                out.push(char::from(hex[(b >> 4) as usize & 0xf]));
                out.push(char::from(hex[b as usize & 0xf]));
            }
            c => out.push(c),
        }
    }
}

/// The root-to-node URL-id path of `id`, cycle-guarded.
fn node_path(tree: &Tree, id: NodeId) -> Vec<u32> {
    let mut rev = Vec::new();
    let mut cur = id;
    let mut steps = 0usize;
    loop {
        rev.push(tree.nodes[cur.index()].url.0);
        steps += 1;
        let parent = tree.nodes[cur.index()].parent;
        if parent.is_none() || steps > tree.nodes.len() {
            break;
        }
        cur = parent;
    }
    rev.reverse();
    rev
}

/// Verifies the shared tree-shape invariants every model family obeys.
fn verify_tree(tree: &Tree, url_count: Option<u64>, report: &mut AuditReport) {
    for (i, node) in tree.nodes.iter().enumerate() {
        if !node.alive {
            continue;
        }
        let id = NodeId(u32::try_from(i).unwrap_or(u32::MAX));
        if let Some(count) = url_count {
            report.tick();
            if u64::from(node.url.0) >= count {
                report.violations.push(Violation::SymbolUnresolved {
                    url: node.url.0,
                    url_count: count,
                });
            }
        }

        // Child entries: url key, back-pointer, depth chaining, and no
        // duplicated link nodes hiding in a child list.
        let mut children_sum = 0u64;
        for &(entry_url, cid) in &node.children {
            let child = &tree.nodes[cid.index()];
            if !child.alive {
                continue;
            }
            report.tick();
            children_sum += child.count;
            if child.url != entry_url {
                report.violations.push(Violation::ChildUrlMismatch {
                    path: node_path(tree, id),
                    entry_url: entry_url.0,
                    child_url: child.url.0,
                });
            }
            if child.link_dup {
                report.violations.push(Violation::LinkDupMisplaced {
                    path: node_path(tree, id),
                });
                continue;
            }
            if child.parent != id {
                report.violations.push(Violation::ChildParentMismatch {
                    path: node_path(tree, id),
                    child_url: child.url.0,
                });
                continue;
            }
            let expected = node.depth.saturating_add(1);
            if child.depth != expected {
                report.violations.push(Violation::ChildDepthMismatch {
                    path: node_path(tree, cid),
                    expected,
                    found: child.depth,
                });
            }
        }
        report.tick();
        if children_sum > node.count {
            report.violations.push(Violation::ChildCountExceedsParent {
                path: node_path(tree, id),
                parent_count: node.count,
                children_sum,
            });
        }

        if node.parent.is_none() {
            // Forward registry check: every alive parentless branch node
            // must be its URL's registered root.
            if !node.link_dup {
                report.tick();
                if tree.roots.get(&node.url) != Some(&id) {
                    report
                        .violations
                        .push(Violation::RootNotRegistered { url: node.url.0 });
                }
            } else {
                report
                    .violations
                    .push(Violation::LinkDupOrphaned { url: node.url.0 });
            }
        } else {
            let parent = &tree.nodes[node.parent.index()];
            report.tick();
            if !parent.alive {
                if node.link_dup {
                    report
                        .violations
                        .push(Violation::LinkDupOrphaned { url: node.url.0 });
                } else {
                    report.violations.push(Violation::OrphanNode {
                        path: node_path(tree, id),
                    });
                }
            } else if node.link_dup {
                // An alive duplicate must be reachable via its root's
                // link list.
                report.tick();
                let linked = tree
                    .links
                    .get(&node.parent)
                    .is_some_and(|ts| ts.contains(&id));
                if !linked {
                    report
                        .violations
                        .push(Violation::LinkDupOrphaned { url: node.url.0 });
                }
            } else {
                // Reverse edge: the parent's child list must hold it.
                report.tick();
                let listed = parent
                    .children
                    .binary_search_by_key(&node.url, |&(u, _)| u)
                    .ok()
                    .map(|pos| parent.children[pos].1)
                    == Some(id);
                if !listed {
                    report.violations.push(Violation::ChildNotLinked {
                        path: node_path(tree, id),
                    });
                }
            }
        }
    }

    // Backward registry check: every registry entry must describe a valid
    // (possibly tombstoned — resurrectable) root node.
    for (&url, &id) in &tree.roots {
        report.tick();
        let node = &tree.nodes[id.index()];
        if node.url != url || !node.parent.is_none() || node.link_dup || node.depth != 1 {
            report
                .violations
                .push(Violation::RootRegistrationInvalid { url: url.0 });
        }
    }

    // Link lists: heads must be roots; alive targets must be well-formed
    // duplicates directly under their head. Dead targets are legal
    // tombstones until the next compaction.
    for (&root, targets) in &tree.links {
        let head = &tree.nodes[root.index()];
        if !head.alive {
            continue;
        }
        report.tick();
        if !head.parent.is_none() {
            report
                .violations
                .push(Violation::LinkFromNonRoot { url: head.url.0 });
            continue;
        }
        for &t in targets {
            let target = &tree.nodes[t.index()];
            if !target.alive {
                continue;
            }
            report.tick();
            if !target.link_dup {
                report.violations.push(Violation::LinkTargetNotDup {
                    head_url: head.url.0,
                    target_url: target.url.0,
                });
                continue;
            }
            if target.parent != root || target.depth != 2 {
                report.violations.push(Violation::LinkTargetDetached {
                    head_url: head.url.0,
                    target_url: target.url.0,
                });
            }
            if target.url == head.url {
                report.violations.push(Violation::LinkSelf {
                    head_url: head.url.0,
                });
            }
        }
    }
}

/// Walks each registered branch downward and reports nodes beyond `cap_of`'s
/// height cap for that branch. Walk depth is counted independently of the
/// stored `depth` fields, so a forged depth cannot hide a breach.
fn verify_heights(
    tree: &Tree,
    cap_of: impl Fn(UrlId) -> (Option<u8>, u8),
    report: &mut AuditReport,
) {
    for (&url, &root) in &tree.roots {
        if !tree.nodes[root.index()].alive {
            continue;
        }
        let (grade, cap) = cap_of(url);
        report.tick();
        let mut stack: Vec<(NodeId, u8)> = vec![(root, 1)];
        while let Some((id, depth)) = stack.pop() {
            if depth > cap {
                report.violations.push(Violation::HeightExceedsCap {
                    path: node_path(tree, id),
                    grade,
                    cap,
                    depth,
                });
                continue; // deeper nodes are implied; avoid a flood
            }
            for &(_, cid) in &tree.nodes[id.index()].children {
                if tree.nodes[cid.index()].alive && !tree.nodes[cid.index()].link_dup {
                    stack.push((cid, depth.saturating_add(1)));
                }
            }
        }
    }
}

/// Checks a popularity table's internal consistency by rederiving it from
/// its count vector (§3.1: grades are a pure function of the counts).
fn verify_popularity(pop: &PopularityTable, report: &mut AuditReport) {
    let derived = PopularityTable::from_counts(pop.counts().to_vec());
    report.tick();
    if pop.max_count() != derived.max_count() {
        report
            .violations
            .push(Violation::PopularityTotalsInconsistent { what: "max_count" });
    }
    report.tick();
    if pop.total_accesses() != derived.total_accesses() {
        report
            .violations
            .push(Violation::PopularityTotalsInconsistent { what: "total" });
    }
    for i in 0..pop.counts().len() {
        report.tick();
        let url = UrlId(u32::try_from(i).unwrap_or(u32::MAX));
        let stored = pop.grade(url);
        let fresh = derived.grade(url);
        if stored != fresh {
            report.violations.push(Violation::GradeMismatch {
                url: url.0,
                stored: stored.level(),
                derived: fresh.level(),
            });
        }
    }
}

/// Reports no-special-links for the model families that never create them.
fn verify_no_links(tree: &Tree, report: &mut AuditReport) {
    report.tick();
    for (&root, targets) in &tree.links {
        if tree.nodes[root.index()].alive && targets.iter().any(|&t| tree.nodes[t.index()].alive) {
            report.violations.push(Violation::UnexpectedSpecialLink {
                url: tree.nodes[root.index()].url.0,
            });
        }
    }
    for node in &tree.nodes {
        if node.alive && node.link_dup {
            report
                .violations
                .push(Violation::UnexpectedSpecialLink { url: node.url.0 });
        }
    }
}

/// Compares a stored fingerprint index against a fresh rebuild field by
/// field. Both builders file members in arena order, so a faithful stored
/// index is bit-identical to the rebuild.
fn verify_index(stored: &ContextIndex, fresh: &ContextIndex, report: &mut AuditReport) {
    report.tick();
    if stored.entries != fresh.entries {
        report.violations.push(Violation::IndexShapeDiverges {
            detail: format!(
                "{} entries stored, rebuild files {}",
                stored.entries, fresh.entries
            ),
        });
    }
    for (key, members) in &fresh.buckets {
        report.tick();
        match stored.buckets.get(key) {
            None => report.violations.push(Violation::IndexShapeDiverges {
                detail: format!("bucket {key:#x} missing"),
            }),
            Some(m) if m != members => report.violations.push(Violation::IndexShapeDiverges {
                detail: format!("bucket {key:#x} member list differs"),
            }),
            Some(_) => {}
        }
    }
    for key in stored.buckets.keys() {
        if !fresh.buckets.contains_key(key) {
            report.violations.push(Violation::IndexShapeDiverges {
                detail: format!("bucket {key:#x} has no counterpart in a rebuild"),
            });
        }
    }
    for (key, fg) in &fresh.groups {
        report.tick();
        let Some(sg) = stored.groups.get(key) else {
            report.violations.push(Violation::IndexShapeDiverges {
                detail: format!("group {key:#x} missing"),
            });
            continue;
        };
        if sg.rep != fg.rep || sg.dirty != fg.dirty {
            report.violations.push(Violation::IndexShapeDiverges {
                detail: format!("group {key:#x} representative/dirty flag differs"),
            });
            continue;
        }
        if sg.total != fg.total || sg.votes != fg.votes {
            report.violations.push(Violation::IndexAggregateStale {
                detail: format!(
                    "group {key:#x}: stored total {} / {} vote urls, recomputed total {} / {}",
                    sg.total,
                    sg.votes.len(),
                    fg.total,
                    fg.votes.len()
                ),
            });
            continue;
        }
        if sg.subs != fg.subs {
            report.violations.push(Violation::IndexAggregateStale {
                detail: format!("group {key:#x}: extension sub-aggregates differ"),
            });
        }
    }
    for key in stored.groups.keys() {
        if !fresh.groups.contains_key(key) {
            report.violations.push(Violation::IndexShapeDiverges {
                detail: format!("group {key:#x} has no counterpart in a rebuild"),
            });
        }
    }
}

/// Audits a frozen SoA/CSR arena against the pointer tree it claims to
/// freeze: structural CSR validation first (through the same gate the
/// snapshot codec uses), then per-node field parity under the identity
/// mapping, root/link table equality, grade rederivation against `pop`,
/// and a total-mass aggregate cross-check.
fn verify_frozen(
    tree: &Tree,
    frozen: &crate::frozen::FrozenTree,
    pop: Option<&PopularityTable>,
    report: &mut AuditReport,
) {
    use crate::frozen::{FrozenParts, FrozenTree};

    // CSR well-formedness. A malformed arena makes every index unreliable,
    // so field checks stop here when this fails.
    report.tick();
    let parts = FrozenParts {
        urls: frozen.urls.clone(),
        counts: frozen.counts.clone(),
        depths: frozen.depths.clone(),
        parents: frozen.parents.clone(),
        grades: frozen.grades.clone(),
        dup_bits: frozen.dup_bits.clone(),
        child_offsets: frozen.child_offsets.clone(),
        child_entries: frozen.child_entries.clone(),
        roots: frozen.roots.clone(),
        link_offsets: frozen.link_offsets.clone(),
        link_entries: frozen.link_entries.clone(),
    };
    if let Err(detail) = FrozenTree::from_parts(parts) {
        report.violations.push(Violation::FrozenCsrMalformed {
            detail: detail.to_owned(),
        });
        return;
    }

    // Identity mapping: freezing compacts, so frozen row i must be arena
    // slot i and every slot must be alive.
    report.tick();
    if frozen.len() != tree.node_count() || tree.node_count() != tree.arena_len() {
        report.violations.push(Violation::FrozenMismatch {
            detail: format!(
                "arena shape: frozen {} rows, tree {} alive of {} slots",
                frozen.len(),
                tree.node_count(),
                tree.arena_len()
            ),
        });
        return;
    }

    let mut frozen_mass = 0u64;
    let mut tree_mass = 0u64;
    for (i, node) in tree.nodes.iter().enumerate() {
        let Ok(fi) = u32::try_from(i) else { break };
        report.tick();
        let derived_grade = pop.map_or(0, |p| p.grade(node.url).level());
        if frozen.url(fi) != node.url
            || frozen.count(fi) != node.count
            || frozen.depth(fi) != node.depth
            || frozen.parent(fi) != node.parent.0
            || frozen.is_link_dup(fi) != node.link_dup
            || frozen.grade(fi) != derived_grade
        {
            report.violations.push(Violation::FrozenMismatch {
                detail: format!(
                    "node {i} ({}): frozen row fields diverge from the arena node",
                    node.url.0
                ),
            });
        }
        let tree_children: Vec<(UrlId, u32)> = tree
            .children_of(NodeId(fi))
            .map(|(u, c, _)| (u, c.0))
            .collect();
        if frozen.children(fi) != tree_children.as_slice() {
            report.violations.push(Violation::FrozenMismatch {
                detail: format!("node {i} ({}): frozen CSR row diverges", node.url.0),
            });
        }
        frozen_mass = frozen_mass.wrapping_add(frozen.count(fi));
        tree_mass = tree_mass.wrapping_add(node.count);
    }

    // Root and link tables, both directions.
    report.tick();
    if frozen.roots.len() != tree.roots.len() {
        report.violations.push(Violation::FrozenAggregateMismatch {
            detail: format!(
                "root table size: frozen {}, tree {}",
                frozen.roots.len(),
                tree.roots.len()
            ),
        });
    }
    for (&url, &id) in &tree.roots {
        report.tick();
        if frozen.root(url) != Some(id.0) {
            report.violations.push(Violation::FrozenMismatch {
                detail: format!("root {} missing or remapped in the frozen arena", url.0),
            });
            continue;
        }
        let tree_links: Vec<u32> = tree.links_of(id).map(|n| n.0).collect();
        if frozen.links_of(url) != tree_links.as_slice() {
            report.violations.push(Violation::FrozenMismatch {
                detail: format!(
                    "special links of root {} diverge in the frozen arena",
                    url.0
                ),
            });
        }
    }

    // Aggregate cross-check: same total transition mass on both sides.
    report.tick();
    if frozen_mass != tree_mass {
        report.violations.push(Violation::FrozenAggregateMismatch {
            detail: format!("total count mass: frozen {frozen_mass}, tree {tree_mass}"),
        });
    }
}

/// Compares a frozen arena persisted in a snapshot against the arena
/// recompiled from the decoded tree. Serving always uses the rebuild;
/// this check exists so the audit tool surfaces a forged or stale
/// persisted copy instead of silently ignoring it.
pub fn verify_frozen_matches(
    rebuilt: Option<&crate::frozen::FrozenTree>,
    persisted: &crate::frozen::FrozenTree,
    report: &mut AuditReport,
) {
    report.tick();
    match rebuilt {
        None => report.violations.push(Violation::FrozenMismatch {
            detail: "snapshot persists a frozen arena but the decoded model compiles none"
                .to_owned(),
        }),
        Some(rebuilt) if rebuilt != persisted => {
            report.violations.push(Violation::FrozenMismatch {
                detail: "persisted frozen arena differs from the arena recompiled from the \
                         decoded tree"
                    .to_owned(),
            });
        }
        Some(_) => {}
    }
}

fn verify_pb(m: &PbPpm, url_count: Option<u64>, report: &mut AuditReport) {
    verify_tree(&m.tree, url_count, report);
    let cfg = m.cfg;
    let pop = &m.pop;
    verify_heights(
        &m.tree,
        |url| {
            let g = pop.grade(url);
            (Some(g.level()), cfg.height_for(g))
        },
        report,
    );
    verify_popularity(pop, report);

    // Rule 3's grade condition for every alive special link.
    for (&root, targets) in &m.tree.links {
        let head = &m.tree.nodes[root.index()];
        if !head.alive {
            continue;
        }
        let head_grade = pop.grade(head.url);
        for &t in targets {
            let target = &m.tree.nodes[t.index()];
            if !target.alive {
                continue;
            }
            report.tick();
            let target_grade = pop.grade(target.url);
            if !(target_grade > head_grade || target_grade == Grade::MAX) {
                report.violations.push(Violation::LinkGradeRule {
                    head_url: head.url.0,
                    head_grade: head_grade.level(),
                    target_url: target.url.0,
                    target_grade: target_grade.level(),
                });
            }
        }
    }

    // The occurrence and fingerprint indexes are built at finalize; before
    // that they are legitimately empty/stale.
    if !m.finalized {
        return;
    }
    let mut fresh_by_url: crate::fxhash::FxHashMap<UrlId, Vec<NodeId>> =
        crate::fxhash::FxHashMap::default();
    for id in m.tree.iter_alive() {
        let node = m.tree.node(id);
        if !node.link_dup {
            fresh_by_url.entry(node.url).or_default().push(id);
        }
    }
    report.tick();
    for (url, ids) in &fresh_by_url {
        if m.by_url.get(url) != Some(ids) {
            report
                .violations
                .push(Violation::OccurrenceIndexDiverges { url: url.0 });
        }
    }
    for url in m.by_url.keys() {
        if !fresh_by_url.contains_key(url) {
            report
                .violations
                .push(Violation::OccurrenceIndexDiverges { url: url.0 });
        }
    }
    let mut clone = m.tree.clone();
    let fresh = ContextIndex::windows(&mut clone, m.cfg.max_order);
    verify_index(&m.index, &fresh, report);
    if let Some(frozen) = &m.frozen {
        verify_frozen(&m.tree, frozen, Some(&m.pop), report);
    }
}

fn verify_standard(m: &StandardPpm, url_count: Option<u64>, report: &mut AuditReport) {
    verify_tree(&m.tree, url_count, report);
    verify_no_links(&m.tree, report);
    if let Some(cap) = m.max_height {
        verify_heights(&m.tree, |_| (None, cap.max(1)), report);
    }
    if m.finalized {
        if let Some(index) = &m.index {
            let mut clone = m.tree.clone();
            let fresh = ContextIndex::full_paths(&mut clone);
            verify_index(index, &fresh, report);
        }
        if let Some(frozen) = &m.frozen {
            verify_frozen(&m.tree, frozen, None, report);
        }
    }
}

fn verify_lrs(m: &LrsPpm, url_count: Option<u64>, report: &mut AuditReport) {
    verify_tree(&m.tree, url_count, report);
    verify_no_links(&m.tree, report);
    let cap = u8::try_from(m.max_height.max(1)).unwrap_or(u8::MAX);
    verify_heights(&m.tree, |_| (None, cap), report);
    if m.finalized {
        // Finalize killed everything below the support threshold; any
        // survivor under it was smuggled in afterwards.
        for id in m.tree.iter_alive() {
            report.tick();
            let node = m.tree.node(id);
            if node.count < m.min_support {
                report.violations.push(Violation::SupportBelowThreshold {
                    path: node_path(&m.tree, id),
                    count: node.count,
                    min_support: m.min_support,
                });
            }
        }
        if let Some(index) = &m.index {
            let mut clone = m.tree.clone();
            let fresh = ContextIndex::full_paths(&mut clone);
            verify_index(index, &fresh, report);
        }
        if let Some(frozen) = &m.frozen {
            verify_frozen(&m.tree, frozen, None, report);
        }
    }
}

fn verify_order1(m: &Order1Markov, url_count: Option<u64>, report: &mut AuditReport) {
    for (&url, row) in &m.rows {
        report.tick();
        let sum: u64 = row.next.values().sum();
        if row.total != sum {
            report.violations.push(Violation::Order1RowTotalMismatch {
                url: url.0,
                total: row.total,
                sum,
            });
        }
        if let Some(count) = url_count {
            for &next in row.next.keys() {
                report.tick();
                if u64::from(next.0) >= count {
                    report.violations.push(Violation::SymbolUnresolved {
                        url: next.0,
                        url_count: count,
                    });
                }
            }
            report.tick();
            if u64::from(url.0) >= count {
                report.violations.push(Violation::SymbolUnresolved {
                    url: url.0,
                    url_count: count,
                });
            }
        }
    }
}

fn verify_online(m: &OnlinePbPpm, url_count: Option<u64>, report: &mut AuditReport) {
    report.tick();
    if m.window.len() > m.max_window {
        report.violations.push(Violation::WindowOverflow {
            len: m.window.len() as u64,
            max: m.max_window as u64,
        });
    }
    report.tick();
    if m.since_rebuild >= m.rebuild_every {
        report.violations.push(Violation::ScheduleInconsistent {
            detail: format!(
                "{} sessions since rebuild, cadence is {} (training would have rebuilt)",
                m.since_rebuild, m.rebuild_every
            ),
        });
    }
    report.tick();
    if m.since_rebuild > 0 && m.window.is_empty() {
        report.violations.push(Violation::ScheduleInconsistent {
            detail: "sessions pending a rebuild but the window is empty".to_owned(),
        });
    }
    if let Some(count) = url_count {
        for session in &m.window {
            for &url in session {
                report.tick();
                if u64::from(url.0) >= count {
                    report.violations.push(Violation::SymbolUnresolved {
                        url: url.0,
                        url_count: count,
                    });
                }
            }
        }
    }
    if let Some(inner) = &m.model {
        verify_pb(inner, url_count, report);
    }
}

/// Verifies every structural invariant of `model`, additionally checking
/// that each URL symbol resolves when the interner size is known.
pub fn verify_model_with_urls(model: &ModelRef<'_>, url_count: Option<usize>) -> AuditReport {
    let mut report = AuditReport::new(model.label());
    let count = url_count.map(|n| n as u64);
    match model {
        ModelRef::Pb(m) => verify_pb(m, count, &mut report),
        ModelRef::Standard(m) => verify_standard(m, count, &mut report),
        ModelRef::Lrs(m) => verify_lrs(m, count, &mut report),
        ModelRef::OnlinePb(m) => verify_online(m, count, &mut report),
        ModelRef::Order1(m) => verify_order1(m, count, &mut report),
    }
    report
}

/// Verifies every structural invariant of `model`.
pub fn verify_model(model: &ModelRef<'_>) -> AuditReport {
    verify_model_with_urls(model, None)
}

/// Whether the in-process runtime audit is on.
///
/// Defaults to `debug_assertions`; the `PBPPM_AUDIT` environment variable
/// overrides in either direction (`0`/`off`/`false` disables, anything else
/// forces on). The decision is cached for the process lifetime.
pub fn runtime_audit_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("PBPPM_AUDIT") {
        Ok(v) => !matches!(v.as_str(), "" | "0" | "off" | "false"),
        Err(_) => cfg!(debug_assertions),
    })
}

/// The hook every build/prune/rebuild site calls after reshaping a model:
/// a no-op unless [`runtime_audit_enabled`], otherwise it verifies the
/// model and panics with the formatted report on any violation — a corrupt
/// model must not survive long enough to serve predictions.
pub fn runtime_audit(model: &ModelRef<'_>, site: &str) {
    if !runtime_audit_enabled() {
        return;
    }
    let report = verify_model(model);
    if !report.is_clean() {
        panic!("PBPPM_AUDIT failed at {site}:\n{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pb::PbConfig;
    use crate::popularity::PopularityBuilder;
    use crate::predictor::Predictor;
    use crate::prune::PruneConfig;

    fn u(n: u32) -> UrlId {
        UrlId(n)
    }

    fn pop_with_grades(grades: &[u8]) -> PopularityTable {
        let mut b = PopularityBuilder::new();
        for (i, &g) in grades.iter().enumerate() {
            let count = match g {
                3 => 1000,
                2 => 50,
                1 => 5,
                _ => 0,
            };
            if count > 0 {
                b.record_n(u(u32::try_from(i).unwrap_or(u32::MAX)), count);
            }
        }
        b.record_n(u(u32::try_from(grades.len()).unwrap_or(u32::MAX)), 1000);
        b.build()
    }

    fn trained_pb() -> PbPpm {
        let pop = pop_with_grades(&[3, 2, 1, 3, 2, 1]);
        let mut m = PbPpm::new(
            pop,
            PbConfig {
                prune: PruneConfig::disabled(),
                ..PbConfig::default()
            },
        );
        for _ in 0..4 {
            m.train_session(&[u(0), u(1), u(2), u(3), u(4), u(5)]);
            m.train_session(&[u(3), u(1), u(2), u(0)]);
        }
        m.finalize();
        m
    }

    #[test]
    fn clean_models_verify_clean() {
        let pb = trained_pb();
        let report = verify_model(&ModelRef::Pb(&pb));
        assert!(report.is_clean(), "{report}");
        assert!(report.checks > 10);

        let mut std_m = crate::standard::StandardPpm::new(Some(4));
        std_m.train_session(&[u(0), u(1), u(2), u(3)]);
        std_m.finalize();
        let report = verify_model(&ModelRef::Standard(&std_m));
        assert!(report.is_clean(), "{report}");

        let mut lrs = crate::lrs::LrsPpm::new();
        for _ in 0..2 {
            lrs.train_session(&[u(0), u(1), u(2)]);
        }
        lrs.finalize();
        let report = verify_model(&ModelRef::Lrs(&lrs));
        assert!(report.is_clean(), "{report}");

        let mut o1 = Order1Markov::new();
        o1.train_session(&[u(0), u(1), u(2)]);
        o1.finalize();
        let report = verify_model(&ModelRef::Order1(&o1));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn skewed_frozen_count_is_caught() {
        let mut pb = trained_pb();
        assert!(
            pb.frozen
                .as_mut()
                .is_some_and(crate::frozen::FrozenTree::skew_count_for_audit),
            "fixture must carry a non-empty frozen arena"
        );
        let report = verify_model(&ModelRef::Pb(&pb));
        assert!(report.has("frozen-mismatch"), "{report}");
        assert!(report.has("frozen-aggregate-mismatch"), "{report}");
    }

    #[test]
    fn malformed_frozen_csr_is_caught() {
        let mut pb = trained_pb();
        pb.frozen
            .as_mut()
            .expect("finalized PB carries an arena")
            .child_offsets
            .pop();
        let report = verify_model(&ModelRef::Pb(&pb));
        assert!(report.has("frozen-csr-malformed"), "{report}");
    }

    #[test]
    fn persisted_frozen_divergence_is_caught() {
        let pb = trained_pb();
        let rebuilt = pb.frozen.clone();
        let mut persisted = rebuilt.clone().expect("finalized PB carries an arena");
        assert!(persisted.skew_count_for_audit());
        let mut report = AuditReport::new("pb");
        verify_frozen_matches(rebuilt.as_ref(), &persisted, &mut report);
        assert!(report.has("frozen-mismatch"), "{report}");
        let mut clean = AuditReport::new("pb");
        verify_frozen_matches(rebuilt.as_ref(), rebuilt.as_ref().unwrap(), &mut clean);
        assert!(clean.is_clean(), "{clean}");
        let mut missing = AuditReport::new("pb");
        verify_frozen_matches(None, &persisted, &mut missing);
        assert!(missing.has("frozen-mismatch"), "{missing}");
    }

    #[test]
    fn inflated_child_count_is_caught() {
        let mut pb = trained_pb();
        let child = pb.tree.descend(&[u(0), u(1)]).expect("branch exists");
        pb.tree.node_mut(child).count += 1_000;
        let report = verify_model(&ModelRef::Pb(&pb));
        assert!(report.has("child-count-exceeds-parent"), "{report}");
    }

    #[test]
    fn skewed_index_aggregate_is_caught() {
        let mut pb = trained_pb();
        assert!(pb.skew_index_aggregate_for_audit());
        let report = verify_model(&ModelRef::Pb(&pb));
        assert!(report.has("index-aggregate-stale"), "{report}");
    }

    #[test]
    fn forged_grade_table_is_caught() {
        let mut pb = trained_pb();
        let counts = pb.pop.counts().to_vec();
        let mut grades: Vec<Grade> = (0..counts.len())
            .map(|i| pb.pop.grade(u(u32::try_from(i).unwrap_or(u32::MAX))))
            .collect();
        if let Some(g) = grades.first_mut() {
            *g = Grade::G0; // url 0 really has grade 3
        }
        pb.pop = PopularityTable::from_parts_unchecked(
            counts,
            grades,
            pb.pop.max_count(),
            pb.pop.total_accesses(),
        );
        let report = verify_model(&ModelRef::Pb(&pb));
        assert!(report.has("grade-mismatch"), "{report}");
    }

    #[test]
    fn json_report_is_well_formed() {
        let mut pb = trained_pb();
        let child = pb.tree.descend(&[u(0), u(1)]).expect("branch exists");
        pb.tree.node_mut(child).count += 1_000;
        let report = verify_model(&ModelRef::Pb(&pb));
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("child-count-exceeds-parent"));
        assert!(json.contains("\"path\":[0]"));
    }

    #[test]
    fn symbol_check_uses_interner_size() {
        let pb = trained_pb();
        let clean = verify_model_with_urls(&ModelRef::Pb(&pb), Some(7));
        assert!(clean.is_clean(), "{clean}");
        let bad = verify_model_with_urls(&ModelRef::Pb(&pb), Some(2));
        assert!(bad.has("symbol-unresolved"), "{bad}");
    }
}
